"""The Virtual Service Repository (VSR).

Paper Section 3.3: "a virtual database which has a lot of information of
heterogeneous services such as service locations and service contexts",
implemented in the prototype "with WSDL and UDDI" (Section 4.1).

Three layers here:

- :class:`VsrDirectory` — the directory proper: WSDL documents keyed by
  service name, context-attribute queries, gateway registrations, and
  change listeners.
- :class:`UddiSoapService` — hosts a directory as the SOAP service
  ``UDDI`` on a backbone node, so gateways reach it with ordinary SOAP
  calls (WSDL documents travel as XML strings, as in real UDDI).
- :class:`VsrClient` — the gateway-side client with a small read cache.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import (
    DirectoryUnavailableError,
    RepositoryError,
    ServiceNotFoundError,
    SoapFault,
)
from repro.net.addressing import NodeAddress
from repro.net.simkernel import SimFuture
from repro.net.transport import TransportStack
from repro.obs import NOOP_OBS
from repro.core.resilience import with_deadline
from repro.soap.client import SoapClient
from repro.soap.http import InterchangeConfig
from repro.soap.server import SoapServer
from repro.soap.wsdl import WsdlDocument

UDDI_SERVICE_NAME = "UDDI"


def _follow(source: SimFuture) -> SimFuture:
    """A fresh future that settles exactly like ``source`` (so coalesced
    callers cannot interfere with each other's callbacks)."""
    result: SimFuture = SimFuture()

    def relay(done: SimFuture) -> None:
        exc = done.exception()
        if exc is not None:
            result.set_exception(exc)
        else:
            result.set_result(done.result())

    source.add_done_callback(relay)
    return result


class VsrDirectory:
    """The authoritative service directory."""

    def __init__(self) -> None:
        self._documents: dict[str, WsdlDocument] = {}
        self._gateways: dict[str, str] = {}  # island -> gateway event/control location
        self._listeners: list[Callable[[str, WsdlDocument | None], None]] = []
        #: Durable WAL journal (``repro.store.DirectoryJournal``); ``None``
        #: keeps the historical all-in-memory directory.
        self.journal: Any = None
        self.publishes = 0
        self.queries = 0
        self.cold_crashes = 0
        self.recoveries = 0

    # -- service documents ---------------------------------------------------------

    def publish(self, document: WsdlDocument) -> None:
        """Insert or replace the document for its service name."""
        if not document.service:
            raise RepositoryError("cannot publish a WSDL document without a service name")
        self._documents[document.service] = document
        self.publishes += 1
        if self.journal is not None:
            self.journal.log_publish(
                document.service, document.to_xml().decode("utf-8")
            )
        self._notify(document.service, document)

    def withdraw(self, service: str) -> bool:
        document = self._documents.pop(service, None)
        if document is not None:
            if self.journal is not None:
                self.journal.log_withdraw(service)
            self._notify(service, None)
        return document is not None

    def find_by_name(self, service: str) -> WsdlDocument:
        self.queries += 1
        document = self._documents.get(service)
        if document is None:
            raise ServiceNotFoundError(f"VSR has no service named {service!r}")
        return document

    def find(self, context_filter: dict[str, str] | None = None) -> list[WsdlDocument]:
        """All documents whose context contains ``context_filter``."""
        self.queries += 1
        context_filter = context_filter or {}
        return sorted(
            (
                document
                for document in self._documents.values()
                if all(document.context.get(k) == v for k, v in context_filter.items())
            ),
            key=lambda document: document.service,
        )

    @property
    def service_count(self) -> int:
        return len(self._documents)

    def service_names(self) -> list[str]:
        return sorted(self._documents)

    # -- gateway registry --------------------------------------------------------

    def register_gateway(self, island: str, location: str) -> None:
        self._gateways[island] = location
        if self.journal is not None:
            self.journal.log_register(island, location)

    def unregister_gateway(self, island: str) -> bool:
        """Remove an island's gateway registration.  Subscribers notice on
        their next registry read and prune the poll loops / channels they
        keep per registered gateway."""
        removed = self._gateways.pop(island, None) is not None
        if removed and self.journal is not None:
            self.journal.log_unregister(island)
        return removed

    def gateways(self) -> dict[str, str]:
        return dict(self._gateways)

    # -- durable state (cold crash / recovery) -------------------------------------

    def attach_journal(self, journal: Any) -> None:
        """Opt the directory into durable state (``DirectoryJournal``)."""
        self.journal = journal

    def cold_crash(self) -> None:
        """The directory process dies: the store closes where the WAL tail
        stands and the in-memory catalogue is wiped."""
        if self.journal is None:
            return
        self.cold_crashes += 1
        self.journal.store.close()
        self._documents.clear()
        self._gateways.clear()

    def cold_recover(self) -> None:
        """Replay the WAL back into the catalogue.  Restoration writes the
        tables directly — no ``_notify`` storm: listeners learned of these
        documents when they were first published, and a restart must not
        replay change notifications it already delivered."""
        if self.journal is None:
            return
        self.recoveries += 1
        self.journal.store.reopen()
        state = self.journal.replay()
        for service, xml in state["documents"].items():
            self._documents[service] = WsdlDocument.from_xml(xml.encode("utf-8"))
        self._gateways.update(state["gateways"])

    # -- change notification ------------------------------------------------------

    def on_change(self, listener: Callable[[str, WsdlDocument | None], None]) -> None:
        """``listener(service, document_or_None)`` on publish/withdraw."""
        self._listeners.append(listener)

    def _notify(self, service: str, document: WsdlDocument | None) -> None:
        for listener in list(self._listeners):
            listener(service, document)


class UddiSoapService:
    """SOAP facade: mounts a :class:`VsrDirectory` on a SoapServer."""

    def __init__(self, soap_server: SoapServer, directory: VsrDirectory | None = None) -> None:
        self.directory = directory or VsrDirectory()
        self.soap_server = soap_server
        soap_server.register_service(UDDI_SERVICE_NAME, self._dispatch)

    def _dispatch(self, operation: str, args: list[Any]) -> Any:
        if operation == "publish":
            self.directory.publish(WsdlDocument.from_xml(str(args[0]).encode("utf-8")))
            return True
        if operation == "withdraw":
            return self.directory.withdraw(str(args[0]))
        if operation == "find_by_name":
            return self.directory.find_by_name(str(args[0])).to_xml().decode("utf-8")
        if operation == "find":
            context_filter = dict(args[0]) if args and args[0] else {}
            return [
                document.to_xml().decode("utf-8")
                for document in self.directory.find(context_filter)
            ]
        if operation == "register_gateway":
            self.directory.register_gateway(str(args[0]), str(args[1]))
            return True
        if operation == "unregister_gateway":
            return self.directory.unregister_gateway(str(args[0]))
        if operation == "list_gateways":
            return self.directory.gateways()
        raise RepositoryError(f"UDDI has no operation {operation!r}")


class VsrClient:
    """Gateway-side repository client with a read-through cache.

    The cache holds resolved documents for ``cache_ttl`` virtual seconds;
    a stale entry that leads to a failed call is invalidated by the caller
    via :meth:`invalidate`.

    Read failover: when the directory itself is unreachable, lookups fall
    back to the last cached document *even past its TTL* (``allow_stale``),
    counting the read in ``degraded_reads`` so gateway stats expose the
    degraded mode.  ``lookup_deadline`` bounds each directory round trip in
    virtual time (0 leaves only the transport's own timeouts).

    Concurrent lookups for the same service (or the gateway registry)
    coalesce onto a single in-flight directory round trip — a burst of
    calls to one not-yet-cached service costs one UDDI exchange, not one
    per caller (``coalesced_lookups`` counts the savings).
    """

    def __init__(
        self,
        stack: TransportStack,
        directory_address: NodeAddress,
        directory_port: int = 8080,
        cache_ttl: float = 30.0,
        lookup_deadline: float = 0.0,
        allow_stale: bool = True,
        interchange: InterchangeConfig | None = None,
        obs: Any = None,
        label: str = "",
    ) -> None:
        self.stack = stack
        self.sim = stack.sim
        self.directory_address = directory_address
        self.directory_port = directory_port
        self.cache_ttl = cache_ttl
        self.lookup_deadline = lookup_deadline
        self.allow_stale = allow_stale
        self.soap = SoapClient(stack, interchange)
        self._cache: dict[str, tuple[float, WsdlDocument]] = {}
        self._gateway_cache: dict[str, str] | None = None
        self._inflight: dict[str, SimFuture] = {}
        self._gateways_inflight: SimFuture | None = None
        self.cache_hits = 0
        self.remote_lookups = 0
        self.coalesced_lookups = 0
        self.degraded_reads = 0
        self.lookup_failures = 0
        self.obs = obs if obs is not None else NOOP_OBS
        self.label = label
        # The directory client gets its own metric namespace so its HTTP
        # traffic never mixes with the gateway's interchange client.
        self.soap.observe(self.obs, f"{label}.vsr" if label else "vsr")
        metrics = self.obs.metrics
        prefix = f"vsr.{label}" if label else "vsr.client"
        self._m_cache_hits = metrics.counter(f"{prefix}.cache_hits")
        self._m_remote_lookups = metrics.counter(f"{prefix}.remote_lookups")
        self._m_coalesced = metrics.counter(f"{prefix}.coalesced_lookups")
        self._m_degraded = metrics.counter(f"{prefix}.degraded_reads")
        self._m_failures = metrics.counter(f"{prefix}.lookup_failures")

    def _call(self, operation: str, args: list[Any]) -> SimFuture:
        raw = self.soap.call(
            self.directory_address, UDDI_SERVICE_NAME, operation, args, port=self.directory_port
        )
        if not self.lookup_deadline:
            return raw
        return with_deadline(
            self.sim,
            raw,
            self.lookup_deadline,
            lambda: DirectoryUnavailableError(
                f"VSR directory {self.directory_address} did not answer "
                f"{operation!r} within {self.lookup_deadline}s"
            ),
        )

    def publish(self, document: WsdlDocument) -> SimFuture:
        self._cache.pop(document.service, None)
        return self._call("publish", [document.to_xml().decode("utf-8")])

    def withdraw(self, service: str) -> SimFuture:
        self._cache.pop(service, None)
        return self._call("withdraw", [service])

    def find_by_name(self, service: str) -> SimFuture:
        """Resolve to a :class:`WsdlDocument` (cached).

        A directory failure (as opposed to "no such service") falls back to
        any cached document regardless of age when ``allow_stale`` is set —
        the degraded read mode that keeps resolution alive through a UDDI
        outage.
        """
        cached = self._cache.get(service)
        if cached is not None and self.sim.now - cached[0] <= self.cache_ttl:
            self.cache_hits += 1
            self._m_cache_hits.inc()
            return SimFuture.completed(cached[1])
        inflight = self._inflight.get(service)
        if inflight is not None:
            # Another caller is already resolving this name: share the
            # round trip instead of issuing a duplicate.
            self.coalesced_lookups += 1
            self._m_coalesced.inc()
            return _follow(inflight)
        self.remote_lookups += 1
        self._m_remote_lookups.inc()
        result: SimFuture = SimFuture()
        self._inflight[service] = result

        def decode(future: SimFuture) -> None:
            self._inflight.pop(service, None)
            exc = future.exception()
            if exc is not None:
                if isinstance(exc, (SoapFault, ServiceNotFoundError)):
                    # The directory answered: its verdict is authoritative.
                    result.set_exception(exc)
                    return
                self.lookup_failures += 1
                self._m_failures.inc()
                if self.allow_stale and cached is not None:
                    self.degraded_reads += 1
                    self._m_degraded.inc()
                    result.set_result(cached[1])
                    return
                result.set_exception(exc)
                return
            try:
                document = WsdlDocument.from_xml(str(future.result()).encode("utf-8"))
            except Exception as parse_exc:
                # A reply that does not parse as WSDL is transport
                # corruption (e.g. a mispaired pipelined response after
                # frame loss), not a directory verdict: treat it like an
                # unreachable directory, degraded reads included.
                self.lookup_failures += 1
                self._m_failures.inc()
                if self.allow_stale and cached is not None:
                    self.degraded_reads += 1
                    self._m_degraded.inc()
                    result.set_result(cached[1])
                    return
                result.set_exception(parse_exc)
                return
            self._cache[service] = (self.sim.now, document)
            result.set_result(document)

        self._call("find_by_name", [service]).add_done_callback(decode)
        return result

    def find(self, context_filter: dict[str, str] | None = None) -> SimFuture:
        """Resolve to a list of :class:`WsdlDocument` (never cached: used
        for federation sweeps where freshness matters)."""
        result: SimFuture = SimFuture()

        def decode(future: SimFuture) -> None:
            exc = future.exception()
            if exc is not None:
                result.set_exception(exc)
                return
            try:
                documents = [
                    WsdlDocument.from_xml(str(xml).encode("utf-8"))
                    for xml in future.result()
                ]
            except Exception as parse_exc:  # corrupt/mispaired reply
                result.set_exception(parse_exc)
                return
            result.set_result(documents)

        self._call("find", [context_filter or {}]).add_done_callback(decode)
        return result

    def register_gateway(self, island: str, location: str) -> SimFuture:
        return self._call("register_gateway", [island, location])

    def unregister_gateway(self, island: str) -> SimFuture:
        """Remove ``island``'s registration; also evicts it from the local
        degraded-read cache so a later directory outage cannot resurrect
        the entry this client just removed."""
        if self._gateway_cache is not None:
            self._gateway_cache.pop(island, None)
        return self._call("unregister_gateway", [island])

    def list_gateways(self) -> SimFuture:
        """Resolve to the ``island -> control location`` registry.

        The last successful answer is remembered and served when the
        directory is unreachable (another degraded read), so heartbeating
        keeps working through a UDDI outage.  Concurrent callers share one
        in-flight round trip.
        """
        if self._gateways_inflight is not None:
            self.coalesced_lookups += 1
            self._m_coalesced.inc()
            return _follow(self._gateways_inflight)
        result: SimFuture = SimFuture()
        self._gateways_inflight = result

        def decode(future: SimFuture) -> None:
            self._gateways_inflight = None
            exc = future.exception()
            if exc is None:
                try:
                    registry = dict(future.result())
                except (TypeError, ValueError) as shape_exc:
                    # Not an island->location map: a mispaired pipelined
                    # reply.  Fall through to the failure path (degraded
                    # cache read if allowed) instead of crashing.
                    exc = RepositoryError(
                        f"malformed gateway registry reply: {shape_exc}"
                    )
                else:
                    self._gateway_cache = registry
                    result.set_result(registry)
                    return
            if isinstance(exc, (SoapFault, ServiceNotFoundError)):
                result.set_exception(exc)
                return
            self.lookup_failures += 1
            self._m_failures.inc()
            if self.allow_stale and self._gateway_cache is not None:
                self.degraded_reads += 1
                self._m_degraded.inc()
                result.set_result(dict(self._gateway_cache))
                return
            result.set_exception(exc)

        self._call("list_gateways", []).add_done_callback(decode)
        return result

    def invalidate(self, service: str) -> None:
        self._cache.pop(service, None)

    def forget_caches(self) -> None:
        """Cold crash of the owning gateway: the read cache and the
        degraded-read gateway snapshot are process memory and die with it.
        (In-flight lookups are left to settle; their callers' deadlines
        already bound them.)"""
        self._cache.clear()
        self._gateway_cache = None
