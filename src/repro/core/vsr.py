"""The Virtual Service Repository (VSR).

Paper Section 3.3: "a virtual database which has a lot of information of
heterogeneous services such as service locations and service contexts",
implemented in the prototype "with WSDL and UDDI" (Section 4.1).

Three layers here:

- :class:`VsrDirectory` — the directory proper: WSDL documents keyed by
  service name, context-attribute queries, gateway registrations, and
  change listeners.
- :class:`UddiSoapService` — hosts a directory as the SOAP service
  ``UDDI`` on a backbone node, so gateways reach it with ordinary SOAP
  calls (WSDL documents travel as XML strings, as in real UDDI).
- :class:`VsrClient` — the gateway-side client with a small read cache.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import (
    CircuitOpenError,
    DirectoryUnavailableError,
    RepositoryError,
    ServiceNotFoundError,
    SoapFault,
)
from repro.net.addressing import NodeAddress
from repro.net.simkernel import SimFuture
from repro.net.transport import TransportStack
from repro.obs import NOOP_OBS
from repro.core.resilience import CallPolicy, CircuitBreaker, with_deadline
from repro.soap.client import SoapClient
from repro.soap.http import InterchangeConfig
from repro.soap.server import SoapServer
from repro.soap.wsdl import WsdlDocument

UDDI_SERVICE_NAME = "UDDI"


def gateway_ring_key(island: str) -> str:
    """Ring key for an island's gateway registration.  Prefixed so the
    gateway namespace can never collide with a service named like an
    island; the federation router, the directory facade and the
    ring-placement oracle must all agree on this mapping."""
    return f"gw:{island}"


class FederatedDocuments(list):
    """The result of a federated scatter-gather ``find``.

    Behaves as a plain list of :class:`WsdlDocument` so every existing
    caller keeps working; ``missed_shards`` names the shards that failed
    to answer within their deadline, and ``degraded`` flags the partial
    result so federation sweeps can distinguish "empty" from "blind"."""

    def __init__(self, documents: Any = (), missed_shards: Any = ()) -> None:
        super().__init__(documents)
        self.missed_shards: tuple[int, ...] = tuple(missed_shards)

    @property
    def degraded(self) -> bool:
        return bool(self.missed_shards)


def _follow(source: SimFuture) -> SimFuture:
    """A fresh future that settles exactly like ``source`` (so coalesced
    callers cannot interfere with each other's callbacks)."""
    result: SimFuture = SimFuture()

    def relay(done: SimFuture) -> None:
        exc = done.exception()
        if exc is not None:
            result.set_exception(exc)
        else:
            result.set_result(done.result())

    source.add_done_callback(relay)
    return result


class VsrDirectory:
    """The authoritative service directory."""

    def __init__(self) -> None:
        self._documents: dict[str, WsdlDocument] = {}
        self._gateways: dict[str, str] = {}  # island -> gateway event/control location
        #: Inverted index over context attributes: ``(key, value) -> set of
        #: service names`` — keeps :meth:`find` from scanning the whole
        #: catalogue per query (the scan is O(documents x filter), fatal at
        #: federation scale; the index intersects per-attribute sets).
        self._context_index: dict[tuple[str, str], set[str]] = {}
        self._listeners: list[Callable[[str, WsdlDocument | None], None]] = []
        #: Durable WAL journal (``repro.store.DirectoryJournal``); ``None``
        #: keeps the historical all-in-memory directory.
        self.journal: Any = None
        self.publishes = 0
        self.queries = 0
        self.cold_crashes = 0
        self.recoveries = 0

    # -- service documents ---------------------------------------------------------

    def publish(self, document: WsdlDocument) -> None:
        """Insert or replace the document for its service name."""
        if not document.service:
            raise RepositoryError("cannot publish a WSDL document without a service name")
        self._store_document(document)
        self.publishes += 1
        if self.journal is not None:
            self.journal.log_publish(
                document.service, document.to_xml().decode("utf-8")
            )
        self._notify(document.service, document)

    def withdraw(self, service: str) -> bool:
        document = self._delete_document(service)
        if document is not None:
            if self.journal is not None:
                self.journal.log_withdraw(service)
            self._notify(service, None)
        return document is not None

    # -- table maintenance (index kept in lockstep) ---------------------------------

    def _store_document(self, document: WsdlDocument) -> None:
        previous = self._documents.get(document.service)
        if previous is not None:
            self._index_remove(previous)
        self._documents[document.service] = document
        self._index_add(document)

    def _delete_document(self, service: str) -> WsdlDocument | None:
        document = self._documents.pop(service, None)
        if document is not None:
            self._index_remove(document)
        return document

    def _index_add(self, document: WsdlDocument) -> None:
        for item in document.context.items():
            self._context_index.setdefault(item, set()).add(document.service)

    def _index_remove(self, document: WsdlDocument) -> None:
        for item in document.context.items():
            names = self._context_index.get(item)
            if names is not None:
                names.discard(document.service)
                if not names:
                    del self._context_index[item]

    def find_by_name(self, service: str) -> WsdlDocument:
        self.queries += 1
        document = self._documents.get(service)
        if document is None:
            raise ServiceNotFoundError(f"VSR has no service named {service!r}")
        return document

    def find(self, context_filter: dict[str, str] | None = None) -> list[WsdlDocument]:
        """All documents whose context contains ``context_filter``.

        Non-empty filters intersect the inverted context index instead of
        scanning every document; :meth:`_find_scan` keeps the reference
        linear scan so the regression test can assert both agree on any
        directory.
        """
        self.queries += 1
        context_filter = context_filter or {}
        if not context_filter:
            return sorted(self._documents.values(), key=lambda d: d.service)
        names: set[str] | None = None
        for item in context_filter.items():
            matches = self._context_index.get(item)
            if not matches:
                return []
            names = set(matches) if names is None else names & matches
            if not names:
                return []
        assert names is not None
        return sorted(
            (self._documents[name] for name in names),
            key=lambda document: document.service,
        )

    def _find_scan(self, context_filter: dict[str, str] | None = None) -> list[WsdlDocument]:
        """Reference implementation of :meth:`find`: the historical linear
        scan, kept (test-only) as the oracle the index is judged against."""
        context_filter = context_filter or {}
        return sorted(
            (
                document
                for document in self._documents.values()
                if all(document.context.get(k) == v for k, v in context_filter.items())
            ),
            key=lambda document: document.service,
        )

    @property
    def service_count(self) -> int:
        return len(self._documents)

    def service_names(self) -> list[str]:
        return sorted(self._documents)

    # -- gateway registry --------------------------------------------------------

    def register_gateway(self, island: str, location: str) -> None:
        self._gateways[island] = location
        if self.journal is not None:
            self.journal.log_register(island, location)

    def unregister_gateway(self, island: str) -> bool:
        """Remove an island's gateway registration.  Subscribers notice on
        their next registry read and prune the poll loops / channels they
        keep per registered gateway."""
        removed = self._gateways.pop(island, None) is not None
        if removed and self.journal is not None:
            self.journal.log_unregister(island)
        return removed

    def gateways(self) -> dict[str, str]:
        return dict(self._gateways)

    # -- durable state (cold crash / recovery) -------------------------------------

    def attach_journal(self, journal: Any) -> None:
        """Opt the directory into durable state (``DirectoryJournal``)."""
        self.journal = journal

    def cold_crash(self) -> None:
        """The directory process dies: the store closes where the WAL tail
        stands and the in-memory catalogue is wiped."""
        if self.journal is None:
            return
        self.cold_crashes += 1
        self.journal.store.close()
        self._documents.clear()
        self._context_index.clear()
        self._gateways.clear()

    def cold_recover(self) -> None:
        """Replay the WAL back into the catalogue.  Restoration writes the
        tables directly — no ``_notify`` storm: listeners learned of these
        documents when they were first published, and a restart must not
        replay change notifications it already delivered."""
        if self.journal is None:
            return
        self.recoveries += 1
        self.journal.store.reopen()
        state = self.journal.replay()
        for service, xml in state["documents"].items():
            self._store_document(WsdlDocument.from_xml(xml.encode("utf-8")))
        self._gateways.update(state["gateways"])

    # -- change notification ------------------------------------------------------

    def on_change(self, listener: Callable[[str, WsdlDocument | None], None]) -> None:
        """``listener(service, document_or_None)`` on publish/withdraw."""
        self._listeners.append(listener)

    def _notify(self, service: str, document: WsdlDocument | None) -> None:
        for listener in list(self._listeners):
            listener(service, document)


class UddiSoapService:
    """SOAP facade: mounts a :class:`VsrDirectory` on a SoapServer."""

    def __init__(self, soap_server: SoapServer, directory: VsrDirectory | None = None) -> None:
        self.directory = directory or VsrDirectory()
        self.soap_server = soap_server
        soap_server.register_service(UDDI_SERVICE_NAME, self._dispatch)

    def _dispatch(self, operation: str, args: list[Any]) -> Any:
        if operation == "publish":
            self.directory.publish(WsdlDocument.from_xml(str(args[0]).encode("utf-8")))
            return True
        if operation == "withdraw":
            return self.directory.withdraw(str(args[0]))
        if operation == "find_by_name":
            return self.directory.find_by_name(str(args[0])).to_xml().decode("utf-8")
        if operation == "find":
            context_filter = dict(args[0]) if args and args[0] else {}
            return [
                document.to_xml().decode("utf-8")
                for document in self.directory.find(context_filter)
            ]
        if operation == "register_gateway":
            self.directory.register_gateway(str(args[0]), str(args[1]))
            return True
        if operation == "unregister_gateway":
            return self.directory.unregister_gateway(str(args[0]))
        if operation == "list_gateways":
            return self.directory.gateways()
        raise RepositoryError(f"UDDI has no operation {operation!r}")


class VsrClient:
    """Gateway-side repository client with a read-through cache.

    The cache holds resolved documents for ``cache_ttl`` virtual seconds;
    a stale entry that leads to a failed call is invalidated by the caller
    via :meth:`invalidate`.

    Read failover: when the directory itself is unreachable, lookups fall
    back to the last cached document *even past its TTL* (``allow_stale``),
    counting the read in ``degraded_reads`` so gateway stats expose the
    degraded mode.  ``lookup_deadline`` bounds each directory round trip in
    virtual time (0 leaves only the transport's own timeouts).

    Concurrent lookups for the same service (or the gateway registry)
    coalesce onto a single in-flight directory round trip — a burst of
    calls to one not-yet-cached service costs one UDDI exchange, not one
    per caller (``coalesced_lookups`` counts the savings).

    An authoritative "no such service" verdict is negative-cached for
    ``negative_ttl`` virtual seconds: a retry loop hammering a missing
    name costs one directory round trip per TTL window, not one per
    iteration.  The entry is dropped the moment this client publishes the
    service or the on_change/unregister chain calls :meth:`invalidate`;
    remote publishes age out with the TTL (``negative_hits`` counts the
    round trips saved).

    With ``federation`` set (a :class:`repro.core.shard.FederationRouting`)
    the client is ring-aware: keyed operations (publish/withdraw/
    find_by_name/register_gateway/unregister_gateway) route to the owning
    shard's replicas in order — failing over on connectivity failures,
    skipping replicas whose per-endpoint circuit breaker is open without
    consuming any deadline — while ``find``/``list_gateways`` scatter to
    every shard with a per-shard deadline and degrade to partial results
    (see :class:`repro.core.shard.FederatedDocuments`) instead of failing.
    Same-instant lookups for *different* names owned by one shard batch
    onto a single ``find_many`` exchange.  A trivial 1-shard/1-replica
    routing is ignored: the legacy single-directory path stays
    byte-identical on the wire.
    """

    def __init__(
        self,
        stack: TransportStack,
        directory_address: NodeAddress,
        directory_port: int = 8080,
        cache_ttl: float = 30.0,
        lookup_deadline: float = 0.0,
        allow_stale: bool = True,
        interchange: InterchangeConfig | None = None,
        obs: Any = None,
        label: str = "",
        negative_ttl: float = 1.0,
        federation: Any = None,
    ) -> None:
        self.stack = stack
        self.sim = stack.sim
        self.directory_address = directory_address
        self.directory_port = directory_port
        self.cache_ttl = cache_ttl
        self.lookup_deadline = lookup_deadline
        self.allow_stale = allow_stale
        self.negative_ttl = negative_ttl
        # A trivial routing (one shard, one replica) IS the legacy
        # directory: drop to the historical code path so the wire stays
        # byte-identical.
        if federation is not None and getattr(federation, "trivial", False):
            federation = None
        self.federation = federation
        self.soap = SoapClient(stack, interchange)
        self._cache: dict[str, tuple[float, WsdlDocument]] = {}
        self._negative: dict[str, float] = {}
        self._gateway_cache: dict[str, str] | None = None
        self._inflight: dict[str, SimFuture] = {}
        self._gateways_inflight: SimFuture | None = None
        self._breakers: dict[tuple[int, int], Any] = {}
        self._batch_pending: dict[int, dict[str, SimFuture]] = {}
        self.cache_hits = 0
        self.remote_lookups = 0
        self.coalesced_lookups = 0
        self.degraded_reads = 0
        self.lookup_failures = 0
        self.negative_hits = 0
        self.failovers = 0
        self.replicas_skipped_open = 0
        self.batched_lookups = 0
        self.partial_finds = 0
        self.obs = obs if obs is not None else NOOP_OBS
        self.label = label
        # The directory client gets its own metric namespace so its HTTP
        # traffic never mixes with the gateway's interchange client.
        self.soap.observe(self.obs, f"{label}.vsr" if label else "vsr")
        metrics = self.obs.metrics
        prefix = f"vsr.{label}" if label else "vsr.client"
        self._m_cache_hits = metrics.counter(f"{prefix}.cache_hits")
        self._m_remote_lookups = metrics.counter(f"{prefix}.remote_lookups")
        self._m_coalesced = metrics.counter(f"{prefix}.coalesced_lookups")
        self._m_degraded = metrics.counter(f"{prefix}.degraded_reads")
        self._m_failures = metrics.counter(f"{prefix}.lookup_failures")
        self._m_negative = metrics.counter(f"{prefix}.negative_hits")
        self._m_failovers = metrics.counter(f"{prefix}.failovers")
        self._m_batched = metrics.counter(f"{prefix}.batched_lookups")

    def _call(self, operation: str, args: list[Any]) -> SimFuture:
        raw = self.soap.call(
            self.directory_address, UDDI_SERVICE_NAME, operation, args, port=self.directory_port
        )
        if not self.lookup_deadline:
            return raw
        return with_deadline(
            self.sim,
            raw,
            self.lookup_deadline,
            lambda: DirectoryUnavailableError(
                f"VSR directory {self.directory_address} did not answer "
                f"{operation!r} within {self.lookup_deadline}s"
            ),
        )

    # -- federation routing -------------------------------------------------

    def _shard_breaker(self, shard: int, index: int) -> CircuitBreaker:
        key = (shard, index)
        breaker = self._breakers.get(key)
        if breaker is None:
            cfg = self.federation.config
            policy = CallPolicy(
                breaker_threshold=cfg.breaker_threshold,
                breaker_reset_timeout=cfg.breaker_reset_timeout,
            )
            breaker = CircuitBreaker(
                self.sim, policy, f"{self.label or 'vsr'}:s{shard}r{index}"
            )
            self._breakers[key] = breaker
        return breaker

    def _shard_call(
        self,
        shard: int,
        operation: str,
        args: list[Any],
        deadline: float | None = None,
    ) -> SimFuture:
        """One logical call against a shard: try its replicas in order,
        failing over on connectivity failures.  A replica whose breaker is
        open is skipped synchronously — no wire traffic, none of the
        shard's deadline consumed.  A SOAP fault is the shard *answering*
        (an authoritative verdict and a healthy endpoint), so it neither
        trips the breaker nor triggers failover."""
        replicas = self.federation.replicas(shard)
        if deadline is None:
            deadline = self.lookup_deadline
        result: SimFuture = SimFuture()
        started = self.sim.now
        state: dict[str, Any] = {"index": 0, "last": None}

        def fail(default_msg: str) -> None:
            exc = state["last"] or DirectoryUnavailableError(default_msg)
            result.set_exception(exc)

        def attempt() -> None:
            while state["index"] < len(replicas):
                index = state["index"]
                state["index"] += 1
                endpoint = replicas[index]
                breaker = self._shard_breaker(shard, index)
                try:
                    breaker.admit()
                except CircuitOpenError as exc:
                    self.replicas_skipped_open += 1
                    state["last"] = exc
                    continue
                raw = self.soap.call(
                    endpoint.address,
                    UDDI_SERVICE_NAME,
                    operation,
                    args,
                    port=endpoint.port,
                )
                if deadline:
                    remaining = deadline - (self.sim.now - started)
                    if remaining <= 0:
                        fail(
                            f"shard {shard} deadline exhausted before "
                            f"{operation!r} reached {endpoint.name}"
                        )
                        return
                    raw = with_deadline(
                        self.sim,
                        raw,
                        remaining,
                        lambda endpoint=endpoint: DirectoryUnavailableError(
                            f"shard {shard} replica {endpoint.name} did not "
                            f"answer {operation!r} in time"
                        ),
                    )
                raw.add_done_callback(lambda fut, b=breaker: settle(fut, b))
                return
            fail(f"no shard {shard} replica reachable for {operation!r}")

        def settle(future: SimFuture, breaker: CircuitBreaker) -> None:
            exc = future.exception()
            if exc is None:
                breaker.record_success()
                result.set_result(future.result())
                return
            if isinstance(exc, SoapFault):
                breaker.record_success()
                result.set_exception(exc)
                return
            breaker.record_failure()
            self.failovers += 1
            self._m_failovers.inc()
            state["last"] = exc
            attempt()

        attempt()
        return result

    def _keyed_call(self, key: str, operation: str, args: list[Any]) -> SimFuture:
        """Route a keyed write/read to the ring owner's shard."""
        return self._shard_call(self.federation.owner(key), operation, args)

    def _lookup_call(self, service: str) -> SimFuture:
        """A federated ``find_by_name`` round trip.  Distinct names owned
        by the same shard that are requested in the same instant ride one
        ``find_many`` exchange (same-name callers already coalesce on the
        in-flight map before reaching here).  Resolves to the raw WSDL
        XML string, exactly like the legacy reply."""
        shard = self.federation.owner(service)
        if not self.federation.config.batch_lookups:
            return self._shard_call(shard, "find_by_name", [service])
        pending = self._batch_pending.get(shard)
        slot: SimFuture = SimFuture()
        if pending is None:
            self._batch_pending[shard] = {service: slot}
            self.sim.schedule(0.0, self._flush_batch, shard)
        else:
            pending[service] = slot
        return slot

    def _flush_batch(self, shard: int) -> None:
        pending = self._batch_pending.pop(shard, None)
        if not pending:
            return
        if len(pending) == 1:
            ((service, slot),) = pending.items()

            def relay(future: SimFuture, slot: SimFuture = slot) -> None:
                exc = future.exception()
                if exc is not None:
                    slot.set_exception(exc)
                else:
                    slot.set_result(future.result())

            self._shard_call(shard, "find_by_name", [service]).add_done_callback(relay)
            return
        names = sorted(pending)
        self.batched_lookups += len(names) - 1
        self._m_batched.inc(len(names) - 1)

        def fanout(future: SimFuture) -> None:
            exc = future.exception()
            if exc is not None:
                for slot in pending.values():
                    slot.set_exception(exc)
                return
            try:
                reply = dict(future.result())
            except (TypeError, ValueError) as shape_exc:
                bad = RepositoryError(f"malformed find_many reply: {shape_exc}")
                for slot in pending.values():
                    slot.set_exception(bad)
                return
            for service, slot in pending.items():
                xml = reply.get(service)
                if xml is None:
                    slot.set_exception(
                        ServiceNotFoundError(
                            f"no service {service!r} registered in shard {shard}"
                        )
                    )
                else:
                    slot.set_result(xml)

        self._shard_call(shard, "find_many", [names]).add_done_callback(fanout)

    # -- repository operations ----------------------------------------------

    def publish(self, document: WsdlDocument) -> SimFuture:
        self._cache.pop(document.service, None)
        self._negative.pop(document.service, None)
        xml = document.to_xml().decode("utf-8")
        if self.federation is not None:
            return self._keyed_call(document.service, "publish", [xml])
        return self._call("publish", [xml])

    def withdraw(self, service: str) -> SimFuture:
        self._cache.pop(service, None)
        self._negative.pop(service, None)
        if self.federation is not None:
            return self._keyed_call(service, "withdraw", [service])
        return self._call("withdraw", [service])

    def find_by_name(self, service: str) -> SimFuture:
        """Resolve to a :class:`WsdlDocument` (cached).

        A directory failure (as opposed to "no such service") falls back to
        any cached document regardless of age when ``allow_stale`` is set —
        the degraded read mode that keeps resolution alive through a UDDI
        outage.
        """
        cached = self._cache.get(service)
        if cached is not None and self.sim.now - cached[0] <= self.cache_ttl:
            self.cache_hits += 1
            self._m_cache_hits.inc()
            return SimFuture.completed(cached[1])
        verdict_at = self._negative.get(service)
        if verdict_at is not None:
            if self.sim.now - verdict_at <= self.negative_ttl:
                # The directory said "no such service" moments ago; a retry
                # loop gets the same authoritative verdict without another
                # round trip.
                self.negative_hits += 1
                self._m_negative.inc()
                return SimFuture.failed(
                    ServiceNotFoundError(
                        f"no service {service!r} registered (negative-cached)"
                    )
                )
            del self._negative[service]
        inflight = self._inflight.get(service)
        if inflight is not None:
            # Another caller is already resolving this name: share the
            # round trip instead of issuing a duplicate.
            self.coalesced_lookups += 1
            self._m_coalesced.inc()
            return _follow(inflight)
        self.remote_lookups += 1
        self._m_remote_lookups.inc()
        result: SimFuture = SimFuture()
        self._inflight[service] = result

        def decode(future: SimFuture) -> None:
            self._inflight.pop(service, None)
            exc = future.exception()
            if exc is not None:
                if isinstance(exc, (SoapFault, ServiceNotFoundError)):
                    # The directory answered: its verdict is authoritative.
                    if self.negative_ttl > 0 and (
                        isinstance(exc, ServiceNotFoundError)
                        or getattr(exc, "detail", "") == "ServiceNotFoundError"
                    ):
                        self._negative[service] = self.sim.now
                    result.set_exception(exc)
                    return
                self.lookup_failures += 1
                self._m_failures.inc()
                if self.allow_stale and cached is not None:
                    self.degraded_reads += 1
                    self._m_degraded.inc()
                    result.set_result(cached[1])
                    return
                result.set_exception(exc)
                return
            try:
                document = WsdlDocument.from_xml(str(future.result()).encode("utf-8"))
            except Exception as parse_exc:
                # A reply that does not parse as WSDL is transport
                # corruption (e.g. a mispaired pipelined response after
                # frame loss), not a directory verdict: treat it like an
                # unreachable directory, degraded reads included.
                self.lookup_failures += 1
                self._m_failures.inc()
                if self.allow_stale and cached is not None:
                    self.degraded_reads += 1
                    self._m_degraded.inc()
                    result.set_result(cached[1])
                    return
                result.set_exception(parse_exc)
                return
            self._cache[service] = (self.sim.now, document)
            result.set_result(document)

        if self.federation is not None:
            self._lookup_call(service).add_done_callback(decode)
        else:
            self._call("find_by_name", [service]).add_done_callback(decode)
        return result

    def find(self, context_filter: dict[str, str] | None = None) -> SimFuture:
        """Resolve to a list of :class:`WsdlDocument` (never cached: used
        for federation sweeps where freshness matters).

        Federated clients scatter the query to every shard under a
        per-shard deadline and merge: a shard that cannot answer is
        *skipped*, and the (still successful) result is a
        :class:`FederatedDocuments` naming the missed shards — a partial
        directory beats no directory for a sweep."""
        if self.federation is not None:
            return self._scatter_find(context_filter or {})
        result: SimFuture = SimFuture()

        def decode(future: SimFuture) -> None:
            exc = future.exception()
            if exc is not None:
                result.set_exception(exc)
                return
            try:
                documents = [
                    WsdlDocument.from_xml(str(xml).encode("utf-8"))
                    for xml in future.result()
                ]
            except Exception as parse_exc:  # corrupt/mispaired reply
                result.set_exception(parse_exc)
                return
            result.set_result(documents)

        self._call("find", [context_filter or {}]).add_done_callback(decode)
        return result

    def _scatter_find(self, context_filter: dict[str, str]) -> SimFuture:
        fed = self.federation
        deadline = fed.config.find_deadline or self.lookup_deadline
        result: SimFuture = SimFuture()
        merged: dict[str, WsdlDocument] = {}
        missed: list[int] = []
        state = {"outstanding": fed.shard_count}

        def settle(shard: int, future: SimFuture) -> None:
            exc = future.exception()
            if exc is not None:
                missed.append(shard)
            else:
                try:
                    for xml in future.result():
                        document = WsdlDocument.from_xml(str(xml).encode("utf-8"))
                        merged[document.service] = document
                except Exception:  # corrupt/mispaired reply: shard is blind
                    missed.append(shard)
            state["outstanding"] -= 1
            if state["outstanding"] == 0:
                if missed:
                    self.partial_finds += 1
                    self.degraded_reads += 1
                    self._m_degraded.inc()
                documents = sorted(merged.values(), key=lambda d: d.service)
                result.set_result(FederatedDocuments(documents, sorted(missed)))

        for shard in range(fed.shard_count):
            self._shard_call(
                shard, "find", [context_filter], deadline=deadline
            ).add_done_callback(lambda fut, s=shard: settle(s, fut))
        return result

    def register_gateway(self, island: str, location: str) -> SimFuture:
        if self.federation is not None:
            return self._keyed_call(
                gateway_ring_key(island), "register_gateway", [island, location]
            )
        return self._call("register_gateway", [island, location])

    def unregister_gateway(self, island: str) -> SimFuture:
        """Remove ``island``'s registration; also evicts it from the local
        degraded-read cache so a later directory outage cannot resurrect
        the entry this client just removed."""
        if self._gateway_cache is not None:
            self._gateway_cache.pop(island, None)
        if self.federation is not None:
            return self._keyed_call(
                gateway_ring_key(island), "unregister_gateway", [island]
            )
        return self._call("unregister_gateway", [island])

    def list_gateways(self) -> SimFuture:
        """Resolve to the ``island -> control location`` registry.

        The last successful answer is remembered and served when the
        directory is unreachable (another degraded read), so heartbeating
        keeps working through a UDDI outage.  Concurrent callers share one
        in-flight round trip.
        """
        if self._gateways_inflight is not None:
            self.coalesced_lookups += 1
            self._m_coalesced.inc()
            return _follow(self._gateways_inflight)
        result: SimFuture = SimFuture()
        self._gateways_inflight = result

        def decode(future: SimFuture) -> None:
            self._gateways_inflight = None
            exc = future.exception()
            if exc is None:
                try:
                    registry = dict(future.result())
                except (TypeError, ValueError) as shape_exc:
                    # Not an island->location map: a mispaired pipelined
                    # reply.  Fall through to the failure path (degraded
                    # cache read if allowed) instead of crashing.
                    exc = RepositoryError(
                        f"malformed gateway registry reply: {shape_exc}"
                    )
                else:
                    self._gateway_cache = registry
                    result.set_result(registry)
                    return
            if isinstance(exc, (SoapFault, ServiceNotFoundError)):
                result.set_exception(exc)
                return
            self.lookup_failures += 1
            self._m_failures.inc()
            if self.allow_stale and self._gateway_cache is not None:
                self.degraded_reads += 1
                self._m_degraded.inc()
                result.set_result(dict(self._gateway_cache))
                return
            result.set_exception(exc)

        if self.federation is not None:
            self._scatter_gateways().add_done_callback(decode)
        else:
            self._call("list_gateways", []).add_done_callback(decode)
        return result

    def _scatter_gateways(self) -> SimFuture:
        """Merge the gateway registry across all shards.  Partial answers
        merge; only a total miss (every shard unreachable) surfaces as a
        failure, which then takes the usual degraded-cache path."""
        fed = self.federation
        deadline = fed.config.find_deadline or self.lookup_deadline
        result: SimFuture = SimFuture()
        merged: dict[str, str] = {}
        state: dict[str, Any] = {"outstanding": fed.shard_count, "hits": 0, "last": None}

        def settle(future: SimFuture) -> None:
            exc = future.exception()
            if exc is None:
                try:
                    merged.update(dict(future.result()))
                    state["hits"] += 1
                except (TypeError, ValueError) as shape_exc:
                    state["last"] = RepositoryError(
                        f"malformed gateway registry reply: {shape_exc}"
                    )
            else:
                state["last"] = exc
            state["outstanding"] -= 1
            if state["outstanding"] == 0:
                if state["hits"] == 0:
                    result.set_exception(state["last"])
                else:
                    result.set_result(merged)

        for shard in range(fed.shard_count):
            self._shard_call(
                shard, "list_gateways", [], deadline=deadline
            ).add_done_callback(settle)
        return result

    def invalidate(self, service: str) -> None:
        self._cache.pop(service, None)
        # The on_change/unregister chain lands here: whatever the directory
        # just told us about this name supersedes a cached "not found".
        self._negative.pop(service, None)

    def forget_caches(self) -> None:
        """Cold crash of the owning gateway: the read cache and the
        degraded-read gateway snapshot are process memory and die with it.
        (In-flight lookups are left to settle; their callers' deadlines
        already bound them.)"""
        self._cache.clear()
        self._negative.clear()
        self._gateway_cache = None
