"""Write-ahead log stores: framed byte logs with corruption detection.

One record on the medium is::

    [u32 payload length][u32 CRC32(payload)][payload bytes]

(both integers little-endian).  The framing is what makes recovery safe
against the two real-world failure shapes of an append-only log:

- **truncated tail** — the process died mid-append, so the last record's
  header or payload is cut short; and
- **torn write** — payload bytes landed garbled (checksum mismatch).

Reading stops at the first invalid record: everything before it is
trusted, everything from it on is discarded, and the store counts one
truncation event so the owner can surface a ``store.<island>.
wal_truncated`` metric.  A valid record can never be *followed* by more
valid data after a torn one — the log is append-only — so stopping is
the correct (and the only deterministic) policy.

Two backends share the contract:

- :class:`MemWalStore` — a deterministic in-sim medium: the byte buffer
  lives outside any node's volatile state, so it survives a simulated
  crash exactly like a disk survives pulled power.  This is the backend
  the testkit persistence band runs on (no filesystem, no wall clock).
- :class:`SqliteWalStore` — the same framing persisted through stdlib
  ``sqlite3`` (one row per record, header fields as columns), for runs
  that want a real file.  CRCs are verified on read here too: the store
  does not trust the database layer with end-to-end integrity.
"""

from __future__ import annotations

import sqlite3
import struct
import zlib

from repro.errors import FrameworkError

_HEADER = struct.Struct("<II")
HEADER_SIZE = _HEADER.size


class StoreClosedError(FrameworkError):
    """An append/read hit a store whose medium is closed (crashed)."""


def encode_record(payload: bytes) -> bytes:
    """Frame one payload for the medium."""
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def decode_records(buffer: bytes) -> tuple[list[bytes], bool]:
    """Parse a byte log into ``(valid payloads, truncation detected)``.

    Stops at the first truncated-tail or torn-write record; a clean log
    ends exactly at the buffer boundary with ``False``.
    """
    records: list[bytes] = []
    offset = 0
    size = len(buffer)
    while offset < size:
        if offset + HEADER_SIZE > size:
            return records, True  # header cut short
        length, crc = _HEADER.unpack_from(buffer, offset)
        start = offset + HEADER_SIZE
        end = start + length
        if end > size:
            return records, True  # payload cut short
        payload = bytes(buffer[start:end])
        if zlib.crc32(payload) != crc:
            return records, True  # torn write
        records.append(payload)
        offset = end
    return records, False


class WalStore:
    """Abstract append-only record log with crash/reopen semantics.

    ``close()`` models the owning process dying (or shutting down): the
    medium keeps its bytes but refuses I/O until ``reopen()``.  Appends
    are durable the moment they return — the simulated "write" is
    synchronous, which is what makes replay a pure function of the
    faults' crash points.
    """

    def __init__(self) -> None:
        self.closed = False
        self.records_appended = 0
        self.bytes_appended = 0
        #: Reads that detected a truncated/torn tail (cumulative).
        self.truncations_seen = 0

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self.closed = True

    def reopen(self) -> None:
        self.closed = False

    def _check_open(self, what: str) -> None:
        if self.closed:
            raise StoreClosedError(f"cannot {what}: store is closed")

    # -- the contract ---------------------------------------------------------

    def append(self, payload: bytes) -> None:
        raise NotImplementedError

    def read_all(self) -> tuple[list[bytes], bool]:
        """All valid payloads in append order, plus a truncation flag."""
        raise NotImplementedError

    def rewrite(self, payloads: list[bytes]) -> None:
        """Atomically replace the whole log (checkpoint compaction)."""
        raise NotImplementedError

    def size_bytes(self) -> int:
        raise NotImplementedError

    def record_count(self) -> int:
        """Valid records currently on the medium."""
        return len(self.read_all()[0])


class MemWalStore(WalStore):
    """Deterministic in-sim backend: a byte buffer as the durable medium.

    The buffer is owned by the store object, which the test harness keeps
    *outside* the gateway's volatile state — so a simulated node crash
    (which wipes router queues, caches and timers) leaves every appended
    byte intact, exactly like a disk.  Tests simulate a dirty shutdown by
    truncating or garbling ``buffer`` directly (or via :meth:`truncate_tail`
    / :meth:`tear`).
    """

    def __init__(self, initial: bytes = b"") -> None:
        super().__init__()
        self.buffer = bytearray(initial)

    def append(self, payload: bytes) -> None:
        self._check_open("append")
        self.buffer += encode_record(payload)
        self.records_appended += 1
        self.bytes_appended += HEADER_SIZE + len(payload)

    def read_all(self) -> tuple[list[bytes], bool]:
        self._check_open("read")
        records, truncated = decode_records(self.buffer)
        if truncated:
            self.truncations_seen += 1
        return records, truncated

    def rewrite(self, payloads: list[bytes]) -> None:
        self._check_open("rewrite")
        fresh = bytearray()
        for payload in payloads:
            fresh += encode_record(payload)
        self.buffer = fresh

    def size_bytes(self) -> int:
        return len(self.buffer)

    # -- corruption helpers (tests) -------------------------------------------

    def truncate_tail(self, nbytes: int) -> None:
        """Drop the last ``nbytes`` of the medium (simulated dirty stop)."""
        if nbytes > 0:
            del self.buffer[max(0, len(self.buffer) - nbytes):]

    def tear(self, offset: int) -> None:
        """Flip one payload byte at ``offset`` (simulated torn write)."""
        if 0 <= offset < len(self.buffer):
            self.buffer[offset] ^= 0xFF


class SqliteWalStore(WalStore):
    """Sqlite-backed log: one row per record, CRC re-verified on read.

    ``path`` is a filesystem path (or ``":memory:"`` for tests that only
    need the sqlite codepath without a file — note an in-memory database
    dies with its connection, so ``close()``/``reopen()`` only round-trip
    state for file-backed stores).
    """

    def __init__(self, path: str) -> None:
        super().__init__()
        self.path = path
        self._conn: sqlite3.Connection | None = None
        self._connect()

    def _connect(self) -> None:
        self._conn = sqlite3.connect(self.path)
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS wal ("
            " seq INTEGER PRIMARY KEY AUTOINCREMENT,"
            " length INTEGER NOT NULL,"
            " crc INTEGER NOT NULL,"
            " payload BLOB NOT NULL)"
        )
        self._conn.commit()

    def close(self) -> None:
        if self._conn is not None:
            self._conn.commit()
            self._conn.close()
            self._conn = None
        super().close()

    def reopen(self) -> None:
        super().reopen()
        if self._conn is None:
            self._connect()

    def append(self, payload: bytes) -> None:
        self._check_open("append")
        assert self._conn is not None
        self._conn.execute(
            "INSERT INTO wal (length, crc, payload) VALUES (?, ?, ?)",
            (len(payload), zlib.crc32(payload), payload),
        )
        self._conn.commit()
        self.records_appended += 1
        self.bytes_appended += HEADER_SIZE + len(payload)

    def read_all(self) -> tuple[list[bytes], bool]:
        self._check_open("read")
        assert self._conn is not None
        records: list[bytes] = []
        truncated = False
        rows = self._conn.execute(
            "SELECT length, crc, payload FROM wal ORDER BY seq"
        )
        for length, crc, payload in rows:
            payload = bytes(payload)
            if len(payload) != length or zlib.crc32(payload) != crc:
                truncated = True
                break
            records.append(payload)
        if truncated:
            self.truncations_seen += 1
        return records, truncated

    def rewrite(self, payloads: list[bytes]) -> None:
        self._check_open("rewrite")
        assert self._conn is not None
        with self._conn:
            self._conn.execute("DELETE FROM wal")
            self._conn.executemany(
                "INSERT INTO wal (length, crc, payload) VALUES (?, ?, ?)",
                [(len(p), zlib.crc32(p), p) for p in payloads],
            )

    def size_bytes(self) -> int:
        assert self._conn is not None
        row = self._conn.execute(
            "SELECT COALESCE(SUM(length), 0) + COUNT(*) * ? FROM wal",
            (HEADER_SIZE,),
        ).fetchone()
        return int(row[0])
