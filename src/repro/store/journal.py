"""Gateway and directory journals: what gets logged, how it replays.

A journal owns one :class:`~repro.store.wal.WalStore` and gives the
durable-state owners (VSG, event router, rule engines, VSR directory) a
typed logging surface.  Every record is one canonical-JSON object with a
``"t"`` tag; replay is a **pure fold** over the record list into a plain
state dict — no simulation, no live objects — which is what the testkit's
replay-idempotence oracle leans on: folding the same bytes twice must
yield byte-identical snapshots.

Records are state *transitions*, mirroring the router's own moves, so
the fold never stores data twice: a ``flush`` record carries only the
batch id — the events it retained are exactly the queue the fold already
holds for that island, just as :meth:`EventRouter._flush` drains the live
queue into the unacked slot.

**Checkpoint compaction.**  After ``checkpoint_every`` appends the
journal folds its own log into one ``ckpt`` record and rewrites the
medium as ``[ckpt]``, so replay work is bounded by the checkpoint
interval however long the gateway lives.  A checkpoint is itself just a
record: replay treats it as "replace the whole state", and records after
it fold on top as usual.
"""

from __future__ import annotations

import json
import math
import re
from typing import Any

from repro.obs import NOOP_OBS
from repro.store.wal import WalStore

#: Appends between checkpoint compactions.  Low enough that replay after
#: any crash folds at most this many tail records; high enough that the
#: periodic re-fold (O(records)) stays amortized-constant per append.
DEFAULT_CHECKPOINT_EVERY = 256


#: One shared encoder: ``json.dumps`` rebuilds its encoder on every
#: call, which is measurable on the append hot path (experiment C13
#: gates journaling at <3 % of run wall-clock).
_ENCODER = json.JSONEncoder(sort_keys=True, separators=(",", ":"), ensure_ascii=False)

#: Strings the JSON encoder would emit verbatim (nothing to escape).
_ESCAPE_FREE = re.compile(r'[^"\\\x00-\x1f]*\Z')


def _encode(record: dict[str, Any]) -> bytes:
    # Fast path for the dominant record shapes (seq/ack/flush/drain/...):
    # a flat dict of scalars with escape-free strings formats directly,
    # skipping the encoder's per-call overhead — which outweighs the
    # byte volume for these ~20-70 byte records.  Anything nested, and
    # any value the formats below wouldn't render exactly as the encoder
    # does, falls through to the canonical encoder.
    parts = []
    for key in sorted(record):
        value = record[key]
        if isinstance(value, str):
            if _ESCAPE_FREE.match(value) is None:
                break
            parts.append(f'"{key}":"{value}"')
        elif value is True:
            parts.append(f'"{key}":true')
        elif value is False:
            parts.append(f'"{key}":false')
        elif value is None:
            parts.append(f'"{key}":null')
        elif isinstance(value, int):
            parts.append(f'"{key}":{value}')
        elif isinstance(value, float) and math.isfinite(value):
            parts.append(f'"{key}":{value!r}')
        else:
            break
    else:
        return ("{" + ",".join(parts) + "}").encode("utf-8")
    return _ENCODER.encode(record).encode("utf-8")


def fresh_gateway_state() -> dict[str, Any]:
    """The empty fold state (also what a brand-new gateway replays to)."""
    return {
        "registered": None,  # [island, location, renewed_at] once registered
        "documents": {},  # service -> WSDL xml (exported by this gateway)
        "local_topics": [],  # topics/patterns this gateway subscribed to
        "remote_gateways": {},  # control location -> island (poll/channel targets)
        "remote_subs": {},  # subscriber island -> sorted topic patterns
        "remote_locations": {},  # subscriber island -> control location
        "sequence": 0,  # publisher event sequence high-water
        "queues": {},  # subscriber island -> undelivered events
        "unacked": {},  # subscriber island -> [batch id, events]
        "batch_seq": {},  # subscriber island -> last batch id issued
        "channel_acks": {},  # control location -> highest delivered batch
        "rules": {},  # engine label -> {seen: [[rule, key]...], last_fired, epoch}
    }


class _JournalBase:
    """Shared plumbing: append/encode, metrics, checkpointing, replay."""

    def __init__(
        self,
        store: WalStore,
        label: str,
        obs: Any = None,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    ) -> None:
        self.store = store
        self.label = label
        self.obs = obs if obs is not None else NOOP_OBS
        self.checkpoint_every = checkpoint_every
        self._since_checkpoint = 0
        self.checkpoints = 0
        self.replays = 0
        #: Truncated/torn tails detected across every replay (plain
        #: mirror of the ``store.<label>.wal_truncated`` counter so the
        #: number is readable with observability off).
        self.truncations_detected = 0
        metrics = self.obs.metrics
        self._m_records = metrics.counter(f"store.{label}.wal_records")
        self._m_bytes = metrics.counter(f"store.{label}.wal_bytes")
        self._m_checkpoints = metrics.counter(f"store.{label}.checkpoints")
        self._m_truncated = metrics.counter(f"store.{label}.wal_truncated")
        self._m_replays = metrics.counter(f"store.{label}.replays")
        #: Running fold of everything appended so far, so a checkpoint
        #: can serialize it directly instead of re-reading and re-folding
        #: the whole medium (``json.loads`` per record costs more than
        #: the append itself).  ``None`` means "not in sync with the
        #: medium" — the next checkpoint rebuilds it with one replay.
        self._folded: dict[str, Any] | None = None
        if not self.store.closed and self.store.record_count() == 0:
            # An empty medium folds to the fresh state: seed the running
            # fold so even the first checkpoint skips the replay.
            self._folded = self._fresh_state()

    # -- appending -------------------------------------------------------------

    def _log(self, record: dict[str, Any]) -> None:
        payload = _encode(record)
        self.store.append(payload)
        self._m_records.inc()
        self._m_bytes.inc(len(payload))
        if self._folded is not None:
            self._fold(self._folded, record)
        self._since_checkpoint += 1
        if self._since_checkpoint >= self.checkpoint_every:
            self.checkpoint()

    def checkpoint(self) -> None:
        """Fold the log into one ``ckpt`` record and compact the medium."""
        if self._folded is None:
            self._folded = self.replay(count_replay=False)
        self.store.rewrite([_encode({"t": "ckpt", "state": self._folded})])
        self._since_checkpoint = 0
        self.checkpoints += 1
        self._m_checkpoints.inc()

    # -- replay ----------------------------------------------------------------

    def _fresh_state(self) -> dict[str, Any]:
        raise NotImplementedError

    def _fold(self, state: dict[str, Any], record: dict[str, Any]) -> None:
        raise NotImplementedError

    def replay(self, count_replay: bool = True) -> dict[str, Any]:
        """Fold the medium's valid records into a state dict.

        Replay stops at the last valid record (the store detects
        truncated tails and torn writes via the length+CRC framing) and
        counts one ``wal_truncated`` when the tail was damaged.
        """
        payloads, truncated = self.store.read_all()
        if truncated:
            self.truncations_detected += 1
            self._m_truncated.inc()
        # A replay means something happened to the medium behind this
        # object's back (a crash, a torn tail) — drop the running fold
        # rather than trust it; the next checkpoint rebuilds it.
        self._folded = None
        state = self._fresh_state()
        for payload in payloads:
            record = json.loads(payload.decode("utf-8"))
            if record.get("t") == "ckpt":
                state = record["state"]
            else:
                self._fold(state, record)
        if count_replay:
            self.replays += 1
            self._m_replays.inc()
        return state

    def snapshot_json(self) -> str:
        """Canonical JSON of a fresh replay — the replay-idempotence
        oracle compares two of these byte for byte."""
        return json.dumps(
            self.replay(count_replay=False),
            sort_keys=True,
            separators=(",", ":"),
        )

    def dump(self) -> dict[str, Any]:
        """Diagnostic dump uploaded next to shrunk repros: every valid
        record plus the store's accounting."""
        payloads, truncated = self.store.read_all()
        return {
            "label": self.label,
            "records": [json.loads(p.decode("utf-8")) for p in payloads],
            "truncated_tail": truncated,
            "records_appended": self.store.records_appended,
            "bytes_appended": self.store.bytes_appended,
            "checkpoints": self.checkpoints,
            "replays": self.replays,
        }


class GatewayJournal(_JournalBase):
    """One island gateway's durable record stream.

    The logging surface mirrors the state transitions of the VSG, its
    event router and any rule engines attached to it; the fold rebuilds
    exactly the state :meth:`VirtualServiceGateway.recover` reinstalls.
    """

    def _fresh_state(self) -> dict[str, Any]:
        return fresh_gateway_state()

    # -- VSG lifecycle ---------------------------------------------------------

    def log_register(self, island: str, location: str, renewed_at: float) -> None:
        """Directory registration — ``renewed_at`` is the lease stamp: a
        recovering gateway re-registers, which renews it."""
        self._log({"t": "reg", "island": island, "location": location,
                   "renewed_at": renewed_at})

    def log_unregister(self) -> None:
        self._log({"t": "unreg"})

    def log_export(self, service: str, xml: str) -> None:
        self._log({"t": "exp", "service": service, "xml": xml})

    def log_withdraw(self, service: str) -> None:
        self._log({"t": "wd", "service": service})

    # -- event router ----------------------------------------------------------

    def log_local_topic(self, topic: str) -> None:
        self._log({"t": "lsub", "topic": topic})

    def log_remote_gateway(self, location: str, island: str) -> None:
        self._log({"t": "rgw", "location": location, "island": island})

    def log_remote_sub(self, island: str, topic: str, location: str) -> None:
        self._log({"t": "rsub", "island": island, "topic": topic,
                   "location": location})

    def log_sequence(self, sequence: int) -> None:
        self._log({"t": "seq", "n": sequence})

    def log_queue(self, island: str, event: dict[str, Any]) -> None:
        self._log({"t": "evq", "island": island, "event": event})

    def log_drain(self, island: str) -> None:
        self._log({"t": "drain", "island": island})

    def log_flush(self, island: str, batch: int) -> None:
        self._log({"t": "flush", "island": island, "batch": batch})

    def log_ack(self, island: str, batch: int) -> None:
        self._log({"t": "ack", "island": island, "batch": batch})

    def log_channel_ack(self, location: str, batch: int) -> None:
        self._log({"t": "cack", "location": location, "batch": batch})

    # -- rule engines ----------------------------------------------------------

    def log_rule_epoch(self, engine: str, epoch: float) -> None:
        self._log({"t": "repoch", "engine": engine, "epoch": epoch})

    def log_rule_seen(self, engine: str, rule: str, key: str) -> None:
        self._log({"t": "rseen", "engine": engine, "rule": rule, "key": key})

    def log_rule_fired(self, engine: str, rule: str, at: float) -> None:
        self._log({"t": "rfired", "engine": engine, "rule": rule, "at": at})

    # -- the fold --------------------------------------------------------------

    def _fold(self, state: dict[str, Any], record: dict[str, Any]) -> None:
        tag = record["t"]
        if tag == "reg":
            state["registered"] = [
                record["island"], record["location"], record["renewed_at"]
            ]
        elif tag == "unreg":
            state["registered"] = None
        elif tag == "exp":
            state["documents"][record["service"]] = record["xml"]
        elif tag == "wd":
            state["documents"].pop(record["service"], None)
        elif tag == "lsub":
            if record["topic"] not in state["local_topics"]:
                state["local_topics"].append(record["topic"])
        elif tag == "rgw":
            state["remote_gateways"][record["location"]] = record["island"]
        elif tag == "rsub":
            topics = state["remote_subs"].setdefault(record["island"], [])
            if record["topic"] not in topics:
                topics.append(record["topic"])
            if record["location"]:
                state["remote_locations"][record["island"]] = record["location"]
        elif tag == "seq":
            state["sequence"] = max(state["sequence"], record["n"])
        elif tag == "evq":
            state["queues"].setdefault(record["island"], []).append(record["event"])
        elif tag == "drain":
            # handle_fetch hands the subscriber everything: the queue and
            # any retained unacked batch are both discharged.
            state["queues"][record["island"]] = []
            state["unacked"].pop(record["island"], None)
        elif tag == "flush":
            island = record["island"]
            state["unacked"][island] = [
                record["batch"], state["queues"].get(island, [])
            ]
            state["queues"][island] = []
            state["batch_seq"][island] = record["batch"]
        elif tag == "ack":
            retained = state["unacked"].get(record["island"])
            if retained is not None and record["batch"] >= retained[0]:
                state["unacked"].pop(record["island"], None)
        elif tag == "cack":
            acks = state["channel_acks"]
            acks[record["location"]] = max(
                acks.get(record["location"], 0), record["batch"]
            )
        elif tag == "repoch":
            self._engine_state(state, record)["epoch"] = record["epoch"]
        elif tag == "rseen":
            self._engine_state(state, record)["seen"].append(
                [record["rule"], record["key"]]
            )
        elif tag == "rfired":
            engine = self._engine_state(state, record)
            engine["last_fired"][record["rule"]] = record["at"]
        # Unknown tags are skipped, not fatal: a journal written by a
        # newer gateway must still replay on an older one.

    @staticmethod
    def _engine_state(state: dict[str, Any], record: dict[str, Any]) -> dict[str, Any]:
        return state["rules"].setdefault(
            record["engine"], {"seen": [], "last_fired": {}, "epoch": None}
        )


class DirectoryJournal(_JournalBase):
    """The VSR directory's durable record stream (documents + registry)."""

    def _fresh_state(self) -> dict[str, Any]:
        return {"documents": {}, "gateways": {}}

    def log_publish(self, service: str, xml: str) -> None:
        self._log({"t": "pub", "service": service, "xml": xml})

    def log_withdraw(self, service: str) -> None:
        self._log({"t": "wd", "service": service})

    def log_register(self, island: str, location: str) -> None:
        self._log({"t": "reg", "island": island, "location": location})

    def log_unregister(self, island: str) -> None:
        self._log({"t": "unreg", "island": island})

    def _fold(self, state: dict[str, Any], record: dict[str, Any]) -> None:
        tag = record["t"]
        if tag == "pub":
            state["documents"][record["service"]] = record["xml"]
        elif tag == "wd":
            state["documents"].pop(record["service"], None)
        elif tag == "reg":
            state["gateways"][record["island"]] = record["location"]
        elif tag == "unreg":
            state["gateways"].pop(record["island"], None)
