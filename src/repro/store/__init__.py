"""Pluggable write-ahead persistence for gateways and the directory.

Everything above this package is in-memory: a cold gateway restart loses
the VSR registration, exported documents, subscriptions and the PR 5
at-least-once event retention.  ``repro.store`` adds the durable layer:

- :mod:`repro.store.wal` — the :class:`WalStore` byte-log interface
  (length+CRC32 record framing, truncated-tail / torn-write detection)
  with a deterministic in-sim backend (:class:`MemWalStore`) and a
  sqlite-backed one (:class:`SqliteWalStore`).
- :mod:`repro.store.journal` — :class:`GatewayJournal` /
  :class:`DirectoryJournal`: the record vocabulary, pure-fold replay to a
  canonical state snapshot, and checkpoint compaction so replay stays
  bounded however long a gateway lives.

The crash→restart→rejoin flow built on top lives in the owners of the
state: :meth:`repro.core.vsg.VirtualServiceGateway.on_crash` /
``recover()``, :meth:`repro.core.vsr.VsrDirectory.cold_crash` /
``cold_recover()``, and the fault injector's cold-restart hooks
(:mod:`repro.faults.injector`).  See ``docs/PERSISTENCE.md``.
"""

from repro.store.wal import MemWalStore, SqliteWalStore, WalStore, encode_record
from repro.store.journal import DirectoryJournal, GatewayJournal

__all__ = [
    "WalStore",
    "MemWalStore",
    "SqliteWalStore",
    "encode_record",
    "GatewayJournal",
    "DirectoryJournal",
]
