"""The Jini lookup service (the reggie of this simulation).

The lookup service is itself a remote object: clients reach it through the
RMI reference carried in discovery announcements and call ``register`` /
``lookup`` / ``notify`` / lease verbs on it.  Registrations are leased;
expiry withdraws the service and fires match-transition events to
interested listeners.
"""

from __future__ import annotations

from typing import Any

from repro.errors import JiniError
from repro.net.segment import Segment
from repro.net.transport import TransportStack
from repro.jini.discovery import DEFAULT_GROUP, DiscoveryAnnouncer
from repro.jini.events import (
    TRANSITION_MATCH_NOMATCH,
    TRANSITION_NOMATCH_MATCH,
    EventListenerEntry,
    RemoteEvent,
)
from repro.jini.lease import DEFAULT_LEASE_DURATION, LeaseTable
from repro.jini.rmi import RemoteRef, RmiRuntime


class ServiceItem:
    """One registered service: identity, interfaces, attributes, proxy."""

    __slots__ = ("service_id", "interfaces", "attributes", "proxy")

    def __init__(
        self,
        interfaces: tuple[str, ...],
        attributes: dict[str, Any] | None = None,
        proxy: dict[str, Any] | None = None,
        service_id: int = 0,
    ) -> None:
        self.service_id = service_id
        self.interfaces = tuple(interfaces)
        self.attributes = dict(attributes or {})
        #: Marshallable proxy descriptor — normally a RemoteRef wire dict.
        self.proxy = proxy or {}

    def to_wire(self) -> dict[str, Any]:
        return {
            "service_id": self.service_id,
            "interfaces": list(self.interfaces),
            "attributes": self.attributes,
            "proxy": self.proxy,
        }

    @staticmethod
    def from_wire(data: dict[str, Any]) -> "ServiceItem":
        return ServiceItem(
            interfaces=tuple(data.get("interfaces", ())),
            attributes=data.get("attributes", {}),
            proxy=data.get("proxy", {}),
            service_id=int(data.get("service_id", 0)),
        )

    def proxy_ref(self) -> RemoteRef:
        return RemoteRef.from_wire(self.proxy)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ServiceItem #{self.service_id} {','.join(self.interfaces)}>"


class ServiceTemplate:
    """Matching template: any combination of id / interface / attributes."""

    __slots__ = ("service_id", "interface", "attributes")

    def __init__(
        self,
        interface: str | None = None,
        attributes: dict[str, Any] | None = None,
        service_id: int | None = None,
    ) -> None:
        self.interface = interface
        self.attributes = dict(attributes or {})
        self.service_id = service_id

    def matches(self, item: ServiceItem) -> bool:
        if self.service_id is not None and item.service_id != self.service_id:
            return False
        if self.interface is not None and self.interface not in item.interfaces:
            return False
        for key, value in self.attributes.items():
            if item.attributes.get(key) != value:
                return False
        return True

    def to_wire(self) -> dict[str, Any]:
        return {
            "service_id": self.service_id,
            "interface": self.interface,
            "attributes": self.attributes,
        }

    @staticmethod
    def from_wire(data: dict[str, Any]) -> "ServiceTemplate":
        service_id = data.get("service_id")
        return ServiceTemplate(
            interface=data.get("interface"),
            attributes=data.get("attributes", {}),
            service_id=None if service_id is None else int(service_id),
        )


class ServiceRegistration:
    """Returned to a registrant: the assigned id plus the guarding lease."""

    __slots__ = ("service_id", "lease")

    def __init__(self, service_id: int, lease) -> None:
        self.service_id = service_id
        self.lease = lease


class LookupService:
    """The lookup service proper.

    Construction exports the service over the node's RMI runtime and starts
    discovery announcements on the island segment.
    """

    def __init__(
        self,
        runtime: RmiRuntime,
        segment: Segment | str,
        group: str = DEFAULT_GROUP,
        announce_interval: float = 20.0,
    ) -> None:
        self.runtime = runtime
        self.sim = runtime.sim
        self._items: dict[int, ServiceItem] = {}
        self._item_leases: dict[int, int] = {}  # service_id -> lease_id
        self.leases = LeaseTable(self.sim)
        self._listeners: dict[int, tuple[ServiceTemplate, EventListenerEntry]] = {}
        self._next_service_id = 1
        self._next_event_id = 1
        self.ref = runtime.export(self, interfaces=("net.jini.core.lookup.ServiceRegistrar",))
        self.announcer = DiscoveryAnnouncer(
            runtime.stack, segment, self.ref, group=group, interval=announce_interval
        )
        self.announcer.start()

    # -- remote verbs (called via RMI; all args/results marshallable) ----------

    def register(self, item_wire: dict[str, Any], duration: float) -> dict[str, Any]:
        item = ServiceItem.from_wire(item_wire)
        if not item.interfaces:
            raise JiniError("service item declares no interfaces")
        if item.service_id and item.service_id in self._items:
            # Re-registration: refresh proxy/attributes, keep identity.
            service_id = item.service_id
            old_lease_id = self._item_leases.pop(service_id, None)
            if old_lease_id is not None:
                self.leases.cancel(old_lease_id)
        else:
            service_id = self._next_service_id
            self._next_service_id += 1
        item.service_id = service_id
        lease = self.leases.grant(
            duration or DEFAULT_LEASE_DURATION,
            cookie=("registration", service_id),
            on_expire=lambda _lease: self._withdraw(service_id),
        )
        self._items[service_id] = item
        self._item_leases[service_id] = lease.lease_id
        self._fire_transition(item, TRANSITION_NOMATCH_MATCH)
        return {"service_id": service_id, "lease": lease.to_wire()}

    def renew_lease(self, lease_id: int, duration: float) -> float:
        return self.leases.renew(int(lease_id), float(duration)).expiration

    def cancel_lease(self, lease_id: int) -> None:
        self.leases.cancel(int(lease_id))

    def lookup(self, template_wire: dict[str, Any], max_matches: int = 16) -> list[dict[str, Any]]:
        template = ServiceTemplate.from_wire(template_wire)
        matches = [
            item.to_wire()
            for item in self._items.values()
            if template.matches(item)
        ]
        matches.sort(key=lambda wire: wire["service_id"])
        return matches[: int(max_matches)]

    def notify(
        self,
        template_wire: dict[str, Any],
        listener_wire: dict[str, Any],
        duration: float,
    ) -> dict[str, Any]:
        template = ServiceTemplate.from_wire(template_wire)
        listener = RemoteRef.from_wire(listener_wire)
        event_id = self._next_event_id
        self._next_event_id += 1
        lease = self.leases.grant(
            duration or DEFAULT_LEASE_DURATION,
            cookie=("listener", event_id),
            on_expire=lambda _lease: self._listeners.pop(event_id, None),
        )
        entry = EventListenerEntry(event_id, listener, lease)
        self._listeners[event_id] = (template, entry)
        return {"event_id": event_id, "lease": lease.to_wire()}

    # -- local inspection --------------------------------------------------------

    @property
    def registered_count(self) -> int:
        return len(self._items)

    def items(self) -> list[ServiceItem]:
        return sorted(self._items.values(), key=lambda item: item.service_id)

    def close(self) -> None:
        self.announcer.close()
        self.runtime.unexport(self.ref)

    # -- internals ------------------------------------------------------------

    def _withdraw(self, service_id: int) -> None:
        item = self._items.pop(service_id, None)
        self._item_leases.pop(service_id, None)
        if item is not None:
            self._fire_transition(item, TRANSITION_MATCH_NOMATCH)

    def _fire_transition(self, item: ServiceItem, transition: int) -> None:
        for template, entry in list(self._listeners.values()):
            if not template.matches(item):
                continue
            event = RemoteEvent(
                source="lookup",
                event_id=entry.event_id,
                sequence=entry.next_sequence(),
                payload={"transition": transition, "item": item.to_wire()},
            )
            self.runtime.one_way(entry.listener, "notify", [event.to_wire()])
