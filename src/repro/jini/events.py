"""Jini remote events.

A Jini event source delivers :class:`RemoteEvent` objects to registered
remote listeners by calling ``notify`` on the listener's RMI reference.
Registrations are leased, exactly like service registrations.
"""

from __future__ import annotations

from typing import Any

from repro.jini.lease import Lease
from repro.jini.rmi import RemoteRef

#: Lookup-service transition: a service matching the template appeared.
TRANSITION_NOMATCH_MATCH = 1
#: Lookup-service transition: a matching service disappeared.
TRANSITION_MATCH_NOMATCH = 2


class RemoteEvent:
    """One event instance, as delivered to listeners."""

    __slots__ = ("source", "event_id", "sequence", "payload")

    def __init__(self, source: str, event_id: int, sequence: int, payload: Any = None) -> None:
        self.source = source
        self.event_id = event_id
        self.sequence = sequence
        self.payload = payload

    def to_wire(self) -> dict[str, Any]:
        return {
            "source": self.source,
            "event_id": self.event_id,
            "sequence": self.sequence,
            "payload": self.payload,
        }

    @staticmethod
    def from_wire(data: dict[str, Any]) -> "RemoteEvent":
        return RemoteEvent(
            source=str(data.get("source", "")),
            event_id=int(data.get("event_id", 0)),
            sequence=int(data.get("sequence", 0)),
            payload=data.get("payload"),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RemoteEvent {self.source}#{self.event_id} seq={self.sequence}>"


class EventRegistration:
    """Returned to a listener when it registers interest."""

    __slots__ = ("event_id", "lease")

    def __init__(self, event_id: int, lease: Lease) -> None:
        self.event_id = event_id
        self.lease = lease

    def to_wire(self) -> dict[str, Any]:
        return {"event_id": self.event_id, "lease": self.lease.to_wire()}

    @staticmethod
    def from_wire(data: dict[str, Any]) -> "EventRegistration":
        return EventRegistration(int(data["event_id"]), Lease.from_wire(data["lease"]))


class EventListenerEntry:
    """Grantor-side record of one registered listener."""

    __slots__ = ("event_id", "listener", "lease", "sequence")

    def __init__(self, event_id: int, listener: RemoteRef, lease: Lease) -> None:
        self.event_id = event_id
        self.listener = listener
        self.lease = lease
        self.sequence = 0

    def next_sequence(self) -> int:
        self.sequence += 1
        return self.sequence
