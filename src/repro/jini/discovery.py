"""Jini multicast discovery.

Real Jini uses two multicast protocols on UDP port 4160: lookup services
periodically *announce* themselves, and clients *request* lookup services
and get unicast replies.  Both are reproduced here on the island segment's
broadcast service.  The payload of either message is the marshalled wire
form of the lookup service's RMI reference plus its group name.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import MarshallingError
from repro.net.addressing import NodeAddress
from repro.net.segment import Segment
from repro.net.simkernel import Event
from repro.net.transport import TransportStack
from repro.jini.marshalling import marshal, unmarshal
from repro.jini.rmi import RemoteRef

DISCOVERY_PORT = 4160
DEFAULT_GROUP = "public"
ANNOUNCE_INTERVAL = 20.0


class DiscoveryAnnouncer:
    """Run by a lookup service: answers requests and announces periodically."""

    def __init__(
        self,
        stack: TransportStack,
        segment: Segment | str,
        lookup_ref: RemoteRef,
        group: str = DEFAULT_GROUP,
        interval: float = ANNOUNCE_INTERVAL,
    ) -> None:
        self.stack = stack
        self.segment = segment
        self.lookup_ref = lookup_ref
        self.group = group
        self.interval = interval
        self.announcements_sent = 0
        self._socket = stack.udp_socket(DISCOVERY_PORT)
        self._socket.on_datagram(self._on_datagram)
        self._timer: Event | None = None
        self._running = False

    def start(self) -> None:
        """Begin periodic announcements (first goes out immediately)."""
        if self._running:
            return
        self._running = True
        self._announce()

    def stop(self) -> None:
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def close(self) -> None:
        self.stop()
        self._socket.close()

    # -- internals ------------------------------------------------------------

    def _payload(self) -> bytes:
        return marshal(
            {"type": "announce", "group": self.group, "ref": self.lookup_ref.to_wire()}
        )

    def _announce(self) -> None:
        if not self._running:
            return
        self._socket.broadcast(self.segment, DISCOVERY_PORT, self._payload())
        self.announcements_sent += 1
        self._timer = self.stack.sim.schedule(self.interval, self._announce)

    def _on_datagram(self, src: NodeAddress, src_port: int, data: bytes) -> None:
        try:
            message = unmarshal(data)
        except MarshallingError:
            return
        if not isinstance(message, dict) or message.get("type") != "request":
            return
        groups = message.get("groups") or [DEFAULT_GROUP]
        if self.group not in groups:
            return
        self._socket.sendto(src, src_port, self._payload())


class DiscoveryListener:
    """Run by clients and services: collects lookup-service references."""

    def __init__(
        self,
        stack: TransportStack,
        on_discovered: Callable[[RemoteRef, str], None] | None = None,
        groups: tuple[str, ...] = (DEFAULT_GROUP,),
    ) -> None:
        self.stack = stack
        self.groups = groups
        self.discovered: dict[RemoteRef, str] = {}
        self._callbacks: list[Callable[[RemoteRef, str], None]] = []
        if on_discovered is not None:
            self._callbacks.append(on_discovered)
        self._socket = stack.udp_socket(DISCOVERY_PORT)
        self._socket.on_datagram(self._on_datagram)

    def add_callback(self, callback: Callable[[RemoteRef, str], None]) -> None:
        self._callbacks.append(callback)
        for ref, group in self.discovered.items():
            callback(ref, group)

    def request(self, segment: Segment | str) -> None:
        """Broadcast a discovery request on ``segment``."""
        payload = marshal({"type": "request", "groups": list(self.groups)})
        self._socket.broadcast(segment, DISCOVERY_PORT, payload)

    def close(self) -> None:
        self._socket.close()

    # -- internals ------------------------------------------------------------

    def _on_datagram(self, src: NodeAddress, src_port: int, data: bytes) -> None:
        try:
            message = unmarshal(data)
        except MarshallingError:
            return
        if not isinstance(message, dict) or message.get("type") != "announce":
            return
        group = message.get("group", DEFAULT_GROUP)
        if group not in self.groups:
            return
        ref_wire: Any = message.get("ref")
        if not RemoteRef.is_wire_ref(ref_wire):
            return
        ref = RemoteRef.from_wire(ref_wire)
        is_new = ref not in self.discovered
        self.discovered[ref] = group
        if is_new:
            for callback in list(self._callbacks):
                callback(ref, group)
