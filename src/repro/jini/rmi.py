"""RMI-like remote method invocation.

Each node that exports remote objects runs one :class:`RmiRuntime` on a TCP
port.  Calls are length-prefixed marshalled records multiplexed over cached
connections (like JRMP connection reuse) — this is deliberately *cheaper*
per call than SOAP's one-connection-per-request HTTP, so the F2/C1
benchmarks can show the conversion overhead the framework pays.

Remote object references (:class:`RemoteRef`) are plain data and travel
inside lookup-service registrations and event registrations.
"""

from __future__ import annotations

import struct
from typing import Any, Callable

from repro.errors import JiniError, MarshallingError, TransportError
from repro.net.addressing import NodeAddress
from repro.net.simkernel import SimFuture
from repro.net.transport import Connection, TransportStack
from repro.jini.marshalling import marshal, unmarshal

DEFAULT_RMI_PORT = 1099

_LEN = struct.Struct("!I")

_REF_KEY = "__jini_remote_ref__"


class RemoteRef:
    """Reference to an exported remote object."""

    __slots__ = ("address", "port", "object_id", "interfaces")

    def __init__(
        self,
        address: NodeAddress,
        port: int,
        object_id: int,
        interfaces: tuple[str, ...] = (),
    ) -> None:
        self.address = address
        self.port = port
        self.object_id = object_id
        self.interfaces = tuple(interfaces)

    def to_wire(self) -> dict[str, Any]:
        return {
            _REF_KEY: True,
            "address": str(self.address),
            "port": self.port,
            "object_id": self.object_id,
            "interfaces": list(self.interfaces),
        }

    @staticmethod
    def from_wire(data: dict[str, Any]) -> "RemoteRef":
        if not isinstance(data, dict) or not data.get(_REF_KEY):
            raise JiniError(f"not a remote reference: {data!r}")
        return RemoteRef(
            address=NodeAddress.parse(data["address"]),
            port=int(data["port"]),
            object_id=int(data["object_id"]),
            interfaces=tuple(data.get("interfaces", ())),
        )

    @staticmethod
    def is_wire_ref(data: Any) -> bool:
        return isinstance(data, dict) and bool(data.get(_REF_KEY))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RemoteRef)
            and (self.address, self.port, self.object_id)
            == (other.address, other.port, other.object_id)
        )

    def __hash__(self) -> int:
        return hash((self.address, self.port, self.object_id))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RemoteRef {self.address}:{self.port}#{self.object_id}>"


class _StreamDecoder:
    """Splits a byte stream into length-prefixed records."""

    def __init__(self) -> None:
        self._buffer = b""

    def feed(self, data: bytes) -> list[bytes]:
        self._buffer += data
        records: list[bytes] = []
        while True:
            if len(self._buffer) < _LEN.size:
                return records
            (length,) = _LEN.unpack_from(self._buffer)
            if len(self._buffer) < _LEN.size + length:
                return records
            records.append(self._buffer[_LEN.size : _LEN.size + length])
            self._buffer = self._buffer[_LEN.size + length :]


def _frame(payload: bytes) -> bytes:
    return _LEN.pack(len(payload)) + payload


class RmiRuntime:
    """Per-node RMI engine: export table + call dispatch + client cache."""

    def __init__(
        self,
        stack: TransportStack,
        port: int = DEFAULT_RMI_PORT,
        advertise_address: NodeAddress | None = None,
    ) -> None:
        """``advertise_address`` is the address baked into exported
        RemoteRefs — on a multi-homed node (a gateway) it must be the
        island-facing interface, not whichever interface came first."""
        self.stack = stack
        self.sim = stack.sim
        self.port = port
        self.advertise_address = advertise_address or stack.local_address()
        self._objects: dict[int, Any] = {}
        self._next_object_id = 1
        self._next_call_id = 1
        self._listener = stack.listen(port, self._on_server_connection)
        self._client_conns: dict[tuple[NodeAddress, int], SimFuture] = {}
        self._pending: dict[int, SimFuture] = {}
        self.calls_dispatched = 0
        self.calls_sent = 0

    # -- export side ------------------------------------------------------------

    def export(self, obj: Any, interfaces: tuple[str, ...] = ()) -> RemoteRef:
        """Make ``obj``'s public methods remotely callable."""
        object_id = self._next_object_id
        self._next_object_id += 1
        self._objects[object_id] = obj
        return RemoteRef(
            address=self.advertise_address,
            port=self.port,
            object_id=object_id,
            interfaces=interfaces,
        )

    def unexport(self, ref: RemoteRef) -> None:
        self._objects.pop(ref.object_id, None)

    def exported_object(self, object_id: int) -> Any:
        return self._objects.get(object_id)

    def close(self) -> None:
        self._listener.close()

    # -- call side ------------------------------------------------------------

    def call(self, ref: RemoteRef, method: str, args: list[Any]) -> SimFuture:
        """Invoke ``method(*args)`` on the remote object; resolves to the
        return value or fails with :class:`JiniError` / transport errors."""
        call_id = self._next_call_id
        self._next_call_id += 1
        self.calls_sent += 1
        result: SimFuture = SimFuture()
        self._pending[call_id] = result
        record = marshal(
            {
                "kind": "call",
                "call_id": call_id,
                "object_id": ref.object_id,
                "method": method,
                "args": args,
            }
        )

        def on_connection(future: SimFuture) -> None:
            exc = future.exception()
            if exc is not None:
                self._pending.pop(call_id, None)
                result.set_exception(exc)
                return
            conn: Connection = future.result()
            try:
                conn.send(_frame(record))
            except TransportError as send_exc:
                self._pending.pop(call_id, None)
                result.set_exception(send_exc)

        self._connection_to(ref.address, ref.port).add_done_callback(on_connection)
        return result

    def one_way(self, ref: RemoteRef, method: str, args: list[Any]) -> None:
        """Fire-and-forget call (used for event delivery)."""
        future = self.call(ref, method, args)
        future.add_done_callback(lambda _f: _f.exception())  # swallow outcome

    # -- connection management ---------------------------------------------------

    def _connection_to(self, address: NodeAddress, port: int) -> SimFuture:
        key = (address, port)
        cached = self._client_conns.get(key)
        if cached is not None:
            if not cached.done():
                return cached
            if cached.exception() is None:
                conn: Connection = cached.result()
                if conn.state == Connection.ESTABLISHED:
                    return cached
            del self._client_conns[key]
        future = self.stack.connect(address, port)
        self._client_conns[key] = future

        def wire_up(connected: SimFuture) -> None:
            if connected.exception() is not None:
                self._client_conns.pop(key, None)
                return
            conn: Connection = connected.result()
            decoder = _StreamDecoder()
            conn.set_receiver(
                lambda _c, data: self._on_client_records(decoder.feed(data))
            )
            conn.on_close(lambda _c: self._client_conns.pop(key, None))

        future.add_done_callback(wire_up)
        return future

    def _on_client_records(self, records: list[bytes]) -> None:
        for record in records:
            try:
                message = unmarshal(record)
            except MarshallingError:
                continue
            call_id = message.get("call_id")
            future = self._pending.pop(call_id, None)
            if future is None:
                continue
            if message.get("kind") == "result":
                future.set_result(message.get("value"))
            else:
                future.set_exception(
                    JiniError(message.get("error", "remote invocation failed"))
                )

    # -- server side ------------------------------------------------------------

    def _on_server_connection(self, conn: Connection) -> None:
        decoder = _StreamDecoder()

        def on_data(connection: Connection, data: bytes) -> None:
            for record in decoder.feed(data):
                self._serve_record(connection, record)

        conn.set_receiver(on_data)

    def _serve_record(self, conn: Connection, record: bytes) -> None:
        try:
            message = unmarshal(record)
        except MarshallingError as exc:
            self._reply(conn, {"kind": "error", "call_id": -1, "error": str(exc)})
            return
        call_id = message.get("call_id", -1)
        obj = self._objects.get(message.get("object_id"))
        if obj is None:
            self._reply(
                conn,
                {
                    "kind": "error",
                    "call_id": call_id,
                    "error": f"no exported object {message.get('object_id')!r}",
                },
            )
            return
        method_name = message.get("method", "")
        method: Callable[..., Any] | None = getattr(obj, method_name, None)
        if method is None or method_name.startswith("_") or not callable(method):
            self._reply(
                conn,
                {
                    "kind": "error",
                    "call_id": call_id,
                    "error": f"object has no remote method {method_name!r}",
                },
            )
            return
        try:
            value = method(*message.get("args", []))
        except Exception as exc:
            self._reply(
                conn,
                {"kind": "error", "call_id": call_id, "error": f"{type(exc).__name__}: {exc}"},
            )
            return
        self.calls_dispatched += 1
        if isinstance(value, SimFuture):
            value.add_done_callback(
                lambda future: self._reply_future(conn, call_id, future)
            )
        else:
            self._reply(conn, {"kind": "result", "call_id": call_id, "value": value})

    def _reply_future(self, conn: Connection, call_id: int, future: SimFuture) -> None:
        exc = future.exception()
        if exc is not None:
            self._reply(conn, {"kind": "error", "call_id": call_id, "error": str(exc)})
        else:
            self._reply(conn, {"kind": "result", "call_id": call_id, "value": future.result()})

    def _reply(self, conn: Connection, message: dict[str, Any]) -> None:
        if conn.state != Connection.ESTABLISHED:
            return
        try:
            conn.send(_frame(marshal(message)))
        except (TransportError, MarshallingError):
            pass  # peer went away or unmarshalable result; nothing to tell it
