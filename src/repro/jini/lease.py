"""Jini leases.

Everything granted by a Jini lookup service — registrations, event
interests — is held under a lease that the holder must renew, so crashed
holders disappear automatically.  This module has both halves:

- :class:`Lease` / :class:`LeaseTable` — grantor-side bookkeeping with
  virtual-time expiry.
- :class:`LeaseRenewalManager` — holder-side automatic renewal, as in the
  real Jini utility class of the same name.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import LeaseDeniedError, LeaseExpiredError
from repro.net.simkernel import Event, Simulator

#: Grantors cap lease durations at this many virtual seconds.
MAX_LEASE_DURATION = 300.0
DEFAULT_LEASE_DURATION = 30.0


class Lease:
    """One granted lease."""

    __slots__ = ("lease_id", "expiration", "cookie")

    def __init__(self, lease_id: int, expiration: float, cookie: Any = None) -> None:
        self.lease_id = lease_id
        self.expiration = expiration
        #: Grantor-private payload (e.g. the registration this lease guards).
        self.cookie = cookie

    def remaining(self, now: float) -> float:
        return max(0.0, self.expiration - now)

    def expired(self, now: float) -> bool:
        return now >= self.expiration

    def to_wire(self) -> dict[str, Any]:
        return {"lease_id": self.lease_id, "expiration": self.expiration}

    @staticmethod
    def from_wire(data: dict[str, Any]) -> "Lease":
        return Lease(int(data["lease_id"]), float(data["expiration"]))


class LeaseTable:
    """Grantor-side lease bookkeeping with expiry callbacks."""

    def __init__(self, sim: Simulator, max_duration: float = MAX_LEASE_DURATION) -> None:
        self.sim = sim
        self.max_duration = max_duration
        self._leases: dict[int, Lease] = {}
        self._expiry_events: dict[int, Event] = {}
        self._on_expire: dict[int, Callable[[Lease], None]] = {}
        self._next_id = 1

    def grant(
        self,
        duration: float,
        cookie: Any = None,
        on_expire: Callable[[Lease], None] | None = None,
    ) -> Lease:
        """Grant a lease for min(duration, max_duration) virtual seconds."""
        if duration <= 0:
            raise LeaseDeniedError(f"non-positive lease duration {duration!r}")
        granted = min(duration, self.max_duration)
        lease = Lease(self._next_id, self.sim.now + granted, cookie)
        self._next_id += 1
        self._leases[lease.lease_id] = lease
        if on_expire is not None:
            self._on_expire[lease.lease_id] = on_expire
        self._schedule_expiry(lease)
        return lease

    def renew(self, lease_id: int, duration: float) -> Lease:
        """Extend a live lease; raises :class:`LeaseExpiredError` if it is
        gone (the real error a tardy holder sees)."""
        lease = self._leases.get(lease_id)
        if lease is None or lease.expired(self.sim.now):
            self._drop(lease_id, fire_callback=False)
            raise LeaseExpiredError(f"lease {lease_id} has expired")
        if duration <= 0:
            raise LeaseDeniedError(f"non-positive renewal duration {duration!r}")
        lease.expiration = self.sim.now + min(duration, self.max_duration)
        self._schedule_expiry(lease)
        return lease

    def cancel(self, lease_id: int) -> None:
        """Voluntary surrender; the expiry callback does fire (the guarded
        resource must be cleaned up either way)."""
        self._drop(lease_id, fire_callback=True)

    def is_live(self, lease_id: int) -> bool:
        lease = self._leases.get(lease_id)
        return lease is not None and not lease.expired(self.sim.now)

    def lease(self, lease_id: int) -> Lease:
        lease = self._leases.get(lease_id)
        if lease is None:
            raise LeaseExpiredError(f"lease {lease_id} unknown or expired")
        return lease

    @property
    def live_count(self) -> int:
        return len(self._leases)

    # -- internals ------------------------------------------------------------

    def _schedule_expiry(self, lease: Lease) -> None:
        existing = self._expiry_events.pop(lease.lease_id, None)
        if existing is not None:
            existing.cancel()
        self._expiry_events[lease.lease_id] = self.sim.at(
            lease.expiration, self._expire, lease.lease_id
        )

    def _expire(self, lease_id: int) -> None:
        lease = self._leases.get(lease_id)
        if lease is None or not lease.expired(self.sim.now):
            return  # renewed since this timer was set
        self._drop(lease_id, fire_callback=True)

    def _drop(self, lease_id: int, fire_callback: bool) -> None:
        lease = self._leases.pop(lease_id, None)
        event = self._expiry_events.pop(lease_id, None)
        if event is not None:
            event.cancel()
        callback = self._on_expire.pop(lease_id, None)
        if lease is not None and callback is not None and fire_callback:
            callback(lease)


class LeaseRenewalManager:
    """Holder-side automatic renewal.

    ``renew_fn(lease_id, duration)`` performs the (possibly remote) renewal
    and returns a new expiration time — synchronously or via a SimFuture.
    Renewal is scheduled at a safety fraction of the remaining time.
    """

    RENEW_FRACTION = 0.5

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._tracked: dict[int, tuple[Lease, float, Callable, Event]] = {}
        self.renewals_performed = 0
        self.failures = 0

    def manage(
        self,
        lease: Lease,
        duration: float,
        renew_fn: Callable[[int, float], Any],
        on_failure: Callable[[Lease, BaseException], None] | None = None,
    ) -> None:
        """Keep ``lease`` alive until :meth:`forget` is called."""
        event = self._schedule(lease, duration)
        self._tracked[lease.lease_id] = (lease, duration, (renew_fn, on_failure), event)

    def forget(self, lease: Lease) -> None:
        entry = self._tracked.pop(lease.lease_id, None)
        if entry is not None:
            entry[3].cancel()

    @property
    def managed_count(self) -> int:
        return len(self._tracked)

    # -- internals ------------------------------------------------------------

    def _schedule(self, lease: Lease, duration: float) -> Event:
        delay = max(0.0, lease.remaining(self.sim.now) * self.RENEW_FRACTION)
        return self.sim.schedule(delay, self._renew, lease.lease_id)

    def _renew(self, lease_id: int) -> None:
        entry = self._tracked.get(lease_id)
        if entry is None:
            return
        lease, duration, (renew_fn, on_failure), _event = entry

        def complete(new_expiration: float) -> None:
            if lease_id not in self._tracked:
                return
            lease.expiration = new_expiration
            self.renewals_performed += 1
            event = self._schedule(lease, duration)
            self._tracked[lease_id] = (lease, duration, (renew_fn, on_failure), event)

        def fail(exc: BaseException) -> None:
            self.failures += 1
            self._tracked.pop(lease_id, None)
            if on_failure is not None:
                on_failure(lease, exc)

        try:
            outcome = renew_fn(lease.lease_id, duration)
        except Exception as exc:
            fail(exc)
            return
        if hasattr(outcome, "add_done_callback"):
            def on_done(future: Any) -> None:
                exc = future.exception()
                if exc is not None:
                    fail(exc)
                else:
                    complete(float(future.result()))
            outcome.add_done_callback(on_done)
        else:
            complete(float(outcome))
