"""Application layer of the Jini substrate.

:class:`JiniHost` bundles the per-device plumbing (node, transport stack,
RMI runtime).  :class:`JiniService` publishes a plain Python object as a
leased, discoverable service.  :class:`JiniClient` discovers the lookup
service and produces dynamic proxies whose method calls travel over RMI —
the "service proxy" programming model Jini is known for.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import JiniError, ServiceNotFoundError
from repro.net.network import Network
from repro.net.segment import Segment
from repro.net.simkernel import SimFuture
from repro.net.transport import TransportStack
from repro.jini.discovery import DiscoveryListener
from repro.jini.events import RemoteEvent
from repro.jini.lease import DEFAULT_LEASE_DURATION, Lease, LeaseRenewalManager
from repro.jini.lookup import ServiceItem, ServiceTemplate
from repro.jini.rmi import DEFAULT_RMI_PORT, RemoteRef, RmiRuntime


class JiniHost:
    """One Jini-capable device: node + stack + RMI runtime on a segment."""

    def __init__(
        self,
        network: Network,
        name: str,
        segment: Segment | str,
        rmi_port: int = DEFAULT_RMI_PORT,
    ) -> None:
        if isinstance(segment, str):
            segment = network.segment(segment)
        self.network = network
        self.segment = segment
        self.node = network.create_node(name)
        network.attach(self.node, segment)
        self.stack = TransportStack(self.node, network)
        self.runtime = RmiRuntime(self.stack, rmi_port)
        self.sim = network.sim

    @classmethod
    def adopt(
        cls,
        network: Network,
        node,
        stack: TransportStack,
        segment: Segment | str,
        rmi_port: int = DEFAULT_RMI_PORT,
    ) -> "JiniHost":
        """Wrap an *existing* node (e.g. a gateway already attached to the
        Jini island segment) as a Jini host, reusing its transport stack."""
        if isinstance(segment, str):
            segment = network.segment(segment)
        host = cls.__new__(cls)
        host.network = network
        host.segment = segment
        host.node = node
        host.stack = stack
        host.runtime = RmiRuntime(
            stack, rmi_port, advertise_address=stack.local_address(segment)
        )
        host.sim = network.sim
        return host

    @property
    def name(self) -> str:
        return self.node.name


class ServiceProxy:
    """Dynamic client-side proxy: attribute access yields remote methods
    that return :class:`SimFuture` results."""

    def __init__(self, runtime: RmiRuntime, ref: RemoteRef) -> None:
        object.__setattr__(self, "_runtime", runtime)
        object.__setattr__(self, "_ref", ref)

    @property
    def remote_ref(self) -> RemoteRef:
        return self._ref

    def __getattr__(self, name: str) -> Callable[..., SimFuture]:
        if name.startswith("_"):
            raise AttributeError(name)

        def remote_method(*args: Any) -> SimFuture:
            return self._runtime.call(self._ref, name, list(args))

        remote_method.__name__ = name
        return remote_method

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ServiceProxy {self._ref!r}>"


class JiniService:
    """Publishes ``impl``'s public methods as a Jini service."""

    def __init__(
        self,
        host: JiniHost,
        impl: Any,
        interfaces: tuple[str, ...],
        attributes: dict[str, Any] | None = None,
    ) -> None:
        if not interfaces:
            raise JiniError("a Jini service must declare at least one interface")
        self.host = host
        self.impl = impl
        self.interfaces = tuple(interfaces)
        self.attributes = dict(attributes or {})
        self.ref = host.runtime.export(impl, interfaces=self.interfaces)
        self.renewals = LeaseRenewalManager(host.sim)
        self.registration_lease: Lease | None = None
        self.service_id = 0
        self._lookup_ref: RemoteRef | None = None

    def publish(
        self,
        lookup_ref: RemoteRef,
        duration: float = DEFAULT_LEASE_DURATION,
        auto_renew: bool = True,
    ) -> SimFuture:
        """Register with the lookup service; resolves to the service id."""
        self._lookup_ref = lookup_ref
        item = ServiceItem(
            interfaces=self.interfaces,
            attributes=self.attributes,
            proxy=self.ref.to_wire(),
            service_id=self.service_id,
        )
        result: SimFuture = SimFuture()

        def on_registered(future: SimFuture) -> None:
            exc = future.exception()
            if exc is not None:
                result.set_exception(exc)
                return
            response = future.result()
            self.service_id = int(response["service_id"])
            lease = Lease.from_wire(response["lease"])
            self.registration_lease = lease
            if auto_renew:
                self.renewals.manage(lease, duration, self._renew_remote)
            result.set_result(self.service_id)

        self.host.runtime.call(
            lookup_ref, "register", [item.to_wire(), duration]
        ).add_done_callback(on_registered)
        return result

    def update_attributes(self, changes: dict[str, Any]) -> SimFuture:
        """Modify the service's lookup attributes (Jini's ``setAttributes``).

        Re-registers under the same service id, so templates matching the
        new attributes see the service and match-transition listeners fire.
        Resolves to the (unchanged) service id.
        """
        if self._lookup_ref is None:
            return SimFuture.failed(JiniError("service was never published"))
        self.attributes.update(changes)
        if self.registration_lease is not None:
            self.renewals.forget(self.registration_lease)
        return self.publish(self._lookup_ref)

    def unpublish(self) -> None:
        """Cancel the registration lease and stop renewing."""
        if self.registration_lease is not None and self._lookup_ref is not None:
            self.renewals.forget(self.registration_lease)
            self.host.runtime.one_way(
                self._lookup_ref, "cancel_lease", [self.registration_lease.lease_id]
            )
            self.registration_lease = None

    def _renew_remote(self, lease_id: int, duration: float) -> SimFuture:
        if self._lookup_ref is None:
            raise JiniError("service was never published")
        return self.host.runtime.call(self._lookup_ref, "renew_lease", [lease_id, duration])


class _ListenerAdapter:
    """Exported remote-event listener wrapping a local callback."""

    def __init__(self, callback: Callable[[RemoteEvent], None]) -> None:
        self._callback = callback

    def notify(self, event_wire: dict[str, Any]) -> None:
        self._callback(RemoteEvent.from_wire(event_wire))


class JiniClient:
    """Discovers lookup services and calls Jini services through proxies."""

    def __init__(self, host: JiniHost) -> None:
        self.host = host
        self.listener = DiscoveryListener(host.stack)
        self._lookup_futures: list[SimFuture] = []
        self.listener.add_callback(self._on_lookup_discovered)

    # -- discovery ------------------------------------------------------------

    def discover_lookup(self, timeout: float = 10.0) -> SimFuture:
        """Resolve to the first discovered lookup-service reference."""
        future: SimFuture = SimFuture()
        if self.listener.discovered:
            ref = next(iter(self.listener.discovered))
            future.set_result(ref)
            return future
        self._lookup_futures.append(future)
        self.listener.request(self.host.segment)
        return future

    def _on_lookup_discovered(self, ref: RemoteRef, group: str) -> None:
        pending, self._lookup_futures = self._lookup_futures, []
        for future in pending:
            if not future.done():
                future.set_result(ref)

    # -- lookup / invocation -----------------------------------------------------

    def lookup(
        self,
        lookup_ref: RemoteRef,
        interface: str | None = None,
        attributes: dict[str, Any] | None = None,
        max_matches: int = 16,
    ) -> SimFuture:
        """Resolve to a list of matching :class:`ServiceItem`."""
        template = ServiceTemplate(interface=interface, attributes=attributes)
        result: SimFuture = SimFuture()

        def on_matches(future: SimFuture) -> None:
            exc = future.exception()
            if exc is not None:
                result.set_exception(exc)
                return
            items = [ServiceItem.from_wire(wire) for wire in future.result()]
            result.set_result(items)

        self.host.runtime.call(
            lookup_ref, "lookup", [template.to_wire(), max_matches]
        ).add_done_callback(on_matches)
        return result

    def lookup_one(
        self,
        lookup_ref: RemoteRef,
        interface: str,
        attributes: dict[str, Any] | None = None,
    ) -> SimFuture:
        """Resolve to a :class:`ServiceProxy` for the first match, or fail
        with :class:`ServiceNotFoundError`."""
        result: SimFuture = SimFuture()

        def on_items(future: SimFuture) -> None:
            exc = future.exception()
            if exc is not None:
                result.set_exception(exc)
                return
            items: list[ServiceItem] = future.result()
            if not items:
                result.set_exception(
                    ServiceNotFoundError(f"no Jini service implements {interface!r}")
                )
                return
            result.set_result(self.proxy(items[0]))

        self.lookup(lookup_ref, interface, attributes).add_done_callback(on_items)
        return result

    def proxy(self, item: ServiceItem) -> ServiceProxy:
        return ServiceProxy(self.host.runtime, item.proxy_ref())

    # -- events ------------------------------------------------------------

    def register_listener(
        self,
        lookup_ref: RemoteRef,
        callback: Callable[[RemoteEvent], None],
        interface: str | None = None,
        attributes: dict[str, Any] | None = None,
        duration: float = DEFAULT_LEASE_DURATION,
    ) -> SimFuture:
        """Subscribe to lookup match transitions; resolves to the event
        registration wire record."""
        adapter = _ListenerAdapter(callback)
        listener_ref = self.host.runtime.export(adapter)
        template = ServiceTemplate(interface=interface, attributes=attributes)
        return self.host.runtime.call(
            lookup_ref,
            "notify",
            [template.to_wire(), listener_ref.to_wire(), duration],
        )
