"""Java-serialization-flavoured binary marshalling.

Jini moves serialized Java objects; our codec is a compact tagged binary
format opening with the real Java serialization magic (``0xAC 0xED``) and
stream version, so monitor traces of the Jini island look plausibly
JRMP-ish.  It is intentionally *binary and compact* — the C1 benchmark
contrasts its sizes against SOAP's XML for identical logical calls.

Supported values: None, bool, int (64-bit signed), float, str, bytes,
list/tuple (decoded as list), and dict with string keys.
"""

from __future__ import annotations

import struct
from typing import Any

from repro.errors import MarshallingError

MAGIC = b"\xac\xed"
VERSION = b"\x00\x05"

_T_NULL = 0x70  # Java TC_NULL
_T_BOOL = 0x01
_T_INT = 0x02
_T_FLOAT = 0x03
_T_STRING = 0x74  # Java TC_STRING
_T_BYTES = 0x05
_T_LIST = 0x06
_T_DICT = 0x07

_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")
_U32 = struct.Struct("!I")

_INT_MIN = -(2**63)
_INT_MAX = 2**63 - 1


def marshal(value: Any) -> bytes:
    """Serialise ``value`` to bytes (with stream header)."""
    out = bytearray(MAGIC + VERSION)
    _write(out, value)
    return bytes(out)


def unmarshal(data: bytes) -> Any:
    """Inverse of :func:`marshal`."""
    if len(data) < 4 or data[:2] != MAGIC or data[2:4] != VERSION:
        raise MarshallingError("bad serialization stream header")
    value, offset = _read(data, 4)
    if offset != len(data):
        raise MarshallingError(f"{len(data) - offset} trailing bytes after value")
    return value


def _write(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(_T_NULL)
    elif isinstance(value, bool):
        out.append(_T_BOOL)
        out.append(1 if value else 0)
    elif isinstance(value, int):
        if not _INT_MIN <= value <= _INT_MAX:
            raise MarshallingError(f"integer {value} out of 64-bit range")
        out.append(_T_INT)
        out += _I64.pack(value)
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out += _F64.pack(value)
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        out.append(_T_STRING)
        out += _U32.pack(len(encoded))
        out += encoded
    elif isinstance(value, (bytes, bytearray)):
        out.append(_T_BYTES)
        out += _U32.pack(len(value))
        out += bytes(value)
    elif isinstance(value, (list, tuple)):
        out.append(_T_LIST)
        out += _U32.pack(len(value))
        for item in value:
            _write(out, item)
    elif isinstance(value, dict):
        out.append(_T_DICT)
        out += _U32.pack(len(value))
        for key, member in value.items():
            if not isinstance(key, str):
                raise MarshallingError(f"dict keys must be str, got {type(key).__name__}")
            encoded = key.encode("utf-8")
            out += _U32.pack(len(encoded))
            out += encoded
            _write(out, member)
    else:
        raise MarshallingError(f"cannot marshal value of type {type(value).__name__}")


def _read(data: bytes, offset: int) -> tuple[Any, int]:
    if offset >= len(data):
        raise MarshallingError("truncated stream: no tag byte")
    tag = data[offset]
    offset += 1
    if tag == _T_NULL:
        return None, offset
    if tag == _T_BOOL:
        _need(data, offset, 1)
        return data[offset] != 0, offset + 1
    if tag == _T_INT:
        _need(data, offset, 8)
        return _I64.unpack_from(data, offset)[0], offset + 8
    if tag == _T_FLOAT:
        _need(data, offset, 8)
        return _F64.unpack_from(data, offset)[0], offset + 8
    if tag == _T_STRING:
        raw, offset = _read_blob(data, offset)
        try:
            return raw.decode("utf-8"), offset
        except UnicodeDecodeError as exc:
            raise MarshallingError("invalid UTF-8 in string") from exc
    if tag == _T_BYTES:
        raw, offset = _read_blob(data, offset)
        return raw, offset
    if tag == _T_LIST:
        _need(data, offset, 4)
        count = _U32.unpack_from(data, offset)[0]
        offset += 4
        items = []
        for _ in range(count):
            item, offset = _read(data, offset)
            items.append(item)
        return items, offset
    if tag == _T_DICT:
        _need(data, offset, 4)
        count = _U32.unpack_from(data, offset)[0]
        offset += 4
        result: dict[str, Any] = {}
        for _ in range(count):
            raw_key, offset = _read_blob(data, offset)
            try:
                key = raw_key.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise MarshallingError("invalid UTF-8 in dict key") from exc
            value, offset = _read(data, offset)
            result[key] = value
        return result, offset
    raise MarshallingError(f"unknown tag byte 0x{tag:02x}")


def _read_blob(data: bytes, offset: int) -> tuple[bytes, int]:
    _need(data, offset, 4)
    length = _U32.unpack_from(data, offset)[0]
    offset += 4
    _need(data, offset, length)
    return data[offset : offset + length], offset + length


def _need(data: bytes, offset: int, count: int) -> None:
    if offset + count > len(data):
        raise MarshallingError("truncated stream")
