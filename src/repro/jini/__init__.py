"""Simulated Jini substrate.

Jini (paper Section 2.1) federates Java devices: services register with a
*lookup service* discovered by multicast, registrations are held by *leases*
that must be renewed, clients look services up by interface and receive a
*proxy* they invoke over RMI, and listeners get *remote events*.  This
package reproduces that architecture over the simulated network:

- :mod:`repro.jini.marshalling` — Java-serialization-flavoured binary codec
  (magic ``0xACED``...), used by every Jini wire exchange.
- :mod:`repro.jini.discovery` — multicast announcement/request protocols on
  the Jini island segment (UDP port 4160, as in real Jini).
- :mod:`repro.jini.rmi` — RMI-like remote method invocation with connection
  reuse and exported-object tables.
- :mod:`repro.jini.lease` — leases, the grantor side and the client-side
  renewal manager.
- :mod:`repro.jini.lookup` — the lookup service (register / lookup / notify).
- :mod:`repro.jini.events` — remote events and registrations.
- :mod:`repro.jini.service` — the application layer: publish a Python object
  as a Jini service, discover and call services through dynamic proxies.
"""

from repro.jini.discovery import DiscoveryAnnouncer, DiscoveryListener
from repro.jini.events import EventRegistration, RemoteEvent
from repro.jini.lease import Lease, LeaseRenewalManager
from repro.jini.lookup import (
    LookupService,
    ServiceItem,
    ServiceRegistration,
    ServiceTemplate,
)
from repro.jini.marshalling import marshal, unmarshal
from repro.jini.rmi import RemoteRef, RmiRuntime
from repro.jini.service import JiniClient, JiniHost, JiniService

__all__ = [
    "DiscoveryAnnouncer",
    "DiscoveryListener",
    "EventRegistration",
    "JiniClient",
    "JiniHost",
    "JiniService",
    "Lease",
    "LeaseRenewalManager",
    "LookupService",
    "RemoteEvent",
    "RemoteRef",
    "RmiRuntime",
    "ServiceItem",
    "ServiceRegistration",
    "ServiceTemplate",
    "marshal",
    "unmarshal",
]
