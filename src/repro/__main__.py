"""``python -m repro`` — a one-command tour of the reproduction.

Builds the paper's smart home, connects the framework, makes one call
through every middleware, and prints where to go next.
"""

from __future__ import annotations

from repro.apps import build_smart_home


def main() -> None:
    print(__doc__.splitlines()[0])
    print("\nbuilding the ICDCSW'02 smart home (Jini + HAVi + X10 + mail)...")
    home = build_smart_home()
    catalog = home.connect()
    print(f"connected: {len(catalog)} services in the Virtual Service Repository\n")

    checks = [
        ("jini", "Refrigerator", "get_temperature", []),
        ("havi", "Laserdisc", "play", []),
        ("x10", "Digital_TV_tuner", "set_channel", [7]),
        ("mail", "X10_A1_hall_lamp", "turn_on", []),
    ]
    for island, service, operation, args in checks:
        value = home.invoke_from(island, service, operation, args)
        print(f"  [{island:>4} island] {service}.{operation}({', '.join(map(str, args))}) -> {value!r}")

    print(f"\nvirtual time elapsed: {home.sim.now:.2f}s "
          "(the X10 call paid real powerline latency)")
    print("\nnext steps:")
    print("  python examples/quickstart.py        the full tour")
    print("  python examples/universal_remote.py  Figure 5, live")
    print("  pytest benchmarks/ --benchmark-only -s   regenerate every figure")


if __name__ == "__main__":
    main()
