"""Topology container: segments, nodes, address assignment and resolution."""

from __future__ import annotations

from typing import Iterable, Type

from repro.errors import AddressError, NetworkError
from repro.net.addressing import HwAddress, NodeAddress
from repro.net.node import Interface, Node
from repro.net.segment import Segment
from repro.net.simkernel import Simulator


class Network:
    """Owns every segment and node of one simulated home.

    Address assignment: each interface gets the next host number on its
    segment, so ``NodeAddress("jini-eth", 2)`` is the second interface
    attached to the ``jini-eth`` segment.  Hardware addresses are globally
    unique (a flat counter), mirroring burned-in MAC addresses.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.segments: dict[str, Segment] = {}
        self.nodes: dict[str, Node] = {}
        self._hw_counter = 0
        self._host_counters: dict[str, int] = {}
        self._by_address: dict[NodeAddress, Interface] = {}
        self._by_hw: dict[HwAddress, Interface] = {}

    # -- construction --------------------------------------------------------

    def add_segment(self, segment: Segment) -> Segment:
        if segment.name in self.segments:
            raise NetworkError(f"segment {segment.name!r} already exists")
        self.segments[segment.name] = segment
        self._host_counters[segment.name] = 0
        return segment

    def create_segment(self, cls: Type[Segment], name: str, **kwargs) -> Segment:
        return self.add_segment(cls(self.sim, name, **kwargs))

    def create_node(self, name: str) -> Node:
        if name in self.nodes:
            raise NetworkError(f"node {name!r} already exists")
        node = Node(self.sim, name)
        self.nodes[name] = node
        return node

    def attach(self, node: Node, segment: Segment | str) -> Interface:
        """Attach ``node`` to ``segment``, assigning fresh addresses."""
        if isinstance(segment, str):
            segment = self.segment(segment)
        self._hw_counter += 1
        self._host_counters[segment.name] += 1
        address = NodeAddress(segment.name, self._host_counters[segment.name])
        interface = Interface(node, segment, HwAddress(self._hw_counter), address)
        segment.attach(interface)
        node.add_interface(interface)
        self._by_address[address] = interface
        self._by_hw[interface.hw_address] = interface
        return interface

    # -- lookup ---------------------------------------------------------------

    def segment(self, name: str) -> Segment:
        try:
            return self.segments[name]
        except KeyError:
            raise NetworkError(f"no segment named {name!r}") from None

    def node(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise NetworkError(f"no node named {name!r}") from None

    def resolve(self, address: NodeAddress) -> Interface:
        """Network-layer address resolution (the ARP table of the home)."""
        try:
            return self._by_address[address]
        except KeyError:
            raise AddressError(f"unreachable address {address}") from None

    def resolve_hw(self, hw_address: HwAddress) -> Interface:
        """Reverse lookup: which interface owns a hardware address."""
        try:
            return self._by_hw[hw_address]
        except KeyError:
            raise AddressError(f"unknown hardware address {hw_address}") from None

    def addresses_of(self, node: Node) -> Iterable[NodeAddress]:
        return [interface.node_address for interface in node.interfaces]
