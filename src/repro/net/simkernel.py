"""Deterministic discrete-event simulation kernel.

The whole reproduction is single-threaded: protocol stacks, middleware and
applications are callbacks scheduled on one :class:`Simulator`.  Virtual time
is a float in seconds.  Events scheduled for the same instant fire in
scheduling order (FIFO), which makes every run bit-for-bit reproducible.

Two waiting styles are supported:

- callback style, used inside protocol stacks (``schedule`` / ``at``);
- future style, used by application-level code: an operation returns a
  :class:`SimFuture` and the caller blocks the *simulation* (not the Python
  thread) with :meth:`Simulator.run_until_complete`.

A third, cheaper primitive backs the reactor transport
(:mod:`repro.net.reactor`): :meth:`Simulator.post` enqueues a *microtask*
— a callback that runs at the current instant, after the event callback
that posted it returns and before the next heap event fires.  Microtasks
never touch the heap (no ``heapq`` push/pop, no :class:`Event`
allocation), drain in FIFO order, and cannot advance virtual time, which
makes them the right tool for same-instant follow-up work such as
deferred connection teardown from inside a readiness cycle.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Iterable

from repro.errors import SimulationError, TimeoutError


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule` so the
    caller can cancel it (e.g. a retransmission timer)."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing.  Safe to call more than once and
        after the event has already fired (then it is a no-op)."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} {self.callback!r} {state}>"


class SimFuture:
    """Single-assignment result container resolved inside the simulation.

    Mirrors the small useful subset of ``concurrent.futures.Future``:
    ``done`` / ``result`` / ``set_result`` / ``set_exception`` plus
    ``add_done_callback`` (called synchronously at resolution time).
    """

    __slots__ = ("_done", "_result", "_exception", "_callbacks")

    def __init__(self) -> None:
        self._done = False
        self._result: Any = None
        self._exception: BaseException | None = None
        self._callbacks: list[Callable[["SimFuture"], None]] = []

    def done(self) -> bool:
        return self._done

    def result(self) -> Any:
        if not self._done:
            raise SimulationError("SimFuture result read before resolution")
        if self._exception is not None:
            raise self._exception
        return self._result

    def exception(self) -> BaseException | None:
        if not self._done:
            raise SimulationError("SimFuture exception read before resolution")
        return self._exception

    def set_result(self, value: Any) -> None:
        self._resolve(value, None)

    def set_exception(self, exc: BaseException) -> None:
        self._resolve(None, exc)

    def add_done_callback(self, fn: Callable[["SimFuture"], None]) -> None:
        if self._done:
            fn(self)
        else:
            self._callbacks.append(fn)

    def _resolve(self, value: Any, exc: BaseException | None) -> None:
        if self._done:
            raise SimulationError("SimFuture resolved twice")
        self._done = True
        self._result = value
        self._exception = exc
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    @staticmethod
    def completed(value: Any) -> "SimFuture":
        """A future that is already resolved with ``value``."""
        future = SimFuture()
        future.set_result(value)
        return future

    @staticmethod
    def failed(exc: BaseException) -> "SimFuture":
        """A future that is already resolved with an exception."""
        future = SimFuture()
        future.set_exception(exc)
        return future


class Simulator:
    """Event loop with a virtual clock.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired, sim.now
    (['b', 'a'], 1.5)
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[Event] = []
        self._seq = 0
        self._running = False
        self._microtasks: deque[tuple[Callable[..., Any], tuple]] = deque()

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for event in self._heap if not event.cancelled)

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Run ``callback(*args)`` after ``delay`` virtual seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.at(self._now + delay, callback, *args)

    def at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Run ``callback(*args)`` at absolute virtual ``time``."""
        if time < self._now:
            raise SimulationError(f"cannot schedule in the past: {time} < {self._now}")
        self._seq += 1
        event = Event(time, self._seq, callback, args)
        heapq.heappush(self._heap, event)
        return event

    def call_soon(self, callback: Callable[..., Any], *args: Any) -> Event:
        """Run ``callback(*args)`` at the current instant, after events
        already queued for this instant."""
        return self.at(self._now, callback, *args)

    def post(self, callback: Callable[..., Any], *args: Any) -> None:
        """Enqueue a microtask: runs at the current instant, after the
        currently firing event callback returns and before the next heap
        event.  FIFO, non-cancellable, and heap-free — see the module
        docstring."""
        self._microtasks.append((callback, args))

    # -- execution ----------------------------------------------------------

    def _drain_microtasks(self) -> None:
        while self._microtasks:
            callback, args = self._microtasks.popleft()
            callback(*args)

    def step(self) -> bool:
        """Fire the next pending event (draining any posted microtasks
        first).  Returns False when nothing is pending (virtual time does
        not advance in that case)."""
        if self._microtasks:
            self._drain_microtasks()
            return True
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback(*event.args)
            self._drain_microtasks()
            return True
        return False

    def run(self, until: float | None = None) -> None:
        """Fire events until the queue drains, or until virtual time would
        pass ``until`` (the clock then advances exactly to ``until``)."""
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        try:
            self._drain_microtasks()
            while self._heap:
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                self._now = event.time
                event.callback(*event.args)
                self._drain_microtasks()
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def run_for(self, duration: float) -> None:
        """Advance the simulation ``duration`` virtual seconds."""
        self.run(until=self._now + duration)

    def run_until_complete(self, future: SimFuture, timeout: float | None = None) -> Any:
        """Drive the simulation until ``future`` resolves, then return its
        result (or raise its exception).

        ``timeout`` is a virtual-time bound; exceeding it raises
        :class:`repro.errors.TimeoutError`.
        """
        deadline = None if timeout is None else self._now + timeout
        while not future.done():
            if self._microtasks:
                self._drain_microtasks()
                continue
            if self._heap:
                next_time = self._heap[0].time
                if deadline is not None and next_time > deadline:
                    self._now = deadline
                    raise TimeoutError(
                        f"future unresolved after {timeout} virtual seconds"
                    )
                if not self.step():
                    break
            else:
                break
        if not future.done():
            raise SimulationError(
                "event queue drained but future never resolved (deadlock?)"
            )
        return future.result()

    def gather(self, futures: Iterable[SimFuture], timeout: float | None = None) -> list[Any]:
        """Run until every future resolves; return their results in order."""
        futures = list(futures)
        results: list[Any] = []
        for future in futures:
            results.append(self.run_until_complete(future, timeout=timeout))
        return results
