"""Per-node readiness engine: the reactor core of the transport rewrite.

Pre-reactor, the transport was connection-object-per-exchange: every
``Connection.send`` pushed its MTU segments onto the wire immediately and
every held exchange was a parked :class:`~repro.net.simkernel.SimFuture`
nobody tracked.  The reactor replaces that substrate with a single
per-node engine built on two primitives:

**Readiness cycles (write interest).**  Connections that opted into the
vectored fast path do not transmit from ``send``; they register *write
interest* by queueing their frames here.  The reactor schedules one flush
per virtual instant (``sim.call_soon``), and the flush — one *readiness
cycle* — walks every connection with pending frames and performs a
**vectored write**: all frames queued by one connection in the cycle
coalesce into a single segment transmission (a ``tcpv`` frame of
length-prefixed sub-frames, like ``writev`` feeding a NIC with
segmentation offload).  A cycle that finds a single pending frame emits
it byte-identically to the immediate path, so coalescing never changes
the wire unless it actually merges something.  Legacy connections never
register interest and keep the exact pre-reactor transmit path.

**Continuations (parked exchanges).**  Anything that used to park a bare
SimFuture across virtual time — a held push-channel exchange, an async
server response slot — now parks a :class:`Continuation` keyed by its
owner (a connection, a listener, a server).  Cancelling a key fails every
parked continuation under it through its ``on_cancel`` hook, so closing a
listener or tearing down a node cannot leak parked state; the testkit's
pool-leak and span-hygiene oracles rely on exactly this.

Everything is deterministic: cycles fire in scheduling order, connections
flush in registration order, and the counters exposed by :meth:`Reactor.
stats` are byte-identical across identical runs (surfaced next to the
:class:`~repro.net.monitor.TrafficMonitor` counters in the obs snapshot).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.transport import Connection, TransportStack

#: Ceiling on one vectored transmission's payload (sum of sub-frames,
#: excluding the per-sub-frame length prefixes).  Mirrors a 64 KiB TSO
#: window: the reactor splits longer bursts into several vectored frames.
VECTOR_MAX_PAYLOAD = 65535


class Continuation:
    """One parked exchange registered with a reactor.

    ``finish()`` retires it normally; ``cancel()`` retires it through the
    ``on_cancel`` hook (exactly once, whichever comes first).
    """

    __slots__ = ("key", "_on_cancel", "done", "cancelled")

    def __init__(self, key: Any, on_cancel: Callable[[], None] | None) -> None:
        self.key = key
        self._on_cancel = on_cancel
        self.done = False
        self.cancelled = False

    def finish(self) -> None:
        """Normal retirement: the parked exchange completed."""
        self.done = True
        self._on_cancel = None

    def cancel(self) -> None:
        """Forced retirement: run the ``on_cancel`` hook if still parked."""
        if self.done:
            return
        self.done = True
        self.cancelled = True
        hook, self._on_cancel = self._on_cancel, None
        if hook is not None:
            hook()


class Reactor:
    """Single event-loop readiness engine for one node's transport stack."""

    def __init__(self, stack: "TransportStack") -> None:
        self.stack = stack
        self.sim = stack.sim
        #: Connections with pending frames, in registration order.
        self._writable: list[Connection] = []
        self._cycle_scheduled = False
        #: key -> parked continuations under it (insertion order).
        self._continuations: dict[Any, list[Continuation]] = {}
        # -- deterministic counters (see stats()) --
        self.cycles = 0
        self.flushes = 0
        self.vector_frames = 0
        self.frames_coalesced = 0
        self.continuations_parked = 0
        self.continuations_cancelled = 0

    # -- write interest ------------------------------------------------------

    def register_writable(self, conn: "Connection") -> None:
        """Note that ``conn`` has frames queued; schedules a readiness
        cycle for the current instant if one is not already pending."""
        if not conn._tx_pending:
            self._writable.append(conn)
        if not self._cycle_scheduled:
            self._cycle_scheduled = True
            self.sim.call_soon(self._run_cycle)

    def _run_cycle(self) -> None:
        """One readiness cycle: flush every writable connection."""
        self._cycle_scheduled = False
        writable, self._writable = self._writable, []
        if not writable:
            return
        self.cycles += 1
        for conn in writable:
            frames = conn._take_tx()
            if not frames:
                continue
            self.flushes += 1
            try:
                if len(frames) == 1:
                    # Nothing to coalesce: byte-identical to the
                    # immediate (pre-reactor) transmit path.
                    self.stack.send_network(conn.remote, frames[0][0], frames[0][1])
                else:
                    for batch in self._split(frames):
                        if len(batch) == 1:
                            self.stack.send_network(
                                conn.remote, batch[0][0], batch[0][1]
                            )
                        else:
                            self.frames_coalesced += len(batch)
                            self.vector_frames += 1
                            self.stack.send_vectored(conn.remote, batch)
            except Exception:
                # The path died under the queued frames (interface down,
                # unroutable peer).  Tear the connection down off-cycle so
                # the flush loop state stays consistent; the connection's
                # on_close handlers fail anything pending above it.
                self.sim.post(conn.abort)

    @staticmethod
    def _split(
        frames: list[tuple[str, bytes]]
    ) -> list[list[tuple[str, bytes]]]:
        """Split a burst into vectored batches of ≤ VECTOR_MAX_PAYLOAD."""
        batches: list[list[tuple[str, bytes]]] = []
        current: list[tuple[str, bytes]] = []
        size = 0
        for frame in frames:
            length = len(frame[1])
            if current and size + length > VECTOR_MAX_PAYLOAD:
                batches.append(current)
                current, size = [], 0
            current.append(frame)
            size += length
        if current:
            batches.append(current)
        return batches

    # -- continuations -------------------------------------------------------

    def park(self, key: Any, on_cancel: Callable[[], None] | None = None) -> Continuation:
        """Park a continuation under ``key`` (a connection, listener or
        server object).  ``on_cancel`` runs if the key is cancelled before
        the continuation finishes."""
        continuation = Continuation(key, on_cancel)
        self._continuations.setdefault(key, []).append(continuation)
        self.continuations_parked += 1
        return continuation

    def cancel_key(self, key: Any) -> int:
        """Cancel every continuation parked under ``key``; returns how
        many were still live."""
        parked = self._continuations.pop(key, None)
        if not parked:
            return 0
        cancelled = 0
        for continuation in parked:
            if not continuation.done:
                continuation.cancel()
                cancelled += 1
        self.continuations_cancelled += cancelled
        return cancelled

    def cancel_all(self) -> int:
        """Cancel everything parked (node teardown); returns the count."""
        total = 0
        for key in list(self._continuations):
            total += self.cancel_key(key)
        return total

    @property
    def parked(self) -> int:
        """Live (not yet finished or cancelled) continuations — the
        no-leaked-continuations oracle asserts this is 0 after shutdown."""
        self._compact()
        return sum(len(parked) for parked in self._continuations.values())

    def _compact(self) -> None:
        """Drop retired continuations so parked counts stay exact."""
        for key in list(self._continuations):
            live = [c for c in self._continuations[key] if not c.done]
            if live:
                self._continuations[key] = live
            else:
                del self._continuations[key]

    # -- observability -------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Deterministic per-reactor gauges (documented in
        docs/OBSERVABILITY.md)."""
        return {
            "cycles": self.cycles,
            "flushes": self.flushes,
            "vector_frames": self.vector_frames,
            "frames_coalesced": self.frames_coalesced,
            "continuations_parked": self.continuations_parked,
            "continuations_cancelled": self.continuations_cancelled,
            "parked": self.parked,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Reactor {self.stack.node.name} cycles={self.cycles} "
            f"parked={self.parked}>"
        )
