"""Broadcast medium models.

Each segment serialises transmissions (one frame on the wire at a time),
charges transmission time = bits / bandwidth, adds propagation delay, and
delivers to every other attached interface — the receiving interface filters
on destination address.  Subclasses fix the parameters to the media the paper
names: 10 Mb/s Ethernet, 400 Mb/s IEEE1394, the X10 powerline (which signals
at one bit per AC zero-crossing, i.e. ~120 b/s raw, ~0.9 s for a complete
doubled command), and the RS-232 serial link between a PC and a CM11A
controller.

An optional loss model (a callable returning True to drop a frame) supports
the failure-injection tests; it must be driven by an explicitly seeded RNG so
runs stay deterministic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import NetworkError
from repro.net.frames import Frame

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.net.monitor import TrafficMonitor
    from repro.net.node import Interface
    from repro.net.simkernel import Simulator


class Segment:
    """A shared broadcast medium with finite bandwidth.

    Parameters
    ----------
    sim:
        The simulation kernel the segment schedules deliveries on.
    name:
        Unique segment name; also the prefix of node addresses on it.
    bandwidth_bps:
        Signalling rate in bits per second.
    propagation_delay:
        One-way propagation delay in virtual seconds.
    header_overhead:
        Per-frame framing bytes added to the payload when computing
        transmission time and traffic accounting.
    """

    kind = "generic"

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        bandwidth_bps: float,
        propagation_delay: float = 5e-6,
        header_overhead: int = 18,
    ) -> None:
        if bandwidth_bps <= 0:
            raise NetworkError(f"bandwidth must be positive, got {bandwidth_bps}")
        self.sim = sim
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.propagation_delay = propagation_delay
        self.header_overhead = header_overhead
        self.interfaces: list["Interface"] = []
        self.monitors: list["TrafficMonitor"] = []
        self.loss_model: Callable[[Frame], bool] | None = None
        #: Per-receiver reachability hook ``(sender, receiver) -> deliverable``.
        #: Unlike ``loss_model`` (whole-frame, counted as a drop) this models
        #: partitions: a broadcast still reaches same-side interfaces.
        self.delivery_filter: Callable[["Interface", "Interface"], bool] | None = None
        self._busy_until = 0.0
        self.frames_sent = 0
        self.bytes_sent = 0
        self.frames_blocked = 0
        #: Per-receiver accounting for conservation checks: every receiver a
        #: non-dropped frame *could* reach is an opportunity, and each one is
        #: either delivered or blocked (by the delivery filter), so
        #: ``frames_delivered + frames_blocked == delivery_opportunities``
        #: holds at every instant — the testkit's traffic-conservation oracle.
        self.frames_delivered = 0
        self.delivery_opportunities = 0

    # -- topology -----------------------------------------------------------

    def attach(self, interface: "Interface") -> None:
        if interface in self.interfaces:
            raise NetworkError(f"{interface} already attached to {self.name}")
        self.interfaces.append(interface)

    def detach(self, interface: "Interface") -> None:
        try:
            self.interfaces.remove(interface)
        except ValueError:
            raise NetworkError(f"{interface} not attached to {self.name}") from None

    # -- transmission -------------------------------------------------------

    def transmission_time(self, frame: Frame) -> float:
        """Virtual seconds the frame occupies the medium."""
        bits = frame.size_on_wire(self.header_overhead) * 8
        return bits / self.bandwidth_bps

    def transmit(self, sender: "Interface", frame: Frame) -> float:
        """Queue ``frame`` for transmission from ``sender``.

        Returns the virtual time at which the last bit leaves the wire.
        Transmissions are serialised: a busy medium delays the next frame
        (a simple non-colliding MAC; the powerline subclass adds loss).
        """
        start = max(self.sim.now, self._busy_until)
        tx_time = self.transmission_time(frame)
        end = start + tx_time
        self._busy_until = end
        self.frames_sent += 1
        size = frame.size_on_wire(self.header_overhead)
        self.bytes_sent += size

        dropped = bool(self.loss_model and self.loss_model(frame))
        for monitor in self.monitors:
            monitor.record(self, frame, size, dropped)
        if not dropped:
            arrival = end + self.propagation_delay
            for interface in list(self.interfaces):
                if interface is sender:
                    continue
                self.delivery_opportunities += 1
                if self.delivery_filter is not None and not self.delivery_filter(
                    sender, interface
                ):
                    self.frames_blocked += 1
                    continue
                self.frames_delivered += 1
                self.sim.at(arrival, interface.deliver, frame)
        return end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} {self.bandwidth_bps:g}bps>"


class EthernetSegment(Segment):
    """10 Mb/s Ethernet — the paper's Jini island and Internet backbone."""

    kind = "ethernet"
    mtu = 1500

    def __init__(self, sim: "Simulator", name: str, bandwidth_bps: float = 10e6):
        super().__init__(
            sim,
            name,
            bandwidth_bps=bandwidth_bps,
            propagation_delay=5e-6,
            header_overhead=18,
        )


class IEEE1394Segment(Segment):
    """400 Mb/s IEEE1394 (FireWire) — the HAVi island.

    Only the asynchronous packet service is modelled here; isochronous
    channel bookkeeping lives in :mod:`repro.havi.bus1394`, which wraps this
    segment.
    """

    kind = "ieee1394"
    mtu = 2048

    def __init__(self, sim: "Simulator", name: str, bandwidth_bps: float = 400e6):
        super().__init__(
            sim,
            name,
            bandwidth_bps=bandwidth_bps,
            propagation_delay=1e-6,
            header_overhead=24,
        )


class PowerlineSegment(Segment):
    """The X10 powerline.

    X10 signals one bit per AC zero-crossing (120/s at 60 Hz); a standard
    command is an 11-cycle frame sent twice, so a complete address+function
    sequence takes roughly 0.8–0.9 s.  We model this with a very low
    bandwidth and per-frame overhead chosen so that one 2-byte X10 frame
    (doubled) costs ~0.37 s, matching the real medium's order of magnitude.
    """

    kind = "powerline"
    mtu = 4

    def __init__(self, sim: "Simulator", name: str, bandwidth_bps: float = 120.0):
        super().__init__(
            sim,
            name,
            bandwidth_bps=bandwidth_bps,
            propagation_delay=1e-3,
            header_overhead=3,  # start pattern + redundant retransmission
        )


class SerialLink(Segment):
    """Point-to-point RS-232 link (PC to CM11A X10 controller), 4800 baud as
    the real CM11A uses.  Only two interfaces may attach."""

    kind = "serial"
    mtu = 64

    def __init__(self, sim: "Simulator", name: str, bandwidth_bps: float = 4800.0):
        super().__init__(
            sim,
            name,
            bandwidth_bps=bandwidth_bps,
            propagation_delay=1e-6,
            header_overhead=2,  # start/stop bits amortised
        )

    def attach(self, interface: "Interface") -> None:
        if len(self.interfaces) >= 2:
            raise NetworkError(f"serial link {self.name} already has two endpoints")
        super().attach(interface)
