"""Traffic accounting for benchmarks.

A :class:`TrafficMonitor` attaches to one or more segments and tallies
frames and bytes per protocol tag.  The payload-size (C1) and stack-weight
(C4) experiments read these counters; the Figure-4 trace benchmark uses the
optional frame trace.

Reset contract: :meth:`TrafficMonitor.reset` returns the monitor to its
just-constructed state — every accumulator (``stats``, ``per_segment``,
``trace``, ``trace_dropped``, ``frames_coalesced``,
``coalesced_extra_per_segment``, ``coalesced_dropped_extra_per_segment``)
is cleared while configuration
(``name``, ``trace_enabled``, ``trace_limit``, watched segments) is kept.
Any new accumulating field added to this class MUST also be cleared there;
the regression tests compare a reset monitor against a fresh one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.frames import Frame
    from repro.net.segment import Segment


@dataclass
class TraceEntry:
    """One recorded transmission."""

    time: float
    segment: str
    protocol: str
    src: str
    dst: str
    size: int
    dropped: bool
    note: str = ""


@dataclass
class ProtocolStats:
    """Frame/byte tallies for one protocol tag."""

    frames: int = 0
    bytes: int = 0
    dropped_frames: int = 0


@dataclass
class TrafficMonitor:
    """Counts traffic on the segments it watches."""

    name: str = "monitor"
    trace_enabled: bool = False
    trace_limit: int = 10000
    stats: dict[str, ProtocolStats] = field(default_factory=dict)
    per_segment: dict[str, dict[str, ProtocolStats]] = field(default_factory=dict)
    trace: list[TraceEntry] = field(default_factory=list)
    #: Trace entries discarded because ``trace`` already held
    #: ``trace_limit`` entries.  Non-zero means the trace is incomplete —
    #: a truncated Figure-4 trace used to look exactly like a short run.
    trace_dropped: int = 0
    #: Constituent frames that travelled inside vectored transmissions
    #: (``Frame.parts``).  Their frames/bytes are tallied under their own
    #: protocol tags exactly as if sent un-coalesced; this counter is the
    #: only trace that coalescing happened.  Surfaced in the obs snapshot.
    frames_coalesced: int = 0
    #: Per segment: how many *extra* frames the constituent tallies hold
    #: relative to actual wire transmissions (``len(parts) - 1`` per
    #: vectored frame).  The conservation oracle subtracts this before
    #: comparing monitor frame counts against ``Segment.frames_sent``.
    coalesced_extra_per_segment: dict[str, int] = field(default_factory=dict)
    #: Same reconciliation for drops: a lost vectored transmission is one
    #: wire-level drop but ``len(parts)`` dropped constituents in the
    #: per-protocol tallies.
    coalesced_dropped_extra_per_segment: dict[str, int] = field(default_factory=dict)
    #: Configuration, not an accumulator (``reset`` keeps it): callbacks
    #: ``(segment_name, protocol, size, dropped)`` invoked for every
    #: recorded transmission — the flight recorder's wire-level feed.
    frame_listeners: list = field(default_factory=list)

    def watch(self, *segments: "Segment") -> "TrafficMonitor":
        for segment in segments:
            if self not in segment.monitors:
                segment.monitors.append(self)
        return self

    def unwatch(self, segment: "Segment") -> None:
        if self in segment.monitors:
            segment.monitors.remove(self)

    def record(self, segment: "Segment", frame: "Frame", size: int, dropped: bool) -> None:
        if frame.parts is not None:
            self._record_vectored(segment, frame, size, dropped)
            return
        stats = self.stats.setdefault(frame.protocol, ProtocolStats())
        seg_stats = self.per_segment.setdefault(segment.name, {}).setdefault(
            frame.protocol, ProtocolStats()
        )
        for bucket in (stats, seg_stats):
            bucket.frames += 1
            bucket.bytes += size
            if dropped:
                bucket.dropped_frames += 1
        if self.frame_listeners:
            for listener in self.frame_listeners:
                listener(segment.name, frame.protocol, size, dropped)
        if self.trace_enabled:
            if len(self.trace) < self.trace_limit:
                self.trace.append(
                    TraceEntry(
                        time=segment.sim.now,
                        segment=segment.name,
                        protocol=frame.protocol,
                        src=str(frame.src),
                        dst=str(frame.dst),
                        size=size,
                        dropped=dropped,
                        note=frame.note,
                    )
                )
            else:
                self.trace_dropped += 1

    def _record_vectored(
        self, segment: "Segment", frame: "Frame", size: int, dropped: bool
    ) -> None:
        """Account a vectored transmission by its constituents.

        Conservation rule: each constituent is tallied under its own
        protocol tag with the size it would have had un-coalesced
        (``payload_len + segment.header_overhead``), so per-protocol
        frame and byte counters are identical whether or not the reactor
        merged the frames.  The trace records the transmission as it
        actually happened on the wire (one vectored frame).
        """
        self.frames_coalesced += len(frame.parts)
        extra = len(frame.parts) - 1
        self.coalesced_extra_per_segment[segment.name] = (
            self.coalesced_extra_per_segment.get(segment.name, 0) + extra
        )
        if dropped:
            self.coalesced_dropped_extra_per_segment[segment.name] = (
                self.coalesced_dropped_extra_per_segment.get(segment.name, 0) + extra
            )
        overhead = segment.header_overhead
        seg_table = self.per_segment.setdefault(segment.name, {})
        for protocol, payload_len in frame.parts:
            stats = self.stats.setdefault(protocol, ProtocolStats())
            seg_stats = seg_table.setdefault(protocol, ProtocolStats())
            part_size = payload_len + overhead
            for bucket in (stats, seg_stats):
                bucket.frames += 1
                bucket.bytes += part_size
                if dropped:
                    bucket.dropped_frames += 1
        if self.frame_listeners:
            for listener in self.frame_listeners:
                listener(segment.name, frame.protocol, size, dropped)
        if self.trace_enabled:
            if len(self.trace) < self.trace_limit:
                self.trace.append(
                    TraceEntry(
                        time=segment.sim.now,
                        segment=segment.name,
                        protocol=frame.protocol,
                        src=str(frame.src),
                        dst=str(frame.dst),
                        size=size,
                        dropped=dropped,
                        note=frame.note or f"vectored x{len(frame.parts)}",
                    )
                )
            else:
                self.trace_dropped += 1

    # -- summary accessors ------------------------------------------------------

    @property
    def total_frames(self) -> int:
        return sum(stats.frames for stats in self.stats.values())

    @property
    def total_bytes(self) -> int:
        return sum(stats.bytes for stats in self.stats.values())

    def bytes_for(self, protocol: str) -> int:
        stats = self.stats.get(protocol)
        return stats.bytes if stats else 0

    def frames_for(self, protocol: str) -> int:
        stats = self.stats.get(protocol)
        return stats.frames if stats else 0

    def reset(self) -> None:
        """Clear every accumulator (see the module docstring's contract)."""
        self.stats.clear()
        self.per_segment.clear()
        self.trace.clear()
        self.trace_dropped = 0
        self.frames_coalesced = 0
        self.coalesced_extra_per_segment.clear()
        self.coalesced_dropped_extra_per_segment.clear()

    def summary_rows(self) -> list[tuple[str, int, int]]:
        """(protocol, frames, bytes) rows sorted by descending bytes.

        Rows are pure protocol tallies; trace truncation is reported by
        the explicit ``trace_dropped`` field (and :meth:`summary`), not a
        sentinel row.
        """
        rows = [
            (protocol, stats.frames, stats.bytes)
            for protocol, stats in self.stats.items()
        ]
        rows.sort(key=lambda row: row[2], reverse=True)
        return rows

    def summary(self) -> dict:
        """Structured summary with truncation explicit: a summary of an
        incomplete trace can't pass for a complete one."""
        return {
            "rows": self.summary_rows(),
            "total_frames": self.total_frames,
            "total_bytes": self.total_bytes,
            "trace_dropped": self.trace_dropped,
            "frames_coalesced": self.frames_coalesced,
        }
