"""Traffic accounting for benchmarks.

A :class:`TrafficMonitor` attaches to one or more segments and tallies
frames and bytes per protocol tag.  The payload-size (C1) and stack-weight
(C4) experiments read these counters; the Figure-4 trace benchmark uses the
optional frame trace.

Reset contract: :meth:`TrafficMonitor.reset` returns the monitor to its
just-constructed state — every accumulator (``stats``, ``per_segment``,
``trace``, ``trace_dropped``) is cleared while configuration
(``name``, ``trace_enabled``, ``trace_limit``, watched segments) is kept.
Any new accumulating field added to this class MUST also be cleared there;
the regression tests compare a reset monitor against a fresh one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.frames import Frame
    from repro.net.segment import Segment


@dataclass
class TraceEntry:
    """One recorded transmission."""

    time: float
    segment: str
    protocol: str
    src: str
    dst: str
    size: int
    dropped: bool
    note: str = ""


@dataclass
class ProtocolStats:
    """Frame/byte tallies for one protocol tag."""

    frames: int = 0
    bytes: int = 0
    dropped_frames: int = 0


@dataclass
class TrafficMonitor:
    """Counts traffic on the segments it watches."""

    name: str = "monitor"
    trace_enabled: bool = False
    trace_limit: int = 10000
    stats: dict[str, ProtocolStats] = field(default_factory=dict)
    per_segment: dict[str, dict[str, ProtocolStats]] = field(default_factory=dict)
    trace: list[TraceEntry] = field(default_factory=list)
    #: Trace entries discarded because ``trace`` already held
    #: ``trace_limit`` entries.  Non-zero means the trace is incomplete —
    #: a truncated Figure-4 trace used to look exactly like a short run.
    trace_dropped: int = 0

    def watch(self, *segments: "Segment") -> "TrafficMonitor":
        for segment in segments:
            if self not in segment.monitors:
                segment.monitors.append(self)
        return self

    def unwatch(self, segment: "Segment") -> None:
        if self in segment.monitors:
            segment.monitors.remove(self)

    def record(self, segment: "Segment", frame: "Frame", size: int, dropped: bool) -> None:
        stats = self.stats.setdefault(frame.protocol, ProtocolStats())
        seg_stats = self.per_segment.setdefault(segment.name, {}).setdefault(
            frame.protocol, ProtocolStats()
        )
        for bucket in (stats, seg_stats):
            bucket.frames += 1
            bucket.bytes += size
            if dropped:
                bucket.dropped_frames += 1
        if self.trace_enabled:
            if len(self.trace) < self.trace_limit:
                self.trace.append(
                    TraceEntry(
                        time=segment.sim.now,
                        segment=segment.name,
                        protocol=frame.protocol,
                        src=str(frame.src),
                        dst=str(frame.dst),
                        size=size,
                        dropped=dropped,
                        note=frame.note,
                    )
                )
            else:
                self.trace_dropped += 1

    # -- summary accessors ------------------------------------------------------

    @property
    def total_frames(self) -> int:
        return sum(stats.frames for stats in self.stats.values())

    @property
    def total_bytes(self) -> int:
        return sum(stats.bytes for stats in self.stats.values())

    def bytes_for(self, protocol: str) -> int:
        stats = self.stats.get(protocol)
        return stats.bytes if stats else 0

    def frames_for(self, protocol: str) -> int:
        stats = self.stats.get(protocol)
        return stats.frames if stats else 0

    def reset(self) -> None:
        """Clear every accumulator (see the module docstring's contract)."""
        self.stats.clear()
        self.per_segment.clear()
        self.trace.clear()
        self.trace_dropped = 0

    def summary_rows(self) -> list[tuple[str, int, int]]:
        """(protocol, frames, bytes) rows sorted by descending bytes.

        When trace entries were discarded past ``trace_limit`` a final
        ``("(trace dropped)", count, 0)`` row flags the truncation, so a
        summary of an incomplete trace can't pass for a complete one.
        """
        rows = [
            (protocol, stats.frames, stats.bytes)
            for protocol, stats in self.stats.items()
        ]
        rows.sort(key=lambda row: row[2], reverse=True)
        if self.trace_dropped:
            rows.append(("(trace dropped)", self.trace_dropped, 0))
        return rows
