"""UDP-like datagrams and TCP-like reliable streams over the simulated net.

The paper's Section 4.2 criticises SOAP's transport: "current HTTP must run
over TCP, and a TCP stack is large and complex.  This can be an issue in
small devices".  To let the benchmarks quantify that, connections here have
real (simulated) costs: a three-way handshake before any data, per-frame
headers, MTU segmentation, and per-connection state that the monitor can
count.  Datagrams have none of that, which is why discovery protocols
(Jini multicast, SSDP, SIP) use them.

Both protocols are *reliable in order* on non-lossy segments because the
segments themselves deliver serially; no retransmission machinery is
simulated (middleware never runs TCP over the lossy powerline).

The stack owns one :class:`~repro.net.reactor.Reactor` per node.
Connections flagged ``vectored`` do not transmit from :meth:`Connection.
send`; they queue frames with the reactor, which coalesces each
connection's burst into one ``tcpv`` segment transmission per readiness
cycle (``writev`` semantics).  Inbound, a ``tcpv`` frame is unpacked into
zero-copy :class:`memoryview` slices; connections flagged ``zero_copy``
receive those views directly, others get ``bytes`` as before.  Legacy
connections (``vectored`` False, the default) keep the exact pre-reactor
immediate transmit path, byte for byte.
"""

from __future__ import annotations

import struct
from typing import Callable

from repro.errors import ConnectionClosedError, NetworkError, TransportError
from repro.net.addressing import BROADCAST, NodeAddress
from repro.net.frames import Frame
from repro.net.network import Network
from repro.net.node import Interface, Node
from repro.net.reactor import Reactor
from repro.net.segment import Segment
from repro.net.simkernel import SimFuture

PROTO_UDP = "udp"
PROTO_TCP = "tcp"
#: Vectored transport frame: several TCP-like frames coalesced into one
#: segment transmission by the reactor (u16 length prefix per sub-frame).
PROTO_TCPV = "tcpv"

_UDP_HEADER = struct.Struct("!HH")  # src_port, dst_port
_TCP_HEADER = struct.Struct("!BHHI")  # kind, src_port, dst_port, seq
_VECTOR_LEN = struct.Struct("!H")  # sub-frame length inside a tcpv frame

# TCP-like frame kinds.
_SYN = 1
_SYN_ACK = 2
_ACK = 3
_DATA = 4
_FIN = 5
_FIN_ACK = 6
_RST = 7

_EPHEMERAL_START = 49152

#: Local-delivery latency when both endpoints live on the same node.
_LOOPBACK_DELAY = 1e-6


class DatagramSocket:
    """Connectionless socket bound to one port of a node."""

    def __init__(self, stack: "TransportStack", port: int) -> None:
        self._stack = stack
        self.port = port
        self._handler: Callable[[NodeAddress, int, bytes], None] | None = None
        self._backlog: list[tuple[NodeAddress, int, bytes]] = []
        self.closed = False

    def on_datagram(self, handler: Callable[[NodeAddress, int, bytes], None]) -> None:
        """Install the receive handler ``(src_addr, src_port, data)``.
        Datagrams that arrived before the handler was set are replayed."""
        self._handler = handler
        backlog, self._backlog = self._backlog, []
        for item in backlog:
            handler(*item)

    def sendto(self, dst: NodeAddress, dst_port: int, data: bytes) -> None:
        if self.closed:
            raise ConnectionClosedError("sendto on closed datagram socket")
        payload = _UDP_HEADER.pack(self.port, dst_port) + data
        self._stack.send_network(dst, PROTO_UDP, payload)

    def broadcast(self, segment: Segment | str, dst_port: int, data: bytes) -> None:
        """Broadcast on one directly attached segment."""
        if self.closed:
            raise ConnectionClosedError("broadcast on closed datagram socket")
        payload = _UDP_HEADER.pack(self.port, dst_port) + data
        self._stack.send_broadcast(segment, PROTO_UDP, payload)

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._stack._release_udp(self.port)

    def _deliver(self, src: NodeAddress, src_port: int, data: bytes) -> None:
        if self.closed:
            return
        if self._handler is None:
            self._backlog.append((src, src_port, data))
        else:
            self._handler(src, src_port, data)


class Listener:
    """A TCP-like listening port."""

    def __init__(
        self,
        stack: "TransportStack",
        port: int,
        on_connection: Callable[["Connection"], None],
    ) -> None:
        self._stack = stack
        self.port = port
        self.on_connection = on_connection
        self.closed = False

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._stack._release_listener(self.port)


class Connection:
    """One reliable byte-stream connection endpoint."""

    # Connection states.
    SYN_SENT = "SYN_SENT"
    SYN_RECEIVED = "SYN_RECEIVED"
    ESTABLISHED = "ESTABLISHED"
    CLOSING = "CLOSING"
    CLOSED = "CLOSED"

    def __init__(
        self,
        stack: "TransportStack",
        local_port: int,
        remote: NodeAddress,
        remote_port: int,
    ) -> None:
        self._stack = stack
        self.local_port = local_port
        self.remote = remote
        self.remote_port = remote_port
        self.state = Connection.CLOSED
        self._receiver: Callable[["Connection", bytes], None] | None = None
        self._rx_backlog: list[bytes] = []
        self._on_close: Callable[["Connection"], None] | None = None
        self._next_seq = 0
        #: Route outbound frames through the reactor (coalescing into
        #: vectored transmissions) instead of transmitting immediately.
        #: Off by default: the legacy wire stays byte-identical.
        self.vectored = False
        #: Deliver inbound data as zero-copy ``memoryview`` slices instead
        #: of ``bytes``.  Only receivers that accept views may enable it.
        self.zero_copy = False
        #: Frames queued for the reactor's next readiness cycle.
        self._tx_pending: list[tuple[str, bytes]] = []
        # Accounting read by the stack-weight benchmark (experiment C4).
        self.bytes_sent = 0
        self.bytes_received = 0
        self.frames_sent = 0
        self.frames_received = 0

    # -- user API -------------------------------------------------------------

    def send(self, data: bytes) -> None:
        """Send bytes, segmented to the path MTU."""
        if self.state != Connection.ESTABLISHED:
            raise ConnectionClosedError(
                f"send on connection in state {self.state} to {self.remote}"
            )
        mtu = self._stack.path_mtu(self.remote)
        chunk_size = max(1, mtu - _TCP_HEADER.size)
        for offset in range(0, len(data), chunk_size):
            chunk = data[offset : offset + chunk_size]
            self._send_frame(_DATA, chunk)
        self.bytes_sent += len(data)

    def set_receiver(self, handler: Callable[["Connection", bytes], None]) -> None:
        """Install the data handler; buffered data is replayed in order."""
        self._receiver = handler
        backlog, self._rx_backlog = self._rx_backlog, []
        for chunk in backlog:
            handler(self, chunk)

    def on_close(self, handler: Callable[["Connection"], None]) -> None:
        self._on_close = handler

    def close(self) -> None:
        """Initiate an orderly shutdown (FIN / FIN-ACK)."""
        if self.state != Connection.ESTABLISHED:
            return
        self.state = Connection.CLOSING
        self._send_frame(_FIN, b"")

    def abort(self) -> None:
        """Tear down immediately: best-effort RST, then local close.

        Unlike :meth:`close`, works from any state and never waits for the
        peer — the caller may believe the path is dead (partition, crash),
        so the RST is fire-and-forget and local state is reclaimed now.
        """
        if self.state == Connection.CLOSED:
            return
        # Frames queued for the reactor die with the connection, and the
        # RST itself bypasses it: an abort must not wait for (or feed) a
        # readiness cycle on a path the caller believes is dead.  The
        # reactor's flush loop tolerates the emptied queue (_take_tx
        # returning nothing is a skip, not an error).
        self._tx_pending.clear()
        self.vectored = False
        try:
            self._send_frame(_RST, b"")
        except Exception:
            pass  # interface may be down; local cleanup still proceeds
        self._enter_closed()

    @property
    def key(self) -> tuple[NodeAddress, int, int]:
        return (self.remote, self.remote_port, self.local_port)

    # -- internals ------------------------------------------------------------

    def _send_frame(self, kind: int, body: bytes) -> None:
        header = _TCP_HEADER.pack(kind, self.local_port, self.remote_port, self._next_seq)
        self._next_seq += 1
        self.frames_sent += 1
        payload = header + body
        if self.vectored:
            # Register write interest *before* queueing: the reactor uses
            # an empty _tx_pending as "not yet in this cycle's writable set".
            self._stack.reactor.register_writable(self)
            self._tx_pending.append((PROTO_TCP, payload))
        else:
            self._stack.send_network(self.remote, PROTO_TCP, payload)

    def _take_tx(self) -> list[tuple[str, bytes]]:
        """Hand the reactor everything queued for this readiness cycle."""
        frames, self._tx_pending = self._tx_pending, []
        return frames

    def _deliver_data(self, body: bytes | memoryview) -> None:
        self.bytes_received += len(body)
        self.frames_received += 1
        if self._receiver is None:
            self._rx_backlog.append(body)
        else:
            self._receiver(self, body)

    def _enter_closed(self) -> None:
        if self.state == Connection.CLOSED:
            return
        self.state = Connection.CLOSED
        self._stack._forget_connection(self)
        if self._on_close is not None:
            self._on_close(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Connection :{self.local_port} <-> {self.remote}:{self.remote_port} "
            f"{self.state}>"
        )


class TransportStack:
    """Per-node transport layer.  One per node that speaks UDP/TCP."""

    def __init__(self, node: Node, network: Network) -> None:
        self.node = node
        self.network = network
        self.sim = node.sim
        node.register_protocol(PROTO_UDP, self._on_udp_frame)
        node.register_protocol(PROTO_TCP, self._on_tcp_frame)
        node.register_protocol(PROTO_TCPV, self._on_tcpv_frame)
        self._udp_sockets: dict[int, DatagramSocket] = {}
        self._listeners: dict[int, Listener] = {}
        self._connections: dict[tuple[NodeAddress, int, int], Connection] = {}
        self._pending_connects: dict[tuple[NodeAddress, int, int], SimFuture] = {}
        self._ephemeral = _EPHEMERAL_START
        #: Per-node readiness engine: vectored writes + parked continuations.
        self.reactor = Reactor(self)

    # -- socket creation --------------------------------------------------------

    def udp_socket(self, port: int | None = None) -> DatagramSocket:
        port = self._claim_port(port, self._udp_sockets, "UDP")
        sock = DatagramSocket(self, port)
        self._udp_sockets[port] = sock
        return sock

    def listen(self, port: int, on_connection: Callable[[Connection], None]) -> Listener:
        port = self._claim_port(port, self._listeners, "TCP listener")
        listener = Listener(self, port, on_connection)
        self._listeners[port] = listener
        return listener

    #: Virtual seconds before an unanswered SYN gives up (like a SYN
    #: timeout; our lossless segments need no retransmission, so silence
    #: means the peer is partitioned or down).
    CONNECT_TIMEOUT = 30.0

    def connect(
        self,
        dst: NodeAddress,
        dst_port: int,
        local_port: int | None = None,
        timeout: float | None = None,
    ) -> SimFuture:
        """Open a connection; resolves to an ESTABLISHED :class:`Connection`
        or fails with :class:`TransportError` if the port is refused or the
        peer stays silent for ``timeout`` (default CONNECT_TIMEOUT)."""
        local_port = self._claim_port(local_port, self._connections_ports(), "TCP")
        conn = Connection(self, local_port, dst, dst_port)
        conn.state = Connection.SYN_SENT
        self._connections[conn.key] = conn
        future = SimFuture()
        self._pending_connects[conn.key] = future

        def give_up() -> None:
            pending = self._pending_connects.pop(conn.key, None)
            if pending is None or pending.done():
                return
            self._forget_connection(conn)
            conn.state = Connection.CLOSED
            pending.set_exception(
                TransportError(f"connect to {dst}:{dst_port} timed out")
            )

        timer = self.sim.schedule(
            timeout if timeout is not None else self.CONNECT_TIMEOUT, give_up
        )
        future.add_done_callback(lambda _f: timer.cancel())
        try:
            conn._send_frame(_SYN, b"")
        except NetworkError as exc:
            self._forget_connection(conn)
            self._pending_connects.pop(conn.key, None)
            future.set_exception(TransportError(f"connect failed: {exc}"))
        return future

    # -- address / routing helpers ------------------------------------------------

    def local_address(self, segment: Segment | str | None = None) -> NodeAddress:
        """An address of this node; on a multi-homed node pass the segment."""
        if segment is None:
            if not self.node.interfaces:
                raise NetworkError(f"node {self.node.name} has no interfaces")
            return self.node.interfaces[0].node_address
        if isinstance(segment, str):
            segment = self.network.segment(segment)
        return self.node.interface_on(segment).node_address

    def path_mtu(self, dst: NodeAddress) -> int:
        segment = self.network.segment(dst.segment)
        return getattr(segment, "mtu", 1500)

    def send_network(self, dst: NodeAddress, protocol: str, payload: bytes) -> None:
        """Network-layer send: resolve destination, pick the local interface
        on the same segment (or loop back if the destination is ourselves)."""
        dst_iface = self.network.resolve(dst)
        if dst_iface.node is self.node:
            # Loopback: never touches a segment.
            frame = Frame(
                src=dst_iface.hw_address,
                dst=dst_iface.hw_address,
                protocol=protocol,
                payload=payload,
                note="loopback",
            )
            self.sim.schedule(_LOOPBACK_DELAY, self.node.on_frame, dst_iface, frame)
            return
        segment = dst_iface.segment
        local_iface = self.node.interface_on(segment)
        local_iface.send(dst_iface.hw_address, protocol, payload)

    def send_vectored(self, dst: NodeAddress, frames: list[tuple[str, bytes]]) -> None:
        """One segment transmission carrying several transport frames
        (``writev`` semantics).  Each ``(protocol, payload)`` sub-frame is
        u16-length-prefixed into a single ``tcpv`` frame; ``Frame.parts``
        carries constituent metadata so monitors account them exactly as
        if they had been transmitted one by one."""
        buf = bytearray()
        parts: list[tuple[str, int]] = []
        for protocol, payload in frames:
            buf += _VECTOR_LEN.pack(len(payload))
            buf += payload
            parts.append((protocol, len(payload)))
        vector_payload = bytes(buf)
        parts_meta = tuple(parts)
        dst_iface = self.network.resolve(dst)
        if dst_iface.node is self.node:
            frame = Frame(
                src=dst_iface.hw_address,
                dst=dst_iface.hw_address,
                protocol=PROTO_TCPV,
                payload=vector_payload,
                note="loopback",
                parts=parts_meta,
            )
            self.sim.schedule(_LOOPBACK_DELAY, self.node.on_frame, dst_iface, frame)
            return
        segment = dst_iface.segment
        local_iface = self.node.interface_on(segment)
        local_iface.send(dst_iface.hw_address, PROTO_TCPV, vector_payload, parts=parts_meta)

    def send_broadcast(self, segment: Segment | str, protocol: str, payload: bytes) -> None:
        if isinstance(segment, str):
            segment = self.network.segment(segment)
        local_iface = self.node.interface_on(segment)
        local_iface.send(BROADCAST, protocol, payload)

    # -- frame handlers ------------------------------------------------------------

    def _on_udp_frame(self, interface: Interface, frame: Frame) -> None:
        if len(frame.payload) < _UDP_HEADER.size:
            return
        src_port, dst_port = _UDP_HEADER.unpack_from(frame.payload)
        data = frame.payload[_UDP_HEADER.size :]
        sock = self._udp_sockets.get(dst_port)
        if sock is None:
            return  # no listener: datagram silently dropped, like real UDP
        src_addr = self._source_address(interface, frame)
        sock._deliver(src_addr, src_port, data)

    def _on_tcp_frame(self, interface: Interface, frame: Frame) -> None:
        if len(frame.payload) < _TCP_HEADER.size:
            return
        kind, src_port, dst_port, _seq = _TCP_HEADER.unpack_from(frame.payload)
        peer = self._source_address(interface, frame)
        self._dispatch_tcp(peer, kind, src_port, dst_port, frame.payload, _TCP_HEADER.size)

    def _on_tcpv_frame(self, interface: Interface, frame: Frame) -> None:
        """Unpack a vectored transmission into its constituent TCP-like
        frames and dispatch each; sub-frame bodies are zero-copy
        ``memoryview`` slices over the one frame payload."""
        peer = self._source_address(interface, frame)
        view = memoryview(frame.payload)
        offset = 0
        total = len(view)
        while offset + _VECTOR_LEN.size <= total:
            (length,) = _VECTOR_LEN.unpack_from(view, offset)
            offset += _VECTOR_LEN.size
            sub = view[offset : offset + length]
            offset += length
            if len(sub) < _TCP_HEADER.size:
                continue
            kind, src_port, dst_port, _seq = _TCP_HEADER.unpack_from(sub)
            self._dispatch_tcp(peer, kind, src_port, dst_port, sub, _TCP_HEADER.size)

    def _dispatch_tcp(
        self,
        peer: NodeAddress,
        kind: int,
        src_port: int,
        dst_port: int,
        payload: bytes | memoryview,
        offset: int,
    ) -> None:
        """Shared TCP-like state machine for plain and vectored frames.
        ``payload[offset:]`` is the frame body; it is only materialised
        (and only copied for non-zero-copy connections) on _DATA."""
        key = (peer, src_port, dst_port)
        conn = self._connections.get(key)

        if kind == _SYN:
            self._handle_syn(peer, src_port, dst_port)
        elif kind == _SYN_ACK:
            if conn is not None and conn.state == Connection.SYN_SENT:
                conn.state = Connection.ESTABLISHED
                conn._send_frame(_ACK, b"")
                future = self._pending_connects.pop(key, None)
                if future is not None:
                    future.set_result(conn)
        elif kind == _ACK:
            if conn is not None and conn.state == Connection.SYN_RECEIVED:
                conn.state = Connection.ESTABLISHED
                listener = self._listeners.get(dst_port)
                if listener is not None and not listener.closed:
                    listener.on_connection(conn)
        elif kind == _DATA:
            if conn is not None and conn.state == Connection.ESTABLISHED:
                if conn.zero_copy:
                    view = (
                        payload
                        if isinstance(payload, memoryview)
                        else memoryview(payload)
                    )
                    conn._deliver_data(view[offset:])
                else:
                    body = payload[offset:]
                    if not isinstance(body, bytes):
                        body = bytes(body)
                    conn._deliver_data(body)
            elif conn is None:
                # Data for a connection this host no longer knows — the
                # process rebooted (see :meth:`reboot`) or state was
                # reclaimed.  Answer RST from a throwaway shell so the
                # sender tears down instead of trusting a half-open
                # connection whose FIFO reply order is gone.
                shell = Connection(self, dst_port, peer, src_port)
                shell._send_frame(_RST, b"")
        elif kind == _FIN:
            if conn is not None:
                conn._send_frame(_FIN_ACK, b"")
                conn._enter_closed()
        elif kind == _FIN_ACK:
            if conn is not None:
                conn._enter_closed()
        elif kind == _RST:
            if conn is not None:
                future = self._pending_connects.pop(key, None)
                if future is not None:
                    conn._stack._forget_connection(conn)
                    conn.state = Connection.CLOSED
                    future.set_exception(
                        TransportError(f"connection refused by {peer}:{src_port}")
                    )
                else:
                    conn._enter_closed()

    def _handle_syn(self, peer: NodeAddress, peer_port: int, local_port: int) -> None:
        listener = self._listeners.get(local_port)
        if listener is None or listener.closed:
            # Refuse: reply RST from an unbound throwaway connection shell.
            shell = Connection(self, local_port, peer, peer_port)
            shell._send_frame(_RST, b"")
            return
        conn = Connection(self, local_port, peer, peer_port)
        conn.state = Connection.SYN_RECEIVED
        self._connections[conn.key] = conn
        conn._send_frame(_SYN_ACK, b"")

    # -- bookkeeping ------------------------------------------------------------

    def _source_address(self, interface: Interface, frame: Frame) -> NodeAddress:
        if frame.note == "loopback":
            return interface.node_address
        return self.network.resolve_hw(frame.src).node_address

    def _claim_port(self, port: int | None, table, what: str) -> int:
        if port is None:
            while self._ephemeral in self._udp_sockets or self._ephemeral in self._listeners:
                self._ephemeral += 1
            port = self._ephemeral
            self._ephemeral += 1
            return port
        if port in table:
            raise TransportError(f"{what} port {port} already in use on {self.node.name}")
        return port

    def _connections_ports(self) -> dict[int, Connection]:
        return {key[2]: conn for key, conn in self._connections.items()}

    def _release_udp(self, port: int) -> None:
        self._udp_sockets.pop(port, None)

    def _release_listener(self, port: int) -> None:
        self._listeners.pop(port, None)

    def _forget_connection(self, conn: Connection) -> None:
        self._connections.pop(conn.key, None)

    @property
    def open_connections(self) -> int:
        """Live TCP-like connection count (per-connection state is the
        'heavy stack' cost the paper worries about on small devices)."""
        return len(self._connections)

    # -- teardown ------------------------------------------------------------

    def reboot(self) -> None:
        """Process death (cold crash): connection state is lost wholesale.

        Pending connects fail, established connections are aborted
        locally (the RST is best-effort — the interfaces are typically
        already down when this runs), and parked reactor continuations
        die with the process.  Listeners and datagram sockets survive:
        they model the port bindings the recovering process
        re-establishes with the same handlers.  Peers that still
        believe in a pre-reboot connection learn the truth from the RST
        their next data frame draws (see ``_dispatch_tcp``).
        """
        for future in list(self._pending_connects.values()):
            if not future.done():
                future.set_exception(TransportError("process rebooted"))
        self._pending_connects.clear()
        for conn in list(self._connections.values()):
            conn.abort()
        self._connections.clear()
        self.reactor.cancel_all()

    def shutdown(self) -> None:
        """Tear the whole stack down (node decommission / kill).

        Closes listeners and datagram sockets, fails pending connects,
        aborts live connections, and cancels every continuation still
        parked on the reactor — after this the reactor's ``parked`` gauge
        is 0 and nothing can leak (the shutdown-semantics tests and the
        testkit oracles pin exactly that).
        """
        for listener in list(self._listeners.values()):
            listener.close()
        for sock in list(self._udp_sockets.values()):
            sock.close()
        for future in list(self._pending_connects.values()):
            if not future.done():
                future.set_exception(TransportError("transport stack shut down"))
        self._pending_connects.clear()
        for conn in list(self._connections.values()):
            conn.abort()
        self.reactor.cancel_all()
