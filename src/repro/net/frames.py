"""Link-layer frames exchanged on simulated segments."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.addressing import HwAddress


@dataclass
class Frame:
    """One link-layer frame.

    ``protocol`` is a short tag used by nodes to dispatch the frame to the
    right upper-layer handler (playing the role of an EtherType).  ``payload``
    is always bytes: substrates genuinely encode and decode their wire
    formats, which is what makes the payload-size benchmarks meaningful.
    """

    src: HwAddress
    dst: HwAddress
    protocol: str
    payload: bytes
    #: Free-form metadata for monitors/tests (never examined by the stack).
    note: str = field(default="", compare=False)
    #: Constituent metadata for vectored (coalesced) transmissions:
    #: ``(protocol, payload_len)`` per sub-frame, so monitors can account
    #: the constituents identically to the un-coalesced path.  ``None``
    #: for ordinary frames.
    parts: tuple[tuple[str, int], ...] | None = field(default=None, compare=False)

    def size_on_wire(self, header_overhead: int) -> int:
        """Total bytes this frame occupies on a segment with the given
        per-frame header overhead."""
        return len(self.payload) + header_overhead

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Frame {self.src}->{self.dst} proto={self.protocol} "
            f"len={len(self.payload)}>"
        )
