"""Nodes and their interfaces."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import NetworkError
from repro.net.addressing import BROADCAST, HwAddress, NodeAddress
from repro.net.frames import Frame

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.segment import Segment
    from repro.net.simkernel import Simulator

#: Signature of an upper-layer frame handler: (receiving interface, frame).
FrameHandler = Callable[["Interface", Frame], None]


class Interface:
    """One attachment point of a node to a segment."""

    def __init__(
        self,
        node: "Node",
        segment: "Segment",
        hw_address: HwAddress,
        node_address: NodeAddress,
    ) -> None:
        self.node = node
        self.segment = segment
        self.hw_address = hw_address
        self.node_address = node_address
        #: When True the interface hands all frames up, not just ones
        #: addressed to it (used by sniffers/monitors in tests).
        self.promiscuous = False
        self.up = True

    def send(
        self,
        dst: HwAddress,
        protocol: str,
        payload: bytes,
        note: str = "",
        parts: tuple[tuple[str, int], ...] | None = None,
    ) -> float:
        """Transmit a frame on this interface's segment.  Returns the virtual
        time the transmission completes.  ``parts`` carries constituent
        metadata for vectored transmissions (see :class:`~repro.net.frames.
        Frame`)."""
        if not self.up:
            raise NetworkError(f"interface {self} is down")
        frame = Frame(
            src=self.hw_address,
            dst=dst,
            protocol=protocol,
            payload=payload,
            note=note,
            parts=parts,
        )
        return self.segment.transmit(self, frame)

    def broadcast(self, protocol: str, payload: bytes, note: str = "") -> float:
        return self.send(BROADCAST, protocol, payload, note)

    def deliver(self, frame: Frame) -> None:
        """Called by the segment when a frame arrives."""
        if not self.up:
            return
        addressed_to_us = frame.dst == self.hw_address or frame.dst.is_broadcast()
        if addressed_to_us or self.promiscuous:
            self.node.on_frame(self, frame)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Interface {self.node_address} hw={self.hw_address}>"


class Node:
    """A device on the network: zero or more interfaces plus a protocol
    dispatch table.

    Upper layers (transport stacks, middleware protocol engines) register a
    handler per protocol tag.  Gateways are simply nodes attached to more
    than one segment.
    """

    def __init__(self, sim: "Simulator", name: str) -> None:
        self.sim = sim
        self.name = name
        self.interfaces: list[Interface] = []
        self._handlers: dict[str, FrameHandler] = {}

    # -- wiring ------------------------------------------------------------

    def add_interface(self, interface: Interface) -> None:
        self.interfaces.append(interface)

    def interface_on(self, segment: "Segment") -> Interface:
        """The node's interface attached to ``segment``."""
        for interface in self.interfaces:
            if interface.segment is segment:
                return interface
        raise NetworkError(f"node {self.name} has no interface on {segment.name}")

    # -- failure injection ---------------------------------------------------

    @property
    def alive(self) -> bool:
        """True unless every interface is administratively down."""
        return any(interface.up for interface in self.interfaces) or not self.interfaces

    def crash(self) -> None:
        """Take every interface down: frames in flight towards the node are
        lost on arrival and sends raise, exactly like pulled power."""
        for interface in self.interfaces:
            interface.up = False

    def restart(self) -> None:
        """Bring every interface back up.  Protocol state registered on the
        node (listeners, handlers) survives, as for a fast process restart."""
        for interface in self.interfaces:
            interface.up = True

    def register_protocol(self, protocol: str, handler: FrameHandler) -> None:
        """Install the upper-layer handler for frames tagged ``protocol``.
        Registering twice for the same tag is an error (it would silently
        drop a protocol engine)."""
        if protocol in self._handlers:
            raise NetworkError(
                f"node {self.name}: handler for protocol {protocol!r} already registered"
            )
        self._handlers[protocol] = handler

    def unregister_protocol(self, protocol: str) -> None:
        self._handlers.pop(protocol, None)

    # -- datapath ------------------------------------------------------------

    def on_frame(self, interface: Interface, frame: Frame) -> None:
        handler = self._handlers.get(frame.protocol)
        if handler is not None:
            handler(interface, frame)
        # Frames with no registered handler are dropped silently, like a
        # host ignoring an unknown EtherType.

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.name} ifaces={len(self.interfaces)}>"
