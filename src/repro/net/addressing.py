"""Hardware and network-layer addresses for the simulated home network.

Two address spaces exist, mirroring real stacks:

- :class:`HwAddress` — link-layer address, unique per interface *within a
  segment* (like a MAC address, a 1394 phy id, or an X10 house/unit pair's
  carrier).  Frames carry these.
- :class:`NodeAddress` — network-layer address of an interface, unique
  across the whole :class:`repro.net.network.Network` (like an IP address).
  Transport sockets address peers with these.

The home topology in the paper has no router: every middleware island is one
segment, and gateways are *multi-homed application-layer* bridges.  So the
network layer only ever resolves a :class:`NodeAddress` to (segment,
hardware address) — there is no forwarding plane.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class HwAddress:
    """Link-layer interface address, rendered MAC-style."""

    value: int

    def __str__(self) -> str:
        if self.value == _BROADCAST_VALUE:
            return "ff:ff"
        return f"{self.value >> 8 & 0xFF:02x}:{self.value & 0xFF:02x}"

    def is_broadcast(self) -> bool:
        return self.value == _BROADCAST_VALUE


_BROADCAST_VALUE = 0xFFFF

#: Destination address that delivers a frame to every other interface on the
#: segment.
BROADCAST = HwAddress(_BROADCAST_VALUE)


@dataclass(frozen=True, order=True)
class NodeAddress:
    """Network-layer address of one interface: ``<segment>/<host#>``."""

    segment: str
    host: int

    def __str__(self) -> str:
        return f"{self.segment}/{self.host}"

    @staticmethod
    def parse(text: str) -> "NodeAddress":
        """Inverse of ``str()``; raises ValueError on malformed input."""
        segment, _, host = text.rpartition("/")
        if not segment or not host.isdigit():
            raise ValueError(f"malformed node address {text!r}")
        return NodeAddress(segment, int(host))
