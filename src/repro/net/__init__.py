"""Simulated home-network substrate.

This package provides everything the middleware substrates run on:

- :mod:`repro.net.simkernel` — a deterministic discrete-event scheduler with
  a virtual clock.  All latencies reported by the benchmarks are virtual-time
  figures produced by this kernel.
- :mod:`repro.net.segment` — broadcast media models (Ethernet, IEEE1394,
  X10 powerline, RS-232 serial) with per-segment bandwidth, propagation
  delay, framing overhead and optional loss.
- :mod:`repro.net.node` / :mod:`repro.net.network` — nodes, interfaces and
  the topology container.
- :mod:`repro.net.transport` — UDP-like datagrams and TCP-like reliable
  byte-stream connections, including simulated handshakes so that the
  paper's "a TCP stack is large and complex" discussion can be quantified.
- :mod:`repro.net.monitor` — per-segment traffic accounting used by the
  payload/overhead benchmarks.
"""

from repro.net.addressing import BROADCAST, HwAddress, NodeAddress
from repro.net.frames import Frame
from repro.net.monitor import TrafficMonitor
from repro.net.network import Network
from repro.net.node import Interface, Node
from repro.net.segment import (
    EthernetSegment,
    IEEE1394Segment,
    PowerlineSegment,
    Segment,
    SerialLink,
)
from repro.net.simkernel import Event, SimFuture, Simulator
from repro.net.transport import (
    Connection,
    DatagramSocket,
    Listener,
    TransportStack,
)

__all__ = [
    "BROADCAST",
    "Connection",
    "DatagramSocket",
    "EthernetSegment",
    "Event",
    "Frame",
    "HwAddress",
    "IEEE1394Segment",
    "Interface",
    "Listener",
    "Network",
    "Node",
    "NodeAddress",
    "PowerlineSegment",
    "Segment",
    "SerialLink",
    "SimFuture",
    "Simulator",
    "TrafficMonitor",
    "TransportStack",
]
