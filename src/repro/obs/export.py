"""Exporters: JSONL spans, metrics snapshots, and the TrafficMonitor bridge.

Everything here produces deterministic output — sorted keys, compact
separators, creation order — so identical simulation runs export
byte-identical artifacts (pinned by the obs test suite and C9).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Iterable

from repro.obs.trace import Span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints only
    from repro.net.monitor import TrafficMonitor
    from repro.obs.metrics import MetricsRegistry


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """One compact sorted-key JSON object per line, in the given order."""
    return "".join(
        json.dumps(span.to_record(), sort_keys=True, separators=(",", ":")) + "\n"
        for span in spans
    )


def write_spans_jsonl(path: str, spans: Iterable[Span]) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(spans_to_jsonl(spans))
    return path


def snapshot_with_traffic(
    metrics: "MetricsRegistry",
    monitors: "TrafficMonitor | Iterable[TrafficMonitor]",
    reactors: "dict[str, Any] | None" = None,
) -> dict[str, Any]:
    """Metrics snapshot with TrafficMonitor byte counts folded in.

    Wire-level observations (frames/bytes per protocol, dropped trace
    entries) become ``traffic.<monitor>.<protocol>.frames|bytes`` keys next
    to the call-level metrics, so one snapshot answers both "how many
    calls" and "how many bytes".  Pass ``reactors`` (label -> Reactor, or
    anything with a ``.reactor`` such as a TransportStack) to fold each
    reactor's :meth:`stats` in as ``reactor.<label>.<stat>`` keys, so
    continuation/queue depth shows up in the same snapshot.
    """
    if not isinstance(monitors, Iterable):
        monitors = [monitors]
    snapshot = dict(metrics.snapshot())
    for monitor in monitors:
        prefix = f"traffic.{monitor.name}"
        for protocol, frames, total in monitor.summary_rows():
            snapshot[f"{prefix}.{protocol}.frames"] = frames
            snapshot[f"{prefix}.{protocol}.bytes"] = total
        snapshot[f"{prefix}.total_frames"] = monitor.total_frames
        snapshot[f"{prefix}.total_bytes"] = monitor.total_bytes
        snapshot[f"{prefix}.trace_dropped"] = monitor.trace_dropped
        snapshot[f"{prefix}.frames_coalesced"] = monitor.frames_coalesced
    for label, target in (reactors or {}).items():
        reactor = getattr(target, "reactor", target)
        for key, value in reactor.stats().items():
            snapshot[f"reactor.{label}.{key}"] = value
    return {name: snapshot[name] for name in sorted(snapshot)}


def snapshot_to_json(snapshot: dict[str, Any]) -> str:
    return json.dumps(snapshot, sort_keys=True, indent=2)
