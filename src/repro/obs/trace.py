"""Distributed tracing across middleware islands.

The paper's bridged call traverses many hidden layers — client stub →
Server Proxy → VSG → SOAP interchange → peer VSG → Client Proxy → native
middleware — and until now only the wire was observable
(:class:`repro.net.monitor.TrafficMonitor`).  This module makes the *call
path* observable: one bridged invocation yields a single span tree whose
spans live on both islands, timestamped from the virtual clock, so the
per-hop cost structure (proxy dispatch, VSR lookup, SOAP encode, transport,
remote dispatch, native middleware) can be read directly.

Model
-----

- :class:`TraceContext` — the propagated identity of a point in a trace:
  ``(trace_id, span_id)``.  It crosses the interchange in the ``X-Trace``
  HTTP header (``trace_id;span_id``) and rides on
  :class:`repro.core.calls.ServiceCall` inside a gateway.
- :class:`Span` — one timed operation.  Spans carry a name, the island
  they ran on, a kind (``client`` / ``server`` / ``native`` / ...), start
  and end virtual times, string attributes, and timestamped annotations
  (retries, breaker events).
- :class:`Tracer` — creates spans, assigns deterministic ids (monotonic
  counters, never wall-clock or random), keeps every span for export, and
  maintains an *ambient* activation stack so synchronous callees pick up
  their caller's span as parent without explicit plumbing.
- :class:`NullTracer` / :data:`NULL_SPAN` — the zero-cost default.  Every
  method is a no-op and ``enabled`` is False, so instrumented hot paths
  pay one attribute check and nothing else.

Determinism: ids come from per-tracer counters and times from the
simulation clock, so identical runs export byte-identical JSONL.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

#: HTTP header carrying the trace context across the interchange.
TRACE_HEADER = "X-Trace"


@dataclass(frozen=True)
class TraceContext:
    """Propagated identity of one point in a trace."""

    trace_id: str
    span_id: str

    def to_header(self) -> str:
        """Serialise for the ``X-Trace`` header: ``trace_id;span_id``."""
        return f"{self.trace_id};{self.span_id}"

    @staticmethod
    def from_header(value: str) -> "TraceContext | None":
        """Parse an ``X-Trace`` header; None for anything malformed (a
        foreign or garbled header must never break a request)."""
        if not value:
            return None
        head, sep, tail = value.partition(";")
        head, tail = head.strip(), tail.strip()
        if not sep or not head or not tail:
            return None
        return TraceContext(trace_id=head, span_id=tail)


@dataclass
class Span:
    """One timed operation inside a trace."""

    context: TraceContext
    name: str
    island: str = ""
    kind: str = "internal"
    parent_id: str = ""
    start: float = 0.0
    end: float | None = None
    status: str = "ok"
    error: str = ""
    attributes: dict[str, Any] = field(default_factory=dict)
    #: Timestamped events inside the span: ``[{"time": t, "message": m}]``.
    annotations: list[dict[str, Any]] = field(default_factory=list)
    _tracer: "Tracer | None" = field(default=None, repr=False, compare=False)

    #: Real spans record; :data:`NULL_SPAN` reports False so callers can
    #: skip building expensive labels.
    recording = True

    @property
    def trace_id(self) -> str:
        return self.context.trace_id

    @property
    def span_id(self) -> str:
        return self.context.span_id

    @property
    def duration(self) -> float | None:
        return None if self.end is None else self.end - self.start

    def set_attribute(self, key: str, value: Any) -> "Span":
        self.attributes[key] = value
        return self

    def annotate(self, message: str) -> "Span":
        """Record a timestamped event (stamped from the tracer's clock)."""
        now = self._tracer.now if self._tracer is not None else self.start
        self.annotations.append({"time": now, "message": message})
        return self

    def finish(self, error: BaseException | None = None) -> "Span":
        """End the span at the current virtual time.  Idempotent: a second
        call leaves the first end time in place."""
        if self.end is None:
            self.end = self._tracer.now if self._tracer is not None else self.start
            if error is not None:
                self.status = "error"
                self.error = f"{type(error).__name__}: {error}"
            if self._tracer is not None:
                self._tracer._notify_finish(self)
        return self

    def to_record(self) -> dict[str, Any]:
        """The JSONL export record (plain JSON types only)."""
        return {
            "trace_id": self.context.trace_id,
            "span_id": self.context.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "island": self.island,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "error": self.error,
            "attributes": self.attributes,
            "annotations": self.annotations,
        }


class _NullSpan(Span):
    """The do-nothing span handed out by a disabled tracer."""

    recording = False

    def __init__(self) -> None:
        super().__init__(context=TraceContext("", ""), name="")

    def set_attribute(self, key: str, value: Any) -> "Span":
        return self

    def annotate(self, message: str) -> "Span":
        return self

    def finish(self, error: BaseException | None = None) -> "Span":
        return self


#: Shared no-op span: every mutator is a no-op, ``recording`` is False.
NULL_SPAN = _NullSpan()


@contextmanager
def _null_activation() -> Iterator[None]:
    yield


class Tracer:
    """Creates, activates and retains spans for one simulation.

    One tracer is shared by every island in a home (they share the
    :class:`~repro.net.simkernel.Simulator` too), which is what makes a
    bridged call a *single* trace spanning islands.
    """

    enabled = True

    def __init__(self, sim: Any, max_spans: int = 100_000) -> None:
        #: Anything with a ``now`` attribute (normally the Simulator).
        self.sim = sim
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self.spans_dropped = 0
        self._trace_seq = 0
        self._span_seq = 0
        self._active: list[Span] = []
        self._finish_listeners: list[Any] = []

    @property
    def now(self) -> float:
        return self.sim.now

    # -- span creation ------------------------------------------------------

    def start_span(
        self,
        name: str,
        *,
        island: str = "",
        kind: str = "internal",
        parent: "Span | TraceContext | None" = None,
    ) -> Span:
        """Open a span.

        ``parent`` may be a :class:`Span`, a :class:`TraceContext` (e.g.
        parsed from an ``X-Trace`` header), or None — in which case the
        ambient active span (if any) is the parent, and failing that a
        fresh trace is started.
        """
        if parent is None:
            parent = self.current()
        if isinstance(parent, Span):
            parent = None if parent.context.trace_id == "" else parent.context
        if parent is None:
            self._trace_seq += 1
            trace_id = f"t{self._trace_seq:06d}"
            parent_id = ""
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        self._span_seq += 1
        span = Span(
            context=TraceContext(trace_id, f"s{self._span_seq:06d}"),
            name=name,
            island=island,
            kind=kind,
            parent_id=parent_id,
            start=self.now,
            _tracer=self,
        )
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            self.spans_dropped += 1
        return span

    def add_finish_listener(self, listener: Any) -> None:
        """``listener(span)`` on every first :meth:`Span.finish` — the
        flight recorder's feed.  Listeners must not start or finish spans."""
        self._finish_listeners.append(listener)

    def _notify_finish(self, span: Span) -> None:
        for listener in self._finish_listeners:
            listener(span)

    # -- ambient activation --------------------------------------------------

    def current(self) -> Span | None:
        """The innermost active span, or None."""
        return self._active[-1] if self._active else None

    def current_context(self) -> TraceContext | None:
        span = self.current()
        return None if span is None else span.context

    def activate(self, span: Span):
        """Context manager making ``span`` the ambient parent for spans
        created inside the ``with`` block (synchronous callees only —
        callbacks scheduled for later must carry the context explicitly)."""
        if not span.recording:
            return _null_activation()
        return self._activation(span)

    @contextmanager
    def _activation(self, span: Span) -> Iterator[Span]:
        self._active.append(span)
        try:
            yield span
        finally:
            self._active.pop()

    # -- export --------------------------------------------------------------

    def spans_for(self, trace_id: str) -> list[Span]:
        return [span for span in self.spans if span.trace_id == trace_id]

    def open_spans(self) -> list[Span]:
        """Retained spans never finished.  After a run has fully quiesced
        every started span must be finished (the testkit's span oracle);
        mid-run this simply lists what is currently in progress."""
        return [span for span in self.spans if span.end is None]

    def trace_ids(self) -> list[str]:
        """Distinct trace ids in first-seen order."""
        seen: dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def export_jsonl(self, trace_id: str | None = None) -> str:
        """One JSON object per line, creation order, sorted keys —
        byte-identical across identical runs."""
        spans = self.spans if trace_id is None else self.spans_for(trace_id)
        return "".join(
            json.dumps(span.to_record(), sort_keys=True, separators=(",", ":")) + "\n"
            for span in spans
        )

    def write_jsonl(self, path: str, trace_id: str | None = None) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.export_jsonl(trace_id))
        return path

    def reset(self) -> None:
        """Drop retained spans (id counters keep running so ids stay
        unique within the tracer's lifetime)."""
        self.spans.clear()
        self.spans_dropped = 0


class NullTracer:
    """The zero-cost default: no spans, no state, ``enabled`` False."""

    enabled = False
    spans: tuple = ()
    spans_dropped = 0

    @property
    def now(self) -> float:
        return 0.0

    def start_span(self, name: str, **kwargs: Any) -> Span:
        return NULL_SPAN

    def current(self) -> Span | None:
        return None

    def current_context(self) -> TraceContext | None:
        return None

    def activate(self, span: Span):
        return _null_activation()

    def spans_for(self, trace_id: str) -> list[Span]:
        return []

    def open_spans(self) -> list[Span]:
        return []

    def trace_ids(self) -> list[str]:
        return []

    def export_jsonl(self, trace_id: str | None = None) -> str:
        return ""

    def reset(self) -> None:
        pass


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _fmt_ms(seconds: float | None) -> str:
    return "?" if seconds is None else f"{seconds * 1000:.2f}ms"


def render_trace_tree(
    spans: "Iterable[Span] | Tracer", trace_id: str | None = None
) -> str:
    """Render one trace (or every trace) as an indented text tree.

    Each line shows the span name, the island it ran on in brackets, its
    duration, and any annotations indented beneath it.  Orphan spans
    (parent not exported) render as roots.
    """
    if isinstance(spans, (Tracer, NullTracer)):
        spans = list(spans.spans)
    else:
        spans = list(spans)
    if trace_id is not None:
        spans = [span for span in spans if span.trace_id == trace_id]
    if not spans:
        return "(no spans)"

    by_trace: dict[str, list[Span]] = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)

    lines: list[str] = []
    for tid, members in by_trace.items():
        ids = {span.span_id for span in members}
        children: dict[str, list[Span]] = {}
        roots: list[Span] = []
        for span in members:  # creation order == start order per parent
            if span.parent_id and span.parent_id in ids:
                children.setdefault(span.parent_id, []).append(span)
            else:
                roots.append(span)
        islands = sorted({span.island for span in members if span.island})
        total = max(
            (span.end for span in members if span.end is not None),
            default=None,
        )
        start = min(span.start for span in members)
        header = f"trace {tid} — {len(members)} span(s)"
        if islands:
            header += f", islands: {', '.join(islands)}"
        if total is not None:
            header += f", {_fmt_ms(total - start)}"
        lines.append(header)

        def walk(span: Span, prefix: str, is_last: bool) -> None:
            branch = "└─" if is_last else "├─"
            island = f" [{span.island}]" if span.island else ""
            status = "" if span.status == "ok" else f" !{span.status}: {span.error}"
            lines.append(
                f"{prefix}{branch} {span.name}{island} {_fmt_ms(span.duration)}{status}"
            )
            child_prefix = prefix + ("   " if is_last else "│  ")
            kids = children.get(span.span_id, [])
            for note in span.annotations:
                lines.append(
                    f"{child_prefix}{'│  ' if kids else '   '}@{note['time']:.3f}s "
                    f"{note['message']}"
                )
            for index, kid in enumerate(kids):
                walk(kid, child_prefix, index == len(kids) - 1)

        for index, root in enumerate(roots):
            walk(root, "", index == len(roots) - 1)
    return "\n".join(lines)
