"""Health and SLO scoring over streamed telemetry windows.

The federation collector (:mod:`repro.obs.telemetry`) merges per-island
delta reports; this module turns a rolling virtual-time window of those
deltas into one verdict per island — ``healthy`` / ``degraded`` /
``unhealthy`` — plus the SLO numbers behind it (call success rate,
bucket-interpolated p50/p99 latency, breaker-open and channel-fallback
counts).  Everything here is pure arithmetic over counter increments:
no clocks, no randomness, no I/O, so identical windows always score
identically.

The latency quantiles come from the registry's fixed-bucket histograms
(:data:`repro.obs.metrics.DEFAULT_BUCKETS`): the flattened snapshot keys
(``<name>.le_<bound>`` / ``<name>.overflow``) are self-describing, so
:func:`quantile_from_buckets` reconstructs the bounds from the key names
and interpolates linearly inside the bucket holding the requested rank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

#: Status levels in increasing severity; the score keeps the worst one.
HEALTHY = "healthy"
DEGRADED = "degraded"
UNHEALTHY = "unhealthy"

STATUS_LEVEL = {HEALTHY: 0, DEGRADED: 1, UNHEALTHY: 2}


@dataclass(frozen=True)
class HealthPolicy:
    """Scoring knobs for one federation collector.

    The defaults are deliberately forgiving: a single failed call in a
    small window must not flap an island to ``degraded``, so rate
    thresholds only apply once ``min_samples`` attempts landed in the
    window.
    """

    #: Rolling window (virtual seconds) of delta reports per island.
    window: float = 60.0
    #: Attempts required in the window before success rates are judged.
    min_samples: int = 3
    #: Below this in-window success rate the island is ``degraded``.
    degraded_success_rate: float = 0.9
    #: Below this in-window success rate the island is ``unhealthy``.
    unhealthy_success_rate: float = 0.5
    #: Report staleness beyond ``stale_after_reports`` times the agent's
    #: interval marks the island ``unhealthy`` (its telemetry went dark).
    stale_after_reports: float = 2.5
    #: p99 call latency (virtual seconds) above this degrades the island.
    slo_p99: float = 5.0


def quantile_from_buckets(
    buckets: Mapping[float, float], overflow: float, q: float
) -> float | None:
    """Interpolated quantile from fixed-bucket counts.

    ``buckets`` maps each upper bound to the count of observations at or
    below it (per-bucket counts, not cumulative); ``overflow`` counts
    observations above the last bound.  Returns None on an empty
    histogram.  Observations in the overflow bucket report the last
    finite bound — a deliberate *lower* bound on the true quantile, so an
    SLO breach is never manufactured out of bucket shape alone.
    """
    bounds = sorted(buckets)
    total = sum(buckets[bound] for bound in bounds) + overflow
    if total <= 0:
        return None
    rank = q * total
    cumulative = 0.0
    lower = 0.0
    for bound in bounds:
        count = buckets[bound]
        if count and cumulative + count >= rank:
            fraction = (rank - cumulative) / count
            return lower + (bound - lower) * fraction
        cumulative += count
        if count:
            lower = bound
    # Clamp at the histogram's resolution rather than inventing a tail.
    return bounds[-1] if bounds else None


def latency_quantiles(
    counters: Mapping[str, float], name: str, quantiles: tuple[float, ...] = (0.5, 0.99)
) -> dict[str, float | None]:
    """Extract ``p50``/``p99``-style quantiles for one flattened histogram.

    ``counters`` holds flattened registry keys; ``name`` is the histogram
    prefix (e.g. ``vsg.jini0.call_latency``).  The bucket bounds are
    parsed back out of the ``<name>.le_<bound>`` key names.
    """
    prefix = f"{name}.le_"
    buckets: dict[float, float] = {}
    for key, value in counters.items():
        if key.startswith(prefix):
            try:
                buckets[float(key[len(prefix):])] = value
            except ValueError:
                continue
    overflow = counters.get(f"{name}.overflow", 0)
    return {
        f"p{int(q * 100)}": quantile_from_buckets(buckets, overflow, q)
        for q in quantiles
    }


def window_slo(island: str, counters: Mapping[str, float]) -> dict[str, Any]:
    """SLO inputs for one island from its in-window counter increments."""
    attempts = counters.get(f"resilience.{island}.attempts", 0)
    successes = counters.get(f"resilience.{island}.successes", 0)
    breaker_opens = sum(
        value
        for key, value in counters.items()
        if key.startswith(f"resilience.{island}.breaker.") and key.endswith(".to_open")
    )
    summary: dict[str, Any] = {
        "attempts": attempts,
        "successes": successes,
        "success_rate": (successes / attempts) if attempts else None,
        "breaker_opens": breaker_opens,
        "channel_deaths": counters.get(f"events.{island}.channel_deaths", 0),
    }
    summary.update(latency_quantiles(counters, f"vsg.{island}.call_latency"))
    return summary


def score_island(
    policy: HealthPolicy,
    island: str,
    window_counters: Mapping[str, float],
    *,
    staleness: float | None = None,
    report_interval: float = 0.0,
    heartbeat_dead: bool = False,
    breaker_state: str | None = None,
) -> dict[str, Any]:
    """Score one island: the SLO numbers plus a status and its reasons.

    ``staleness`` is virtual seconds since the island's freshest applied
    report; ``heartbeat_dead`` / ``breaker_state`` feed the collector
    host's view from :mod:`repro.core.resilience` — a dead heartbeat or
    an open breaker condemns the island regardless of what its last
    (stale) numbers claimed.
    """
    slo = window_slo(island, window_counters)
    reasons: list[str] = []
    status = HEALTHY

    def worsen(new_status: str, reason: str) -> None:
        nonlocal status
        reasons.append(reason)
        if STATUS_LEVEL[new_status] > STATUS_LEVEL[status]:
            status = new_status

    if heartbeat_dead:
        worsen(UNHEALTHY, "heartbeat-dead")
    if breaker_state == "open":
        worsen(UNHEALTHY, "breaker-open")
    elif breaker_state == "half-open":
        worsen(DEGRADED, "breaker-probing")
    if (
        staleness is not None
        and report_interval > 0
        and staleness > policy.stale_after_reports * report_interval
    ):
        worsen(UNHEALTHY, "telemetry-stale")
    rate = slo["success_rate"]
    if rate is not None and slo["attempts"] >= policy.min_samples:
        if rate < policy.unhealthy_success_rate:
            worsen(UNHEALTHY, "success-rate")
        elif rate < policy.degraded_success_rate:
            worsen(DEGRADED, "success-rate")
    if slo["breaker_opens"]:
        worsen(DEGRADED, "breaker-opened")
    if slo["channel_deaths"]:
        worsen(DEGRADED, "channel-fallback")
    p99 = slo.get("p99")
    if p99 is not None and p99 > policy.slo_p99:
        worsen(DEGRADED, "slo-p99")

    slo["status"] = status
    slo["reasons"] = reasons
    slo["staleness"] = staleness
    return slo


def score_replica(
    policy: HealthPolicy,
    replica: str,
    *,
    convergence_lag: float,
    sync_interval: float,
    peers: int,
    alive: bool = True,
) -> dict[str, Any]:
    """Score one directory shard replica (:mod:`repro.core.shard`).

    ``convergence_lag`` is virtual seconds since the replica's
    anti-entropy agent last observed (or produced) a converged digest;
    the yardstick is one full gossip cycle — ``sync_interval`` per peer,
    round-robin, so ``sync_interval * peers`` seconds visits everyone.
    A lag past one cycle means the replica is chasing deltas
    (``degraded``); past ``stale_after_reports`` cycles its view of the
    shard can no longer be trusted for reads (``unhealthy``) — the same
    multiplier staleness uses for islands, applied to gossip rounds.
    """
    reasons: list[str] = []
    status = HEALTHY

    def worsen(new_status: str, reason: str) -> None:
        nonlocal status
        reasons.append(reason)
        if STATUS_LEVEL[new_status] > STATUS_LEVEL[status]:
            status = new_status

    cycle = sync_interval * max(1, peers)
    if not alive:
        worsen(UNHEALTHY, "replica-down")
    if cycle > 0 and peers > 0:
        if convergence_lag > policy.stale_after_reports * cycle:
            worsen(UNHEALTHY, "unconverged")
        elif convergence_lag > cycle:
            worsen(DEGRADED, "converging")
    return {
        "replica": replica,
        "status": status,
        "reasons": reasons,
        "convergence_lag": convergence_lag,
        "gossip_cycle": cycle,
    }
