"""Deterministic metrics: named counters, gauges and fixed-bucket histograms.

The registry is the numeric side of ``repro.obs``: while spans answer
"where did *this* call spend its time", metrics answer "how often and how
much, in aggregate" — per-island call counts and latency, breaker state
transitions, VSR cache behaviour, connection-pool churn, event batching.

Design points:

- **Deterministic.**  No wall-clock, no sampling, no locks (the simulation
  is single-threaded).  Histograms use fixed upper bounds supplied at
  creation, so a snapshot of two identical runs is byte-identical.
- **Cheap handles.**  Components look up their instruments once at
  construction (``self._m_calls = metrics.counter("vsg.jini.calls_out")``)
  and then pay one method call per event.  Repeated ``counter(name)``
  calls return the same object.
- **Zero cost when disabled.**  :class:`NullMetrics` hands out one shared
  no-op instrument for every name; recording on it is a no-op method call
  and the registry keeps no state.
"""

from __future__ import annotations

import json
from typing import Any, Iterable


class Counter:
    """Monotonically increasing count of events."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> Any:
        return self.value


class Gauge:
    """A value that can move both ways (pool size, breaker state)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def snapshot(self) -> Any:
        return self.value


#: Default histogram bounds, tuned for virtual-time latencies (seconds):
#: sub-millisecond native calls up through multi-second degraded bridged
#: calls land in distinct buckets.
DEFAULT_BUCKETS = (0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0)


class Histogram:
    """Fixed-bucket histogram: counts per upper bound plus count/sum/min/max.

    Bounds are fixed at creation, so the shape of the snapshot never
    depends on the data — a requirement for byte-identical exports.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, name: str, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.bounds = tuple(sorted(buckets))
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # +1 = overflow
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    def snapshot(self) -> Any:
        """Flat dict so the registry snapshot stays one level deep."""
        flat: dict[str, Any] = {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }
        for bound, count in zip(self.bounds, self.bucket_counts):
            flat[f"le_{bound}"] = count
        flat["overflow"] = self.bucket_counts[-1]
        return flat

    def reset(self) -> None:
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None


class MetricsRegistry:
    """Process-wide named instruments with a deterministic snapshot."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, buckets: Iterable[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, buckets)
        elif tuple(sorted(buckets)) != instrument.bounds:
            # A silent mismatch would put observations in a differently
            # shaped histogram than the caller expects.
            raise ValueError(
                f"histogram {name!r} already registered with bounds "
                f"{instrument.bounds}"
            )
        return instrument

    def snapshot(self) -> dict[str, Any]:
        """Name-sorted flat dict of every instrument's value (histograms
        flatten to ``name.count`` / ``name.sum`` / ``name.le_<bound>`` ...)."""
        merged: dict[str, Any] = {}
        for store in (self._counters, self._gauges):
            for name, instrument in store.items():
                merged[name] = instrument.snapshot()
        for name, histogram in self._histograms.items():
            for key, value in histogram.snapshot().items():
                merged[f"{name}.{key}"] = value
        return {name: merged[name] for name in sorted(merged)}

    def snapshot_typed(self) -> tuple[dict[str, Any], dict[str, Any]]:
        """The flat snapshot split by merge semantics: ``(monotonic, level)``.

        *Monotonic* values only ever grow — counters, histogram
        ``count``/``sum``/``le_*``/``overflow`` — so a consumer can ship
        them as increments and re-sum them idempotently (the telemetry
        plane's delta encoding).  *Level* values move both ways or are
        extremes — gauges, histogram ``min``/``max`` — and must be shipped
        absolute.  Both halves are name-sorted; ``None`` min/max of empty
        histograms are included so the union matches :meth:`snapshot`.
        """
        monotonic: dict[str, Any] = {}
        level: dict[str, Any] = {}
        for name, counter in self._counters.items():
            monotonic[name] = counter.snapshot()
        for name, gauge in self._gauges.items():
            level[name] = gauge.snapshot()
        for name, histogram in self._histograms.items():
            for key, value in histogram.snapshot().items():
                if key in ("min", "max"):
                    level[f"{name}.{key}"] = value
                else:
                    monotonic[f"{name}.{key}"] = value
        return (
            {name: monotonic[name] for name in sorted(monotonic)},
            {name: level[name] for name in sorted(level)},
        )

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), sort_keys=True, indent=2)

    def reset(self) -> None:
        """Zero every instrument *in place* — components cache instrument
        handles at construction, so the objects must stay live."""
        for counter in self._counters.values():
            counter.value = 0
        for gauge in self._gauges.values():
            gauge.value = 0.0
        for histogram in self._histograms.values():
            histogram.reset()


class _NullInstrument:
    """One object that can stand in for Counter, Gauge and Histogram."""

    __slots__ = ()
    name = ""
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def snapshot(self) -> Any:
        return 0


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """Disabled registry: every lookup returns the shared no-op instrument."""

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets: Iterable[float] = ()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> dict[str, Any]:
        return {}

    def snapshot_typed(self) -> tuple[dict[str, Any], dict[str, Any]]:
        return {}, {}

    def to_json(self) -> str:
        return "{}"

    def reset(self) -> None:
        pass
