"""repro.obs — cross-island tracing and metrics for the meta-middleware.

The framework's central claim is that a call can cross middleware islands
transparently; this package makes the cost of that transparency visible.
One :class:`Observability` object per simulation bundles:

- a :class:`~repro.obs.trace.Tracer` that turns a bridged call into a
  single span tree spanning both islands (context crosses the interchange
  in the ``X-Trace`` HTTP header), and
- a :class:`~repro.obs.metrics.MetricsRegistry` of deterministic counters,
  gauges and histograms fed by the VSG, VSR client, resilience layer,
  HTTP pool and event router.

Everything defaults to :data:`NOOP_OBS` — null tracer, null metrics —
so the instrumented hot paths cost one attribute check when observability
is off, and the wire format is untouched (no ``X-Trace`` header is added).

Typical use::

    from repro.obs import Observability
    obs = Observability(sim)
    home = build_smart_home(sim=sim, obs=obs)
    ...
    print(render_trace_tree(obs.tracer))
    print(obs.metrics.to_json())

See ``docs/OBSERVABILITY.md`` for the trace model and metric catalogue.
"""

from __future__ import annotations

from typing import Any

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
)
from repro.obs.trace import (
    NULL_SPAN,
    TRACE_HEADER,
    NullTracer,
    Span,
    TraceContext,
    Tracer,
    render_trace_tree,
)
from repro.obs.export import (
    snapshot_to_json,
    snapshot_with_traffic,
    spans_to_jsonl,
    write_spans_jsonl,
)
from repro.obs.health import (
    DEGRADED,
    HEALTHY,
    UNHEALTHY,
    HealthPolicy,
    quantile_from_buckets,
    score_island,
)
from repro.obs.flight import FlightRecorder
from repro.obs.telemetry import (
    TELEMETRY_TOPIC_PREFIX,
    TelemetryAgent,
    TelemetryCollector,
)


class Observability:
    """Bundle of one tracer + one metrics registry for a simulation."""

    enabled = True

    def __init__(self, sim: Any, max_spans: int = 100_000) -> None:
        self.tracer = Tracer(sim, max_spans=max_spans)
        self.metrics = MetricsRegistry()


class _NoopObservability:
    """The default: observability off, everything a no-op."""

    enabled = False

    def __init__(self) -> None:
        self.tracer = NullTracer()
        self.metrics = NullMetrics()


#: Shared disabled singleton — the default ``obs`` everywhere.
NOOP_OBS = _NoopObservability()

__all__ = [
    "Observability",
    "NOOP_OBS",
    "Tracer",
    "NullTracer",
    "Span",
    "TraceContext",
    "TRACE_HEADER",
    "NULL_SPAN",
    "render_trace_tree",
    "MetricsRegistry",
    "NullMetrics",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "spans_to_jsonl",
    "write_spans_jsonl",
    "snapshot_with_traffic",
    "snapshot_to_json",
    "TelemetryAgent",
    "TelemetryCollector",
    "TELEMETRY_TOPIC_PREFIX",
    "HealthPolicy",
    "HEALTHY",
    "DEGRADED",
    "UNHEALTHY",
    "score_island",
    "quantile_from_buckets",
    "FlightRecorder",
]
