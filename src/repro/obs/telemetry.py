"""Live federation telemetry: streamed metric deltas + a merging collector.

PR 3's ``repro.obs`` answers questions inside one process after the run;
this module makes the *federation* observable while it is live.  Two
halves:

- :class:`TelemetryAgent` — mounted on a gateway, it periodically emits a
  delta-encoded, sequence-numbered report of its island's slice of the
  shared :class:`~repro.obs.metrics.MetricsRegistry` (plus its node's
  :meth:`Reactor.stats() <repro.net.reactor.Reactor.stats>` and optional
  :class:`~repro.net.monitor.TrafficMonitor` tallies) as an
  ``obs.telemetry.<island>`` event.  Reports ride the ordinary event
  interchange — streamed push channels where negotiated, polling
  otherwise — so telemetry needs no side channel and inherits the event
  plane's resilience.
- :class:`TelemetryCollector` — mountable on any gateway, it subscribes
  to ``obs.telemetry.*`` and merges every island's reports into one
  deterministic federation snapshot, scoring health per island
  (:mod:`repro.obs.health`) against the host gateway's own heartbeat and
  breaker state.

Delta discipline (what makes the merge safe under the event plane's
at-least-once delivery):

- **Counters ship as increments** since the agent's previous report, so
  merging is a commutative sum: reordered reports converge to the same
  totals.  Duplicated reports are dropped by sequence number before they
  are applied, so redelivery cannot double-count.
- **Gauges ship as absolute values** and the collector keeps the ones
  from the highest sequence number seen, so a stale reordered report can
  never overwrite fresher levels.
- **Determinism**: float increments are folded in *sequence* order (not
  arrival order) — contiguously applied reports fold into a base, the
  out-of-order tail folds at read time — so the federation snapshot is
  byte-identical however the wire reordered or duplicated the reports
  (pinned by tests/obs/test_telemetry.py).

Schedule discipline: ticks run on the drift-free closed form
``epoch + n * interval`` (the PR 6 rule-schedule contract) — the next
tick is computed from the tick count, never from "now + interval", so
load cannot drift the cadence.
"""

from __future__ import annotations

import json
from typing import Any, Callable

from repro.obs.health import STATUS_LEVEL, HealthPolicy, score_island, score_replica

#: Telemetry reports publish under ``obs.telemetry.<island>``; the
#: collector subscribes to the prefix pattern.
TELEMETRY_TOPIC_PREFIX = "obs.telemetry."

#: Report schema version (future agents may extend the payload).
REPORT_VERSION = 1


class TelemetryAgent:
    """Streams one island's metric deltas on a drift-free schedule."""

    def __init__(
        self,
        vsg: Any,
        monitor: Any = None,
        interval: float = 5.0,
        enabled: bool = True,
    ) -> None:
        self.vsg = vsg
        self.sim = vsg.sim
        self.island = vsg.island
        self.monitor = monitor
        self.interval = interval
        #: A disabled agent is pure wiring: no subscription, no ticks, no
        #: publishes — the C12 benchmark pins it wire-byte-identical to no
        #: agent at all.
        self.enabled = enabled
        self.seq = 0
        self.reports_emitted = 0
        self._last_monotonic: dict[str, float] = {}
        #: Cumulative increments ever shipped, per counter — the testkit's
        #: telemetry oracle checks the collector never exceeds these.
        self.emitted_totals: dict[str, float] = {}
        self._epoch = 0.0
        self._ticks = 0
        self._timer: Any = None
        self._running = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Begin ticking: occurrence ``n`` fires at ``epoch + n*interval``
        (n >= 1), each instant computed from the closed form."""
        if self._running or not self.enabled or self.interval <= 0:
            return
        self._running = True
        self._epoch = self.sim.now
        self._ticks = 0
        self._schedule_next()

    def stop(self) -> None:
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def occurrence(self, n: int) -> float:
        """Closed-form due instant of the ``n``-th report (1-based)."""
        return self._epoch + n * self.interval

    def _schedule_next(self) -> None:
        due = self.occurrence(self._ticks + 1)
        self._timer = self.sim.schedule(due - self.sim.now, self._tick)

    def _tick(self) -> None:
        if not self._running:
            return
        self._ticks += 1
        self.emit()
        self._schedule_next()

    # -- report construction -------------------------------------------------

    def _in_scope(self, name: str) -> bool:
        """This island's metrics: the island name as a dotted component
        (``vsg.jini0.calls_out``, ``http.jini0.vsr.requests``, ...)."""
        return self.island in name.split(".")

    def collect(self) -> tuple[dict[str, float], dict[str, float]]:
        """Absolute ``(monotonic, level)`` values in this agent's scope."""
        monotonic: dict[str, float] = {}
        level: dict[str, float] = {}
        metrics = self.vsg.obs.metrics
        if getattr(metrics, "enabled", False):
            mono_all, level_all = metrics.snapshot_typed()
            for name, value in mono_all.items():
                if self._in_scope(name):
                    monotonic[name] = value
            for name, value in level_all.items():
                if value is not None and self._in_scope(name):
                    level[name] = value
        reactor = getattr(getattr(self.vsg, "stack", None), "reactor", None)
        if reactor is not None:
            for key, value in reactor.stats().items():
                full = f"reactor.{self.island}.{key}"
                # ``parked`` is a live depth; everything else accumulates.
                if key == "parked":
                    level[full] = value
                else:
                    monotonic[full] = value
        if self.monitor is not None:
            prefix = f"traffic.{self.monitor.name}"
            for protocol, stats in sorted(self.monitor.stats.items()):
                monotonic[f"{prefix}.{protocol}.frames"] = stats.frames
                monotonic[f"{prefix}.{protocol}.bytes"] = stats.bytes
            monotonic[f"{prefix}.trace_dropped"] = self.monitor.trace_dropped
            monotonic[f"{prefix}.frames_coalesced"] = self.monitor.frames_coalesced
        return monotonic, level

    def build_report(self) -> dict[str, Any]:
        """Next delta report (advances the sequence and the delta base)."""
        monotonic, level = self.collect()
        deltas: dict[str, float] = {}
        for name in sorted(monotonic):
            value = monotonic[name]
            increment = value - self._last_monotonic.get(name, 0)
            if increment:
                deltas[name] = increment
                self._last_monotonic[name] = value
                self.emitted_totals[name] = (
                    self.emitted_totals.get(name, 0) + increment
                )
        self.seq += 1
        return {
            "v": REPORT_VERSION,
            "island": self.island,
            "seq": self.seq,
            "time": self.sim.now,
            "interval": self.interval,
            "counters": deltas,
            "gauges": {name: level[name] for name in sorted(level)},
        }

    def emit(self) -> dict[str, Any] | None:
        """Build and publish one report (even an empty delta: the report
        itself is the island's telemetry heartbeat)."""
        if not self.enabled:
            return None
        report = self.build_report()
        self.reports_emitted += 1
        self.vsg.publish_event(TELEMETRY_TOPIC_PREFIX + self.island, report)
        return report


class _IslandView:
    """Merged telemetry state for one reporting island."""

    __slots__ = (
        "island",
        "base",
        "floor",
        "pending",
        "max_seq",
        "gauges",
        "gauge_seq",
        "last_time",
        "interval",
        "duplicates",
        "window",
    )

    def __init__(self, island: str) -> None:
        self.island = island
        #: Counters folded from the contiguous prefix of sequences
        #: (1..floor), folded strictly in sequence order.
        self.base: dict[str, float] = {}
        self.floor = 0
        #: Out-of-order tail: seq -> counter increments, not yet folded.
        self.pending: dict[int, dict[str, float]] = {}
        self.max_seq = 0
        self.gauges: dict[str, float] = {}
        self.gauge_seq = 0
        #: Freshest report timestamp applied (staleness is measured from
        #: this, never from arrival time).
        self.last_time = 0.0
        self.interval = 0.0
        self.duplicates = 0
        #: Rolling window entries for health scoring: (seq, time, deltas).
        self.window: list[tuple[int, float, dict[str, float]]] = []

    @property
    def reports_applied(self) -> int:
        return self.floor + len(self.pending)

    def seen(self, seq: int) -> bool:
        return seq <= self.floor or seq in self.pending

    def apply(self, seq: int, counters: dict[str, float]) -> None:
        self.pending[seq] = counters
        while self.floor + 1 in self.pending:
            self.floor += 1
            for name, increment in sorted(self.pending.pop(self.floor).items()):
                self.base[name] = self.base.get(name, 0) + increment

    def totals(self) -> dict[str, float]:
        """Cumulative counters, folded in sequence order regardless of
        arrival order — the determinism the merge promises."""
        merged = dict(self.base)
        for seq in sorted(self.pending):
            for name, increment in sorted(self.pending[seq].items()):
                merged[name] = merged.get(name, 0) + increment
        return merged

    def window_counters(self, horizon: float) -> dict[str, float]:
        """In-window increments folded in sequence order."""
        merged: dict[str, float] = {}
        for seq, time, deltas in sorted(self.window):
            if time >= horizon:
                for name, increment in sorted(deltas.items()):
                    merged[name] = merged.get(name, 0) + increment
        return merged

    def prune_window(self, horizon: float) -> None:
        self.window = [entry for entry in self.window if entry[1] >= horizon]


class TelemetryCollector:
    """Merges per-island telemetry into one federation view.

    Mount on any gateway: :meth:`mount` subscribes to the telemetry topic
    prefix everywhere (so reports stream in over push channels where
    negotiated).  Health transitions are exported live — a gauge
    ``telemetry.<host>.health.<island>`` (0 healthy / 1 degraded / 2
    unhealthy) and, when tracing is on, a ``telemetry.health`` span per
    transition — and the full federation state is one deterministic
    :meth:`federation_snapshot` away.
    """

    def __init__(self, vsg: Any, policy: HealthPolicy | None = None) -> None:
        self.vsg = vsg
        self.sim = vsg.sim
        self.island = vsg.island
        self.policy = policy or HealthPolicy()
        self._views: dict[str, _IslandView] = {}
        self.reports_applied = 0
        self.duplicates_dropped = 0
        self.malformed_dropped = 0
        self._statuses: dict[str, str] = {}
        #: The sharded directory plane, when attached — folded into
        #: :meth:`federation_snapshot` with per-replica health verdicts.
        self._vsr_federation: Any = None
        #: Health transitions in occurrence order:
        #: ``{"island", "from", "to", "time", "reasons"}``.
        self.transitions: list[dict[str, Any]] = []
        self._listeners: list[Callable[[str, str, str], None]] = []
        # Live cross-references into the host gateway's resilience layer:
        # a heartbeat death or breaker trip re-scores the island at once,
        # without waiting for (absent) telemetry to go stale.
        heartbeat_add = getattr(getattr(vsg, "heartbeat", None), "add_listener", None)
        if heartbeat_add is not None:
            heartbeat_add(lambda island, alive, record: self._rescore(island))
        resilience = getattr(vsg, "resilience", None)
        if resilience is not None:
            resilience.add_transition_listener(
                lambda island, old, new: self._rescore(island)
            )

    # -- wiring --------------------------------------------------------------

    def mount(self) -> Any:
        """Subscribe to ``obs.telemetry.*`` everywhere; resolves to the
        number of remote gateways that accepted the announcement."""
        # Imported here: repro.core.vsg itself imports repro.obs.
        from repro.core.vsg import FullEventCallback

        return self.vsg.subscribe(
            TELEMETRY_TOPIC_PREFIX + "*", FullEventCallback(self._on_event)
        )

    def attach_federation(self, federation: Any) -> "TelemetryCollector":
        """Fold a sharded directory plane
        (:class:`repro.core.shard.VsrFederation`) into this collector's
        federation view: :meth:`federation_snapshot` grows a
        ``vsr_federation`` section with per-shard convergence state and a
        health verdict per replica — a replica whose anti-entropy lag
        exceeds the policy's staleness multiplier of one gossip cycle
        scores ``unhealthy`` (see :func:`repro.obs.health.score_replica`).
        """
        self._vsr_federation = federation
        return self

    def vsr_federation_report(self) -> dict[str, Any]:
        """Shard/replica state + health for the attached directory plane
        (empty dict when none is attached)."""
        federation = self._vsr_federation
        if federation is None:
            return {}
        stats = federation.stats()
        sync_interval = federation.config.sync_interval
        for shard_entry in stats["per_shard"]:
            group = federation.replicas[shard_entry["shard"]]
            peers = len(group) - 1
            for entry in shard_entry["replicas"]:
                entry["health"] = score_replica(
                    self.policy,
                    entry["name"],
                    convergence_lag=float(entry.get("convergence_lag", 0.0)),
                    sync_interval=sync_interval,
                    peers=peers,
                    alive=bool(entry["alive"]),
                )
        return stats

    def add_listener(self, listener: Callable[[str, str, str], None]) -> None:
        """``listener(island, old_status, new_status)`` on every health
        transition the collector observes."""
        self._listeners.append(listener)

    def _on_event(self, event: dict[str, Any]) -> None:
        payload = event.get("payload")
        if not isinstance(payload, dict):
            self.malformed_dropped += 1
            return
        self.ingest(payload)

    # -- merging -------------------------------------------------------------

    def ingest(self, report: dict[str, Any]) -> bool:
        """Apply one delta report; False when dropped (duplicate/garbled).

        Safe to call with the same report any number of times and in any
        order: application is keyed by ``(island, seq)`` and counter
        folding is sequence-ordered, so the merged state converges.
        """
        try:
            island = str(report["island"])
            seq = int(report["seq"])
            counters = dict(report.get("counters") or {})
            gauges = dict(report.get("gauges") or {})
            time = float(report.get("time", 0.0))
        except (KeyError, TypeError, ValueError):
            self.malformed_dropped += 1
            return False
        if seq <= 0:
            self.malformed_dropped += 1
            return False
        view = self._views.setdefault(island, _IslandView(island))
        if view.seen(seq):
            view.duplicates += 1
            self.duplicates_dropped += 1
            return False
        view.apply(seq, counters)
        view.max_seq = max(view.max_seq, seq)
        view.last_time = max(view.last_time, time)
        interval = float(report.get("interval", 0.0) or 0.0)
        if interval > 0:
            view.interval = interval
        if gauges and seq >= view.gauge_seq:
            view.gauge_seq = seq
            view.gauges = gauges
        view.window.append((seq, time, counters))
        view.prune_window(view.last_time - self.policy.window)
        self.reports_applied += 1
        self._rescore(island)
        return True

    # -- health --------------------------------------------------------------

    def _resilience_view(self, island: str) -> tuple[bool, str | None]:
        """(heartbeat_dead, breaker_state) as the host gateway sees them."""
        heartbeat = getattr(self.vsg, "heartbeat", None)
        record = heartbeat.health.get(island) if heartbeat is not None else None
        dead = record is not None and not record.alive
        resilience = getattr(self.vsg, "resilience", None)
        state = (
            resilience.breaker_state(island) if resilience is not None else None
        )
        return dead, state

    def status_for(self, island: str) -> dict[str, Any]:
        """Score one island right now (see :func:`repro.obs.health.score_island`)."""
        view = self._views.get(island)
        policy = self.policy
        if view is None:
            window_counters: dict[str, float] = {}
            staleness = None
            interval = 0.0
        else:
            window_counters = view.window_counters(view.last_time - policy.window)
            staleness = self.sim.now - view.last_time
            interval = view.interval
        dead, breaker_state = self._resilience_view(island)
        return score_island(
            policy,
            island,
            window_counters,
            staleness=staleness,
            report_interval=interval,
            heartbeat_dead=dead,
            breaker_state=breaker_state,
        )

    def status(self, island: str) -> str:
        return self.status_for(island)["status"]

    def _rescore(self, island: str) -> None:
        if island == self.island and island not in self._views:
            # The host's own breaker table includes islands it calls; only
            # score islands that actually report (plus resilience targets).
            return
        health = self.status_for(island)
        new = health["status"]
        old = self._statuses.get(island, "")
        if new == old:
            return
        self._statuses[island] = new
        metrics = self.vsg.obs.metrics
        metrics.gauge(f"telemetry.{self.island}.health.{island}").set(
            STATUS_LEVEL[new]
        )
        tracer = self.vsg.obs.tracer
        if tracer.enabled:
            span = tracer.start_span(
                f"telemetry.health {island}", island=self.island, kind="internal"
            )
            span.set_attribute("island", island)
            span.set_attribute("from", old or "unknown")
            span.set_attribute("to", new)
            for reason in health["reasons"]:
                span.annotate(reason)
            span.finish()
        self.transitions.append(
            {
                "island": island,
                "from": old or "unknown",
                "to": new,
                "time": self.sim.now,
                "reasons": list(health["reasons"]),
            }
        )
        for listener in list(self._listeners):
            listener(island, old, new)

    # -- read side -----------------------------------------------------------

    def islands(self) -> list[str]:
        return sorted(self._views)

    def island_totals(self, island: str) -> dict[str, float]:
        view = self._views.get(island)
        return view.totals() if view is not None else {}

    def island_max_seq(self, island: str) -> int:
        view = self._views.get(island)
        return view.max_seq if view is not None else 0

    def island_last_time(self, island: str) -> float:
        view = self._views.get(island)
        return view.last_time if view is not None else 0.0

    def federation_snapshot(self) -> dict[str, Any]:
        """One deterministic dict for the whole federation.

        Byte-identical (via :meth:`snapshot_json`) for any duplication or
        reordering of the same underlying reports: counters fold in
        sequence order, gauges come from the highest sequence, staleness
        from the freshest report timestamp.
        """
        islands: dict[str, Any] = {}
        for island in sorted(self._views):
            view = self._views[island]
            totals = view.totals()
            islands[island] = {
                "seq": view.max_seq,
                "reports": view.reports_applied,
                "time": view.last_time,
                "staleness": self.sim.now - view.last_time,
                "counters": {name: totals[name] for name in sorted(totals)},
                "gauges": {
                    name: view.gauges[name] for name in sorted(view.gauges)
                },
                "health": self.status_for(island),
            }
        snapshot: dict[str, Any] = {
            "collector": self.island,
            "time": self.sim.now,
            "islands": islands,
        }
        if self._vsr_federation is not None:
            snapshot["vsr_federation"] = self.vsr_federation_report()
        return snapshot

    def snapshot_json(self) -> str:
        return json.dumps(
            self.federation_snapshot(), sort_keys=True, separators=(",", ":")
        )

    def delivery_stats(self) -> dict[str, Any]:
        """Delivery-history diagnostics — deliberately OUTSIDE
        :meth:`federation_snapshot`: how many duplicates the wire replayed
        depends on delivery order, while the merged snapshot must not."""
        return {
            "reports_applied": self.reports_applied,
            "duplicates_dropped": self.duplicates_dropped,
            "malformed_dropped": self.malformed_dropped,
            "duplicates": {
                island: view.duplicates
                for island, view in sorted(self._views.items())
                if view.duplicates
            },
        }
