"""Per-node flight recorder: a bounded black box dumped on failure.

When a node crashes, a watchdog reaps a wedged exchange, or a testkit
oracle fails, the question is always "what was this node doing just
before?" — and by then the evidence is gone unless something was already
recording.  A :class:`FlightRecorder` is that something: a bounded ring
buffer of recent spans, wire frames, breaker transitions and rule
firings, fed by cheap listeners on the existing observability seams:

- :meth:`watch_tracer` — every finished span (via the tracer's
  finish listeners), filtered to this node's island;
- :meth:`watch_monitor` — every frame a :class:`TrafficMonitor`
  records (the monitor's ``frame_listeners`` configuration hook);
- :meth:`watch_breakers` — every circuit-breaker state transition
  (:meth:`~repro.core.resilience.ResilientExecutor.add_transition_listener`);
- :meth:`watch_engine` — every rule firing
  (:meth:`~repro.rules.engine.RuleEngine.add_firing_listener`).

Recording never touches the wire or the virtual clock: a run with
recorders installed is byte-identical to one without.  :meth:`trigger`
freezes the current ring into a dump — a plain, JSON-ready dict — and
:meth:`dump_json` renders it with sorted keys and compact separators, so
two identical runs produce byte-identical artifacts (the testkit ships
these next to shrunk repros).
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Callable

#: Ring capacity default: enough to cover several seconds of a busy node
#: without letting a pathological run hoard memory.
DEFAULT_CAPACITY = 256

#: Frozen dumps retained per recorder; later triggers past the cap only
#: bump ``triggers`` so a crash loop cannot balloon the artifact.
MAX_DUMPS = 8


class FlightRecorder:
    """Bounded ring buffer of recent events on one node."""

    def __init__(
        self,
        sim: Any,
        node: str = "",
        capacity: int = DEFAULT_CAPACITY,
        max_dumps: int = MAX_DUMPS,
    ) -> None:
        self.sim = sim
        self.node = node
        self.capacity = capacity
        self.max_dumps = max_dumps
        self.records: deque[dict[str, Any]] = deque(maxlen=capacity)
        #: Entries pushed out of the ring — truncation is visible, never
        #: silent (the TrafficMonitor ``trace_dropped`` contract).
        self.dropped = 0
        #: Frozen dumps, oldest first (bounded by ``max_dumps``).
        self.dumps: list[dict[str, Any]] = []
        self.triggers = 0

    # -- recording -----------------------------------------------------------

    def record(self, kind: str, **data: Any) -> None:
        """Append one timestamped record; oldest entries fall out first."""
        if len(self.records) == self.capacity:
            self.dropped += 1
        entry: dict[str, Any] = {"time": self.sim.now, "kind": kind}
        entry.update(data)
        self.records.append(entry)

    # -- listener wiring -----------------------------------------------------

    def watch_tracer(self, tracer: Any, island: str = "") -> "FlightRecorder":
        """Record every finished span (optionally only ``island``'s own —
        sub-labels like ``jini0.vsr`` count as the island's)."""
        add = getattr(tracer, "add_finish_listener", None)
        if add is None:
            return self

        def on_span(span: Any) -> None:
            if island and not (
                span.island == island or span.island.startswith(island + ".")
            ):
                return
            self.record(
                "span",
                name=span.name,
                island=span.island,
                span_kind=span.kind,
                span_id=span.span_id,
                trace_id=span.trace_id,
                start=span.start,
                status=span.status,
            )

        add(on_span)
        return self

    def watch_monitor(self, monitor: Any) -> "FlightRecorder":
        """Record every frame the monitor sees (wire-level context)."""
        monitor.frame_listeners.append(
            lambda segment, protocol, size, dropped: self.record(
                "frame", segment=segment, protocol=protocol, size=size, dropped=dropped
            )
        )
        return self

    def watch_breakers(self, executor: Any, home: str = "") -> "FlightRecorder":
        """Record every breaker transition on ``executor``."""
        executor.add_transition_listener(
            lambda island, old, new: self.record(
                "breaker", home=home, island=island, old=old, new=new
            )
        )
        return self

    def watch_heartbeat(self, heartbeat: Any, home: str = "") -> "FlightRecorder":
        """Record heartbeat liveness flips seen from ``home``'s monitor."""
        add = getattr(heartbeat, "add_listener", None)
        if add is None:
            return self
        add(
            lambda island, alive, record: self.record(
                "heartbeat", home=home, island=island, alive=alive
            )
        )
        return self

    def watch_engine(self, engine: Any) -> "FlightRecorder":
        """Record every rule firing on ``engine``."""
        engine.add_firing_listener(
            lambda firing: self.record(
                "rule_firing",
                engine=engine.label,
                rule=firing.rule,
                key=firing.key,
                trigger=firing.trigger_kind,
            )
        )
        return self

    # -- dumping -------------------------------------------------------------

    def dump(self, reason: str) -> dict[str, Any]:
        """Freeze the current ring into a plain, JSON-ready dict."""
        return {
            "node": self.node,
            "reason": reason,
            "dumped_at": self.sim.now,
            "capacity": self.capacity,
            "dropped": self.dropped,
            "records": [dict(entry) for entry in self.records],
        }

    def trigger(self, reason: str) -> dict[str, Any] | None:
        """Dump on a failure signal (crash, watchdog reap, oracle failure).

        Retains up to ``max_dumps`` dumps; past the cap the trigger is
        counted but the artifact stops growing.  Returns the dump (or
        None once capped).
        """
        self.triggers += 1
        if len(self.dumps) >= self.max_dumps:
            return None
        frozen = self.dump(reason)
        self.dumps.append(frozen)
        return frozen

    def dump_json(self, dump: dict[str, Any] | None = None) -> str:
        """Deterministic JSON for one dump (default: the most recent)."""
        if dump is None:
            dump = self.dumps[-1] if self.dumps else self.dump("manual")
        return json.dumps(dump, sort_keys=True, separators=(",", ":"))


def dumps_json(recorders: dict[str, FlightRecorder]) -> str:
    """One deterministic JSON artifact for a set of recorders' dumps
    (only recorders that actually dumped appear)."""
    merged = {
        name: recorder.dumps
        for name, recorder in sorted(recorders.items())
        if recorder.dumps
    }
    return json.dumps(merged, sort_keys=True, separators=(",", ":"))
