"""Fault plans and reports.

A plan is data, not behaviour: a sorted schedule of (time, action) pairs
plus one seed.  The :class:`~repro.faults.injector.FaultInjector` turns it
into simulator events; keeping the description inert makes plans trivially
comparable, printable and replayable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import FaultInjectionError


# ---------------------------------------------------------------------------
# Actions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultAction:
    """Base class; concrete actions below are plain frozen records."""

    kind = "abstract"

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class LinkLoss(FaultAction):
    """Raise a segment's frame loss rate for a window (via ``loss_model``)."""

    segment: str
    rate: float
    duration: float

    kind = "link-loss"

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise FaultInjectionError(f"loss rate {self.rate} outside [0, 1]")
        if self.duration < 0:
            raise FaultInjectionError(f"loss window must not be negative: {self.duration}")

    def describe(self) -> str:
        return f"loss {self.rate:.0%} on {self.segment} for {self.duration:g}s"


@dataclass(frozen=True)
class LatencySpike(FaultAction):
    """Add propagation delay to a segment for a window."""

    segment: str
    extra_delay: float
    duration: float

    kind = "latency-spike"

    def __post_init__(self) -> None:
        if self.extra_delay <= 0 or self.duration < 0:
            raise FaultInjectionError(
                "latency spike needs positive delay and non-negative duration"
            )

    def describe(self) -> str:
        return (
            f"+{self.extra_delay * 1000:g}ms on {self.segment} "
            f"for {self.duration:g}s"
        )


@dataclass(frozen=True)
class Partition(FaultAction):
    """Split a segment into isolated groups of nodes for a window.

    ``groups`` name node groups by node name; nodes on the segment that
    appear in no group form one extra implicit group (they stay connected
    to each other but to nobody listed).
    """

    segment: str
    groups: tuple[frozenset[str], ...]
    duration: float

    kind = "partition"

    def __post_init__(self) -> None:
        if len(self.groups) < 1:
            raise FaultInjectionError("partition needs at least one group")
        if self.duration < 0:
            raise FaultInjectionError("partition window must not be negative")
        seen: set[str] = set()
        for group in self.groups:
            overlap = seen & group
            if overlap:
                raise FaultInjectionError(
                    f"nodes in more than one partition group: {sorted(overlap)}"
                )
            seen |= group

    @staticmethod
    def of(segment: str, *groups, duration: float) -> "Partition":
        """Convenience: ``Partition.of("backbone", {"a"}, {"b"}, duration=5)``."""
        return Partition(
            segment=segment,
            groups=tuple(frozenset(group) for group in groups),
            duration=duration,
        )

    def describe(self) -> str:
        sides = " | ".join(",".join(sorted(group)) for group in self.groups)
        return f"partition {self.segment} [{sides}] for {self.duration:g}s"


@dataclass(frozen=True)
class NodeCrash(FaultAction):
    """Take a node's interfaces down; optionally restart it later."""

    node: str
    restart_after: float | None = None

    kind = "node-crash"

    def __post_init__(self) -> None:
        if self.restart_after is not None and self.restart_after < 0:
            raise FaultInjectionError("restart_after must not be negative when given")

    def describe(self) -> str:
        if self.restart_after is None:
            return f"crash {self.node} (no restart)"
        return f"crash {self.node}, restart after {self.restart_after:g}s"


@dataclass(frozen=True)
class GatewayPause(FaultAction):
    """Wedge an island's gateway (alive but unresponsive) for a window."""

    island: str
    duration: float

    kind = "gateway-pause"

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise FaultInjectionError("pause window must not be negative")

    def describe(self) -> str:
        return f"pause gateway {self.island} for {self.duration:g}s"


# ---------------------------------------------------------------------------
# Plan
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScheduledFault:
    """One planned injection; ``index`` seeds the action's private RNG."""

    time: float
    action: FaultAction
    index: int


class FaultPlan:
    """An ordered, seeded schedule of fault injections."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._entries: list[ScheduledFault] = []

    def at(self, time: float, action: FaultAction) -> "FaultPlan":
        """Schedule ``action`` at virtual ``time``; chainable."""
        if time < 0:
            raise FaultInjectionError(f"cannot inject in the past: t={time}")
        if not isinstance(action, FaultAction):
            raise FaultInjectionError(f"not a fault action: {action!r}")
        self._entries.append(ScheduledFault(time, action, len(self._entries)))
        return self

    @property
    def entries(self) -> list[ScheduledFault]:
        """Entries in firing order (time, then insertion order)."""
        return sorted(self._entries, key=lambda entry: (entry.time, entry.index))

    def __len__(self) -> int:
        return len(self._entries)

    def rng_seed(self, entry: ScheduledFault) -> str:
        """Stable per-injection RNG seed string."""
        return f"{self.seed}:{entry.index}:{entry.action.kind}"


# ---------------------------------------------------------------------------
# Report
# ---------------------------------------------------------------------------


@dataclass
class FaultRecord:
    """One injected fault and what it observably did."""

    time: float
    kind: str
    description: str
    #: Filled in as the fault's effects land (e.g. at window end).
    observed: dict[str, Any] = field(default_factory=dict)

    def as_row(self) -> tuple[str, str, str, str]:
        effects = ", ".join(
            f"{key}={value}" for key, value in sorted(self.observed.items())
        )
        return (f"{self.time:g}s", self.kind, self.description, effects or "-")


@dataclass
class FaultReport:
    """Everything a chaotic run injected and observed, deterministically
    ordered so identical seeds yield identical reports."""

    seed: int
    records: list[FaultRecord] = field(default_factory=list)

    @property
    def injected(self) -> int:
        return len(self.records)

    def by_kind(self, kind: str) -> list[FaultRecord]:
        return [record for record in self.records if record.kind == kind]

    def total_observed(self, key: str) -> int:
        return sum(int(record.observed.get(key, 0)) for record in self.records)

    def as_rows(self) -> list[tuple[str, str, str, str]]:
        return [record.as_row() for record in self.records]

    def as_dict(self) -> dict[str, Any]:
        """Canonical form for determinism comparisons across runs."""
        return {
            "seed": self.seed,
            "records": [
                {
                    "time": record.time,
                    "kind": record.kind,
                    "description": record.description,
                    "observed": dict(sorted(record.observed.items())),
                }
                for record in self.records
            ],
        }

    def render(self) -> str:
        lines = [f"fault report (seed={self.seed}, injected={self.injected})"]
        for row in self.as_rows():
            lines.append("  " + " | ".join(row))
        return "\n".join(lines)
