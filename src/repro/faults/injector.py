"""Arms a :class:`FaultPlan` on a simulated network.

Each action kind maps onto an existing seam of the substrate:

- :class:`LinkLoss` installs a seeded Bernoulli ``Segment.loss_model`` for
  the window, then restores whatever model was there before;
- :class:`LatencySpike` bumps ``Segment.propagation_delay``;
- :class:`Partition` installs a ``Segment.delivery_filter`` that only lets
  frames travel within a node group (broadcasts still reach same-side
  interfaces);
- :class:`NodeCrash` calls :meth:`Node.crash` / :meth:`Node.restart`;
- :class:`GatewayPause` parks a gateway's inbound dispatch until resume.

Window restorations are themselves simulator events, so a report read after
the run describes exactly what the run experienced.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import FaultInjectionError
from repro.faults.plan import (
    FaultPlan,
    FaultRecord,
    FaultReport,
    GatewayPause,
    LatencySpike,
    LinkLoss,
    NodeCrash,
    Partition,
    ScheduledFault,
)
from repro.net.network import Network
from repro.net.segment import Segment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.framework import MetaMiddleware
    from repro.net.frames import Frame
    from repro.net.node import Interface


class _BernoulliLoss:
    """Seeded per-frame drop model; counts what it did for the report."""

    def __init__(self, rate: float, seed: str, previous: Callable | None) -> None:
        self.rate = rate
        self.rng = random.Random(seed)
        self.previous = previous
        self.seen = 0
        self.dropped = 0

    def __call__(self, frame: "Frame") -> bool:
        if self.previous is not None and self.previous(frame):
            return True
        self.seen += 1
        if self.rng.random() < self.rate:
            self.dropped += 1
            return True
        return False


class _PartitionFilter:
    """Delivery filter for one partition window; chains like the loss model
    so overlapping windows unwind independently."""

    def __init__(self, group_of: dict[str, int], previous: Callable | None) -> None:
        self.group_of = group_of
        self.previous = previous

    def __call__(self, sender: "Interface", receiver: "Interface") -> bool:
        if self.previous is not None and not self.previous(sender, receiver):
            return False
        # Unlisted nodes share the implicit group -1.
        return self.group_of.get(sender.node.name, -1) == self.group_of.get(
            receiver.node.name, -1
        )


def _splice_out(head: Any, member: Any) -> Any:
    """Remove ``member`` from a ``.previous``-chained stack of models.

    Returns the new head.  Windows may overlap in either nesting order, so
    the member being removed is not necessarily the installed head: walk the
    chain and splice it out wherever it sits (a foreign model without a
    ``previous`` attribute ends the walk — we never unwind what we did not
    install).
    """
    if head is member:
        return member.previous
    current = head
    while current is not None:
        previous = getattr(current, "previous", None)
        if previous is member:
            current.previous = member.previous
            return head
        current = previous
    return head


class FaultInjector:
    """Schedules a plan's actions on the network's simulation kernel."""

    def __init__(
        self,
        network: Network,
        plan: FaultPlan,
        mm: "MetaMiddleware | None" = None,
    ) -> None:
        self.network = network
        self.sim = network.sim
        self.plan = plan
        self.mm = mm
        self._report = FaultReport(seed=plan.seed)
        self._armed = False
        #: ``on_fault(action, record)`` invoked after each injection lands
        #: — the testkit hooks flight-recorder dumps on crash actions.
        self.on_fault: "Any | None" = None

    # -- public API ---------------------------------------------------------

    def arm(self) -> "FaultInjector":
        """Validate every target now, then schedule all injections."""
        if self._armed:
            raise FaultInjectionError("fault plan already armed")
        self._armed = True
        for entry in self.plan.entries:
            self._validate(entry)
            self.sim.at(entry.time, self._apply, entry)
        return self

    def report(self) -> FaultReport:
        return self._report

    # -- validation ---------------------------------------------------------

    def _validate(self, entry: ScheduledFault) -> None:
        action = entry.action
        if isinstance(action, (LinkLoss, LatencySpike, Partition)):
            self.network.segment(action.segment)  # raises if unknown
        elif isinstance(action, NodeCrash):
            self.network.node(action.node)
        elif isinstance(action, GatewayPause):
            if self.mm is None:
                raise FaultInjectionError(
                    "GatewayPause needs a MetaMiddleware (pass mm= to the injector)"
                )
            self.mm.island(action.island)
        else:
            raise FaultInjectionError(f"unknown fault action {action!r}")

    # -- application --------------------------------------------------------

    def _apply(self, entry: ScheduledFault) -> None:
        record = FaultRecord(
            time=entry.time,
            kind=entry.action.kind,
            description=entry.action.describe(),
        )
        self._report.records.append(record)
        action = entry.action
        if isinstance(action, LinkLoss):
            self._apply_loss(entry, action, record)
        elif isinstance(action, LatencySpike):
            self._apply_spike(action, record)
        elif isinstance(action, Partition):
            self._apply_partition(action, record)
        elif isinstance(action, NodeCrash):
            self._apply_crash(action, record)
        elif isinstance(action, GatewayPause):
            self._apply_pause(action, record)
        if self.on_fault is not None:
            self.on_fault(action, record)

    def _apply_loss(
        self, entry: ScheduledFault, action: LinkLoss, record: FaultRecord
    ) -> None:
        segment = self.network.segment(action.segment)
        model = _BernoulliLoss(action.rate, self.plan.rng_seed(entry), segment.loss_model)
        segment.loss_model = model

        def restore() -> None:
            # Another injection may have stacked on top of us (windows can
            # overlap in either order): splice this model out of the chain
            # wherever it sits, leaving every other window armed.
            segment.loss_model = _splice_out(segment.loss_model, model)
            record.observed["frames_seen"] = model.seen
            record.observed["frames_dropped"] = model.dropped

        self.sim.schedule(action.duration, restore)

    def _apply_spike(self, action: LatencySpike, record: FaultRecord) -> None:
        segment = self.network.segment(action.segment)
        segment.propagation_delay += action.extra_delay

        def restore() -> None:
            segment.propagation_delay -= action.extra_delay
            record.observed["restored"] = 1

        self.sim.schedule(action.duration, restore)

    def _apply_partition(self, action: Partition, record: FaultRecord) -> None:
        segment = self.network.segment(action.segment)
        group_of: dict[str, int] = {}
        for index, group in enumerate(action.groups):
            for node_name in group:
                group_of[node_name] = index
        blocked_before = segment.frames_blocked
        same_side = _PartitionFilter(group_of, segment.delivery_filter)
        segment.delivery_filter = same_side

        def heal() -> None:
            segment.delivery_filter = _splice_out(segment.delivery_filter, same_side)
            record.observed["frames_blocked"] = (
                segment.frames_blocked - blocked_before
            )

        self.sim.schedule(action.duration, heal)

    def _apply_crash(self, action: NodeCrash, record: FaultRecord) -> None:
        node = self.network.node(action.node)
        crash_hook, recover_hook = self._cold_hooks(action.node)
        node.crash()
        if crash_hook is not None:
            crash_hook()
            record.observed["cold"] = 1
        record.observed["crashed_at"] = self.sim.now
        if action.restart_after is not None:

            def restart() -> None:
                node.restart()
                record.observed["restarted_at"] = self.sim.now
                if recover_hook is not None:
                    recover_hook()
                    record.observed["recovered_at"] = self.sim.now

            self.sim.schedule(action.restart_after, restart)

    def _cold_hooks(self, node_name: str) -> tuple[Any, Any]:
        """Cold crash/recover hooks for ``node_name``, or ``(None, None)``.

        A crash is *cold* only when the owning component carries a WAL
        journal: a gateway node (``gw-<island>``) whose VSG has one, or
        the directory node when the :class:`VsrDirectory` has one.  With
        no journal attached the historical warm-restart semantics (crash
        flips the interfaces, state survives in memory) are untouched.
        """
        if self.mm is None:
            return None, None
        if node_name == self.mm.directory_node.name:
            directory = self.mm.uddi.directory
            if directory.journal is not None:
                stack = self.mm.directory_stack

                def crash_directory() -> None:
                    directory.cold_crash()
                    stack.reboot()  # the process's sockets die with it

                return crash_directory, directory.cold_recover
            return None, None
        for island in self.mm.islands.values():
            gateway = island.gateway
            if gateway.node.name == node_name:
                if gateway.journal is not None:
                    return gateway.on_crash, gateway.recover
                return None, None
        return None, None

    def _apply_pause(self, action: GatewayPause, record: FaultRecord) -> None:
        gateway = self.mm.island(action.island).gateway
        gateway.pause()

        def resume() -> None:
            gateway.resume()
            record.observed["resumed_at"] = self.sim.now

        self.sim.schedule(action.duration, resume)
