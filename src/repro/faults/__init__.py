"""Deterministic fault injection for the simulated home.

A :class:`FaultPlan` is a schedule of chaos — link loss windows, latency
spikes, backbone partitions, node crash/restart, gateway pause/resume — that
a :class:`FaultInjector` arms on the simulation kernel.  All randomness
(which frames a loss window drops) comes from RNGs seeded by the plan seed
and the injection index, so every chaotic run is bit-for-bit reproducible;
the :class:`FaultReport` records injected actions *and* observed effects
(frames dropped, frames blocked, down time) for the chaos benchmarks.
"""

from repro.faults.plan import (
    FaultAction,
    FaultPlan,
    FaultRecord,
    FaultReport,
    GatewayPause,
    LatencySpike,
    LinkLoss,
    NodeCrash,
    Partition,
)
from repro.faults.injector import FaultInjector

__all__ = [
    "FaultAction",
    "FaultInjector",
    "FaultPlan",
    "FaultRecord",
    "FaultReport",
    "GatewayPause",
    "LatencySpike",
    "LinkLoss",
    "NodeCrash",
    "Partition",
]
