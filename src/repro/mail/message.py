"""RFC822-flavoured mail messages."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MailError

_CRLF = "\r\n"


def split_rfc822(data: bytes) -> tuple[dict[str, str], str]:
    """Lenient split of a raw message into (headers, body).

    Never raises: senders are free to omit headers entirely (the SMTP
    envelope, not the header block, decides routing).
    """
    text = data.decode("utf-8", errors="replace")
    head, sep, body = text.partition(_CRLF + _CRLF)
    if not sep:
        head, sep, body = text.partition("\n\n")
    if not sep:
        # No blank line at all: the whole payload is the body.
        return {}, text
    headers: dict[str, str] = {}
    for line in head.splitlines():
        name, colon, value = line.partition(":")
        if colon:
            headers[name.strip()] = value.strip()
    return headers, body


@dataclass
class MailMessage:
    """One email.  ``sent_at`` is virtual time (seconds)."""

    sender: str
    recipients: tuple[str, ...]
    subject: str = ""
    body: str = ""
    headers: dict[str, str] = field(default_factory=dict)
    sent_at: float = 0.0

    def __post_init__(self) -> None:
        if not self.sender or "@" not in self.sender:
            raise MailError(f"malformed sender address {self.sender!r}")
        if not self.recipients:
            raise MailError("message has no recipients")
        for recipient in self.recipients:
            if "@" not in recipient:
                raise MailError(f"malformed recipient address {recipient!r}")

    def to_rfc822(self) -> bytes:
        """Render headers + body; dot-stuffing is the transport's job."""
        lines = [
            f"From: {self.sender}",
            f"To: {', '.join(self.recipients)}",
            f"Subject: {self.subject}",
            f"X-Sim-Time: {self.sent_at:.6f}",
        ]
        lines += [f"{key}: {value}" for key, value in self.headers.items()]
        lines.append("")
        lines.append(self.body)
        return _CRLF.join(lines).encode("utf-8")

    @staticmethod
    def from_rfc822(data: bytes) -> "MailMessage":
        headers, body = split_rfc822(data)
        sender = headers.pop("From", "")
        to_value = headers.pop("To", "")
        recipients = tuple(
            address.strip() for address in to_value.split(",") if address.strip()
        )
        subject = headers.pop("Subject", "")
        sent_at = 0.0
        raw_time = headers.pop("X-Sim-Time", "")
        if raw_time:
            try:
                sent_at = float(raw_time)
            except ValueError:
                pass
        return MailMessage(
            sender=sender,
            recipients=recipients,
            subject=subject,
            body=body,
            headers=headers,
            sent_at=sent_at,
        )
