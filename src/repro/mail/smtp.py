"""SMTP-style message submission over the simulated TCP.

A faithful-in-shape subset: greeting, ``HELO``, ``MAIL FROM`` / ``RCPT TO``
envelope, ``DATA`` with dot-terminated body (and dot-stuffing), ``QUIT``.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import MailError
from repro.net.addressing import NodeAddress
from repro.net.simkernel import SimFuture
from repro.net.transport import Connection, TransportStack
from repro.mail.message import MailMessage, split_rfc822

SMTP_PORT = 25
_CRLF = b"\r\n"


class _LineBuffer:
    def __init__(self) -> None:
        self._buffer = b""

    def feed(self, data: bytes) -> list[bytes]:
        self._buffer += data
        lines = []
        while _CRLF in self._buffer:
            line, self._buffer = self._buffer.split(_CRLF, 1)
            lines.append(line)
        return lines


class SmtpServer:
    """Accepts mail and hands complete messages to ``on_message``."""

    def __init__(
        self,
        stack: TransportStack,
        on_message: Callable[[MailMessage], None],
        port: int = SMTP_PORT,
        hostname: str = "mail.sim",
    ) -> None:
        self.stack = stack
        self.on_message = on_message
        self.hostname = hostname
        self._listener = stack.listen(port, self._on_connection)
        self.messages_accepted = 0
        self.commands_rejected = 0

    def close(self) -> None:
        self._listener.close()

    def _on_connection(self, conn: Connection) -> None:
        session = _SmtpSession(self, conn)
        conn.set_receiver(session.on_data)
        session.reply(220, f"{self.hostname} SMTP simulated")


class _SmtpSession:
    def __init__(self, server: SmtpServer, conn: Connection) -> None:
        self.server = server
        self.conn = conn
        self.lines = _LineBuffer()
        self.sender = ""
        self.recipients: list[str] = []
        self.in_data = False
        self.data_lines: list[bytes] = []

    def reply(self, code: int, text: str) -> None:
        if self.conn.state == Connection.ESTABLISHED:
            self.conn.send(f"{code} {text}".encode("utf-8") + _CRLF)

    def on_data(self, conn: Connection, data: bytes) -> None:
        for line in self.lines.feed(data):
            if self.in_data:
                self._data_line(line)
            else:
                self._command(line)

    def _command(self, line: bytes) -> None:
        text = line.decode("utf-8", errors="replace")
        verb, _, argument = text.partition(" ")
        verb = verb.upper()
        if verb == "HELO" or verb == "EHLO":
            self.reply(250, f"{self.server.hostname} greets {argument or 'you'}")
        elif verb == "MAIL":
            self.sender = _parse_path(argument)
            self.recipients = []
            self.reply(250, "OK")
        elif verb == "RCPT":
            if not self.sender:
                self.server.commands_rejected += 1
                self.reply(503, "need MAIL before RCPT")
                return
            self.recipients.append(_parse_path(argument))
            self.reply(250, "OK")
        elif verb == "DATA":
            if not self.recipients:
                self.server.commands_rejected += 1
                self.reply(503, "need RCPT before DATA")
                return
            self.in_data = True
            self.data_lines = []
            self.reply(354, "end data with <CRLF>.<CRLF>")
        elif verb == "QUIT":
            self.reply(221, "bye")
            self.conn.close()
        elif verb == "NOOP":
            self.reply(250, "OK")
        else:
            self.server.commands_rejected += 1
            self.reply(500, f"unrecognised command {verb!r}")

    def _data_line(self, line: bytes) -> None:
        if line == b".":
            self.in_data = False
            raw = _CRLF.join(
                part[1:] if part.startswith(b"..") else part for part in self.data_lines
            )
            # Parse headers leniently: the SMTP envelope, not the header
            # block, decides routing, so header-less bodies are fine.
            headers, body = split_rfc822(raw)
            headers.pop("From", None)
            headers.pop("To", None)
            subject = headers.pop("Subject", "")
            raw_time = headers.pop("X-Sim-Time", "")
            try:
                sent_at = float(raw_time) if raw_time else 0.0
            except ValueError:
                sent_at = 0.0
            try:
                message = MailMessage(
                    sender=self.sender,
                    recipients=tuple(self.recipients),
                    subject=subject,
                    body=body,
                    headers=headers,
                    sent_at=sent_at,
                )
            except MailError as exc:
                self.reply(554, f"unacceptable message: {exc}")
                return
            self.server.messages_accepted += 1
            self.server.on_message(message)
            self.sender = ""
            self.recipients = []
            self.reply(250, "message accepted")
        else:
            self.data_lines.append(line)


def _parse_path(argument: str) -> str:
    """Extract the address from ``FROM:<a@b>`` / ``TO:<a@b>``."""
    _, _, path = argument.partition(":")
    return path.strip().strip("<>")


class SmtpClient:
    """Submits one message per connection."""

    def __init__(self, stack: TransportStack) -> None:
        self.stack = stack
        self.messages_sent = 0

    def send(self, dst: NodeAddress, message: MailMessage, port: int = SMTP_PORT) -> SimFuture:
        """Deliver ``message`` to the server at ``dst``; resolves True."""
        future: SimFuture = SimFuture()
        # Dot-stuff the body per RFC 5321.
        payload = message.to_rfc822()
        stuffed = _CRLF.join(
            b"." + line if line.startswith(b".") else line
            for line in payload.split(_CRLF)
        )
        script = [
            (220, b"HELO client.sim"),
            (250, b"MAIL FROM:<" + message.sender.encode() + b">"),
        ]
        for recipient in message.recipients:
            script.append((250, b"RCPT TO:<" + recipient.encode() + b">"))
        script.append((250, b"DATA"))
        script.append((354, stuffed + _CRLF + b"."))
        script.append((250, b"QUIT"))
        script.append((221, None))

        def on_connected(conn_future: SimFuture) -> None:
            exc = conn_future.exception()
            if exc is not None:
                future.set_exception(exc)
                return
            conn: Connection = conn_future.result()
            lines = _LineBuffer()
            step = {"index": 0}

            def advance(reply_line: bytes) -> None:
                code_text = reply_line.split(b" ", 1)[0]
                expected, to_send = script[step["index"]]
                if not code_text.isdigit() or int(code_text) != expected:
                    if not future.done():
                        future.set_exception(
                            MailError(f"SMTP error: {reply_line.decode(errors='replace')}")
                        )
                    conn.close()
                    return
                step["index"] += 1
                if to_send is None:
                    self.messages_sent += 1
                    if not future.done():
                        future.set_result(True)
                    conn.close()
                    return
                conn.send(to_send + _CRLF)

            conn.set_receiver(lambda _c, data: [advance(line) for line in lines.feed(data)])

        self.stack.connect(dst, port).add_done_callback(on_connected)
        return future
