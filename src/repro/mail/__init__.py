"""Internet Mail substrate — the prototype's fourth PCM target.

Figure 3 of the paper shows an "Internet Mail service" island alongside
Jini, HAVi and X10: the framework treats a classic store-and-forward
Internet service as just another middleware.  This package provides:

- :mod:`repro.mail.message` — RFC822-flavoured messages.
- :mod:`repro.mail.smtp` — an SMTP-style submission/transfer protocol over
  the simulated TCP (line-oriented, status codes, DATA framing).
- :mod:`repro.mail.mailbox` — the mail store, a POP3-style retrieval
  protocol, and the combined :class:`MailServer`.
"""

from repro.mail.mailbox import Mailbox, MailServer, MailStore, PopClient
from repro.mail.message import MailMessage
from repro.mail.smtp import SmtpClient, SmtpServer

__all__ = [
    "MailMessage",
    "MailServer",
    "MailStore",
    "Mailbox",
    "PopClient",
    "SmtpClient",
    "SmtpServer",
]
