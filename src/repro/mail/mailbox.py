"""Mail store, POP3-style retrieval, and the combined mail server."""

from __future__ import annotations

from repro.errors import MailError
from repro.net.addressing import NodeAddress
from repro.net.simkernel import SimFuture
from repro.net.transport import Connection, TransportStack
from repro.mail.message import MailMessage
from repro.mail.smtp import SmtpServer, _LineBuffer

POP_PORT = 110
_CRLF = b"\r\n"


class Mailbox:
    """Messages for one local address."""

    def __init__(self, address: str) -> None:
        self.address = address
        self.messages: list[MailMessage] = []

    def deliver(self, message: MailMessage) -> None:
        self.messages.append(message)

    def drain(self) -> list[MailMessage]:
        messages, self.messages = self.messages, []
        return messages

    def __len__(self) -> int:
        return len(self.messages)


class MailStore:
    """All mailboxes of one mail server; auto-creates on delivery."""

    def __init__(self, domain: str = "home.sim") -> None:
        self.domain = domain
        self._boxes: dict[str, Mailbox] = {}
        self.delivered = 0
        self.bounced = 0

    def mailbox(self, address: str) -> Mailbox:
        box = self._boxes.get(address)
        if box is None:
            box = Mailbox(address)
            self._boxes[address] = box
        return box

    def deliver(self, message: MailMessage) -> None:
        for recipient in message.recipients:
            if recipient.endswith("@" + self.domain) or "@" not in recipient:
                self.mailbox(recipient).deliver(message)
                self.delivered += 1
            else:
                self.bounced += 1  # not our domain; a relay would forward

    @property
    def mailbox_count(self) -> int:
        return len(self._boxes)


class MailServer:
    """SMTP in, POP3-style retrieval out, one store."""

    def __init__(
        self,
        stack: TransportStack,
        domain: str = "home.sim",
        smtp_port: int = 25,
        pop_port: int = POP_PORT,
    ) -> None:
        self.stack = stack
        self.store = MailStore(domain)
        self.smtp = SmtpServer(stack, self.store.deliver, port=smtp_port, hostname=f"mail.{domain}")
        self._pop_listener = stack.listen(pop_port, self._on_pop_connection)

    def close(self) -> None:
        self.smtp.close()
        self._pop_listener.close()

    # -- POP3-ish retrieval: USER <addr>, STAT, RETR <n>, DELE-all via DRAIN, QUIT

    def _on_pop_connection(self, conn: Connection) -> None:
        lines = _LineBuffer()
        state = {"user": ""}

        def reply(text: str) -> None:
            if conn.state == Connection.ESTABLISHED:
                conn.send(text.encode("utf-8") + _CRLF)

        def handle(line: bytes) -> None:
            text = line.decode("utf-8", errors="replace")
            verb, _, argument = text.partition(" ")
            verb = verb.upper()
            if verb == "USER":
                state["user"] = argument.strip()
                reply("+OK user accepted")
            elif verb == "STAT":
                box = self.store.mailbox(state["user"]) if state["user"] else None
                reply(f"+OK {len(box) if box else 0}")
            elif verb == "RETR":
                self._retr(reply, state["user"], argument)
            elif verb == "DRAIN":
                # Extension: return all messages and clear the box.
                box = self.store.mailbox(state["user"])
                messages = box.drain()
                reply(f"+OK {len(messages)} messages")
                for message in messages:
                    payload = message.to_rfc822()
                    reply(f"+MSG {len(payload)}")
                    conn.send(payload + _CRLF)
                reply("+END")
            elif verb == "QUIT":
                reply("+OK bye")
                conn.close()
            else:
                reply(f"-ERR unknown command {verb!r}")

        conn.set_receiver(lambda _c, data: [handle(line) for line in lines.feed(data)])
        reply("+OK POP simulated ready")

    def _retr(self, reply, user: str, argument: str) -> None:
        if not user:
            reply("-ERR USER first")
            return
        box = self.store.mailbox(user)
        try:
            index = int(argument) - 1
            message = box.messages[index]
        except (ValueError, IndexError):
            reply("-ERR no such message")
            return
        payload = message.to_rfc822()
        reply(f"+OK {len(payload)} octets")
        # For framing simplicity the payload follows as one send.
        reply(payload.decode("utf-8", errors="replace") + "\r\n.")


class PopClient:
    """Fetch-and-clear client using the server's DRAIN extension."""

    def __init__(self, stack: TransportStack) -> None:
        self.stack = stack

    def fetch_all(self, dst: NodeAddress, user: str, port: int = POP_PORT) -> SimFuture:
        """Resolve to the list of :class:`MailMessage` for ``user`` (the
        mailbox is emptied server-side)."""
        future: SimFuture = SimFuture()

        def on_connected(conn_future: SimFuture) -> None:
            exc = conn_future.exception()
            if exc is not None:
                future.set_exception(exc)
                return
            conn: Connection = conn_future.result()
            state = {
                "phase": "greet",
                "buffer": b"",
                "need": 0,
                "collected": [],
            }

            def fail(text: str) -> None:
                if not future.done():
                    future.set_exception(MailError(text))
                conn.close()

            def finish() -> None:
                conn.send(b"QUIT" + _CRLF)
                conn.close()
                if not future.done():
                    future.set_result(state["collected"])

            def handle_line(text: str) -> bool:
                """Process one status line; False aborts parsing."""
                if text.startswith("-ERR"):
                    fail(text)
                    return False
                phase = state["phase"]
                if phase == "greet":
                    state["phase"] = "user"
                    conn.send(f"USER {user}".encode() + _CRLF)
                elif phase == "user":
                    state["phase"] = "drain"
                    conn.send(b"DRAIN" + _CRLF)
                elif phase == "drain":
                    if text.startswith("+MSG"):
                        try:
                            state["need"] = int(text.split()[1])
                        except (IndexError, ValueError):
                            fail(f"malformed +MSG line {text!r}")
                            return False
                        state["phase"] = "msg"
                    elif text.startswith("+END"):
                        finish()
                        return False
                return True

            def on_data(_c: Connection, data: bytes) -> None:
                state["buffer"] += data
                while True:
                    if state["phase"] == "msg":
                        # Byte-counted payload followed by CRLF.
                        total = state["need"] + len(_CRLF)
                        if len(state["buffer"]) < total:
                            return
                        payload = state["buffer"][: state["need"]]
                        state["buffer"] = state["buffer"][total:]
                        state["collected"].append(MailMessage.from_rfc822(payload))
                        state["phase"] = "drain"
                        continue
                    if _CRLF not in state["buffer"]:
                        return
                    line, state["buffer"] = state["buffer"].split(_CRLF, 1)
                    if not handle_line(line.decode("utf-8", errors="replace")):
                        return

            conn.set_receiver(on_data)

        self.stack.connect(dst, port).add_done_callback(on_connected)
        return future
