"""The rule engine: firing state machine with at-least-once dedup.

Life of a firing::

    trigger occurs ──► dedup (occurrence key) ──► cooldown ──►
    conditions (sequential, short-circuit) ──► actions (parallel,
    best-effort) ──► Firing record + metrics

**Dedup.** The event interchange is at-least-once: push channels
redeliver unacked batches after a channel death, and polls fold unacked
batches back in.  Every trigger occurrence therefore carries a stable
key — ``evt:<island>:<sequence>`` for events (the publisher's stamp),
``sch:<trigger>:<n>`` for the n-th schedule occurrence — and the engine
keeps a bounded per-rule window of seen keys.  A duplicate key is
counted on ``rules_suppressed`` and never re-evaluates conditions or
re-runs actions.  The mark is placed *before* cooldown/condition checks:
an occurrence that was suppressed must stay suppressed when its
duplicate arrives later.

**Determinism.** Schedule occurrences are computed closed-form off the
engine's start epoch (see :class:`~repro.rules.triggers.ScheduleTrigger`)
and logged to ``schedule_log``, so the testkit oracle can recompute every
due instant exactly.

**Instrumentation** (per engine label, default the island name):
``rules.<label>.rules_fired`` / ``rules_suppressed`` / ``actions_failed``
counters and a ``rules.<label>.rule_latency`` histogram of trigger→
actions-complete latency (from the event's publish instant when the
trigger was an event, so it includes interchange transport).  Tracing
emits a ``rule.fire <name>`` span that the action invocations' client
spans nest under.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro.errors import FrameworkError
from repro.net.simkernel import SimFuture
from repro.obs import NULL_SPAN
from repro.rules.actions import Action, action_from_dict
from repro.rules.conditions import AllOf, Condition, condition_from_dict
from repro.rules.triggers import (
    EventTrigger,
    ScheduleTrigger,
    Trigger,
    trigger_from_dict,
)

#: Seen-key window per rule.  Redelivery horizons are short (one channel
#: death's worth of unacked events), so a bounded window is safe and keeps
#: long-running engines flat.
DEDUP_WINDOW = 512


@dataclass(frozen=True)
class Rule:
    """One declarative automation rule — pure data, canonically serializable."""

    name: str
    triggers: tuple[Trigger, ...]
    actions: tuple[Action, ...]
    conditions: tuple[Condition, ...] = ()
    cooldown: float = 0.0
    enabled: bool = True
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise FrameworkError("a rule needs a name")
        if not self.triggers:
            raise FrameworkError(f"rule {self.name!r} has no triggers")
        if not self.actions:
            raise FrameworkError(f"rule {self.name!r} has no actions")
        if self.cooldown < 0:
            raise FrameworkError(f"rule {self.name!r} cooldown must be >= 0")

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "name": self.name,
            "triggers": [t.to_dict() for t in self.triggers],
            "conditions": [c.to_dict() for c in self.conditions],
            "actions": [a.to_dict() for a in self.actions],
        }
        if self.cooldown:
            data["cooldown"] = self.cooldown
        if not self.enabled:
            data["enabled"] = False
        if self.description:
            data["description"] = self.description
        return data

    def canonical_json(self) -> str:
        """Stable serialization: sorted keys, no whitespace variance."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))


def rule_from_dict(data: dict[str, Any]) -> Rule:
    """Inverse of :meth:`Rule.to_dict`."""
    return Rule(
        name=str(data["name"]),
        triggers=tuple(trigger_from_dict(t) for t in data.get("triggers", ())),
        conditions=tuple(condition_from_dict(c) for c in data.get("conditions", ())),
        actions=tuple(action_from_dict(a) for a in data.get("actions", ())),
        cooldown=float(data.get("cooldown", 0.0)),
        enabled=bool(data.get("enabled", True)),
        description=str(data.get("description", "")),
    )


@dataclass
class FiringContext:
    """What conditions and actions see while a rule fires."""

    engine: "RuleEngine"
    rule: Rule
    event: dict[str, Any] | None
    key: str
    fired_at: float

    @property
    def gateway(self) -> Any:
        return self.engine.gateway


@dataclass
class Firing:
    """Record of one rule firing (only rules that passed their conditions)."""

    rule: str
    key: str
    trigger_kind: str
    fired_at: float
    topic: str | None = None
    completed_at: float | None = None
    latency: float | None = None
    actions_ok: int = 0
    actions_failed: int = 0
    results: list[Any] = field(default_factory=list)


class RuleEngine:
    """Evaluates rules against one island's gateway."""

    def __init__(self, gateway: Any, obs: Any = None, label: str | None = None) -> None:
        self.gateway = gateway
        self.sim = gateway.sim
        self.obs = obs if obs is not None else gateway.obs
        self.label = label or gateway.island
        metrics = self.obs.metrics
        self._m_fired = metrics.counter(f"rules.{self.label}.rules_fired")
        self._m_suppressed = metrics.counter(f"rules.{self.label}.rules_suppressed")
        self._m_actions_failed = metrics.counter(f"rules.{self.label}.actions_failed")
        self._m_latency = metrics.histogram(f"rules.{self.label}.rule_latency")
        self._rules: dict[str, Rule] = {}
        self._seen: dict[str, OrderedDict[str, bool]] = {}
        self._last_fired: dict[str, float] = {}
        self._subscribed: set[str] = set()
        self._timers: list[Any] = []
        self._running = False
        self._manual_seq = 0
        self.epoch = 0.0
        # Plain counters mirroring the metrics, so stats() works with
        # observability off (the metrics default to null instruments).
        self.fired_count = 0
        self.suppressed_count = 0
        self.actions_failed_count = 0
        #: Completed-condition firings, oldest first (diagnostics + oracles).
        self.firings: list[Firing] = []
        #: One entry per schedule occurrence: rule, trigger index, n, the
        #: closed-form due instant, and when the engine actually ran it.
        self.schedule_log: list[dict[str, Any]] = []
        self._firing_listeners: list[Any] = []
        #: Durable WAL journal shared with the gateway (``None`` = the
        #: historical in-memory dedup, wiped by a cold restart).
        self._journal: Any = None

    def attach_journal(self, journal: Any) -> None:
        """Make the dedup windows durable: seen keys, last-fired stamps
        and the schedule epoch are journaled to the gateway's WAL, wiped
        on a cold crash, and restored on recovery — so an event the
        interchange redelivers *across* a restart is still deduplicated
        and never double-fires a rule.  Call before :meth:`start` and
        after ``gateway.attach_journal``."""
        self._journal = journal
        self.gateway.add_crash_listener(self._on_gateway_crash)
        self.gateway.add_recovery_listener(self._on_gateway_recovery)

    def _on_gateway_crash(self) -> None:
        # The dedup windows and armed schedule timers are process memory:
        # both die with the process.  A timer left running would fire
        # during the down window and append to the closed WAL.
        self._seen = {name: OrderedDict() for name in self._rules}
        self._last_fired.clear()
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()

    def _on_gateway_recovery(self, state: dict[str, Any]) -> None:
        entry = state.get("rules", {}).get(self.label)
        if entry is not None:
            for rule_name, key in entry["seen"]:
                seen = self._seen.setdefault(rule_name, OrderedDict())
                seen[key] = True
                while len(seen) > DEDUP_WINDOW:
                    seen.popitem(last=False)
            self._last_fired.update(entry["last_fired"])
            if entry["epoch"] is not None:
                # The closed-form schedule arithmetic keys off the epoch;
                # the journaled one keeps occurrence indices stable across
                # restarts.
                self.epoch = float(entry["epoch"])
        if self._running:
            # Re-arm schedule triggers against the (restored) epoch: the
            # first occurrence index is computed from now, so occurrences
            # due while the process was dead are skipped, never replayed.
            for rule in self._rules.values():
                self._arm_rule(rule)

    def add_firing_listener(self, listener: Any) -> None:
        """``listener(firing)`` on every appended :class:`Firing` — the
        flight recorder's feed.  Listeners must not publish or fire rules."""
        self._firing_listeners.append(listener)

    # -- rule management -----------------------------------------------------

    @property
    def rules(self) -> tuple[Rule, ...]:
        return tuple(self._rules.values())

    def add_rule(self, rule: Rule) -> None:
        if rule.name in self._rules:
            raise FrameworkError(f"engine already has a rule named {rule.name!r}")
        self._rules[rule.name] = rule
        self._seen[rule.name] = OrderedDict()
        if self._running:
            self._subscribe_rule(rule)
            self._arm_rule(rule)

    def remove_rule(self, name: str) -> None:
        self._rules.pop(name, None)
        self._seen.pop(name, None)
        self._last_fired.pop(name, None)
        # Topic subscriptions stay (other rules may share them); firing a
        # removed rule is a no-op because _on_event re-reads self._rules.

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> SimFuture:
        """Arm the engine: subscribe event triggers, schedule timers.

        The returned future resolves once every event subscription has
        been acknowledged by the interchange.  The start instant becomes
        the schedule epoch.
        """
        if self._running:
            return SimFuture.completed(None)
        self._running = True
        self.epoch = self.sim.now
        if self._journal is not None:
            self._journal.log_rule_epoch(self.label, self.epoch)
        futures: list[SimFuture] = []
        for rule in self._rules.values():
            futures.extend(self._subscribe_rule(rule))
            self._arm_rule(rule)
        return _join(futures)

    def stop(self) -> None:
        """Disarm: cancel timers and ignore further event deliveries."""
        self._running = False
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()

    # -- firing --------------------------------------------------------------

    def fire(self, name: str, event: dict[str, Any] | None = None) -> SimFuture:
        """Fire a rule by hand (scene buttons, tests).

        Manual firings get a unique occurrence key, so they are never
        deduplicated against each other; conditions and cooldown still
        apply.  Resolves to the :class:`Firing`, or ``None`` if
        suppressed.
        """
        rule = self._rules.get(name)
        if rule is None:
            return SimFuture.failed(FrameworkError(f"no rule named {name!r}"))
        self._manual_seq += 1
        return self._fire(rule, event, f"manual:{self._manual_seq}", "manual")

    def _suppress(self) -> None:
        self.suppressed_count += 1
        self._m_suppressed.inc()

    def count_action_failure(self) -> None:
        """Called by composite actions for per-device failures."""
        self.actions_failed_count += 1
        self._m_actions_failed.inc()

    def stats(self) -> dict[str, Any]:
        return {
            "rules": len(self._rules),
            "fired": self.fired_count,
            "suppressed": self.suppressed_count,
            "actions_failed": self.actions_failed_count,
        }

    # -- event plumbing ------------------------------------------------------

    def _subscribe_rule(self, rule: Rule) -> list[SimFuture]:
        from repro.core.vsg import FullEventCallback

        futures: list[SimFuture] = []
        for trigger in rule.triggers:
            if not isinstance(trigger, EventTrigger):
                continue
            if trigger.topic in self._subscribed:
                continue
            self._subscribed.add(trigger.topic)
            futures.append(
                self.gateway.events.subscribe(
                    trigger.topic, FullEventCallback(self._on_event)
                )
            )
        return futures

    def _on_event(self, event: dict[str, Any]) -> None:
        if not self._running:
            return
        key = f"evt:{event['island']}:{event['sequence']}"
        for rule in list(self._rules.values()):
            for trigger in rule.triggers:
                if isinstance(trigger, EventTrigger) and trigger.matches(event):
                    self._fire(rule, event, key, "event")
                    break  # one firing per rule per occurrence

    # -- schedule plumbing ---------------------------------------------------

    def _arm_rule(self, rule: Rule) -> None:
        for index, trigger in enumerate(rule.triggers):
            if isinstance(trigger, ScheduleTrigger):
                n = trigger.first_occurrence_index(self.epoch, self.sim.now)
                self._arm_occurrence(rule, index, trigger, n)

    def _arm_occurrence(
        self, rule: Rule, index: int, trigger: ScheduleTrigger, n: int
    ) -> None:
        due = trigger.occurrence(self.epoch, n)
        timer = self.sim.schedule(
            max(0.0, due - self.sim.now), self._on_schedule, rule.name, index, n, due
        )
        self._timers.append(timer)

    def _on_schedule(self, name: str, index: int, n: int, due: float) -> None:
        if not self._running:
            return
        rule = self._rules.get(name)
        if rule is None:
            return
        trigger = rule.triggers[index]
        self.schedule_log.append(
            {"rule": name, "trigger": index, "n": n, "due": due, "fired_at": self.sim.now}
        )
        self._fire(rule, None, f"sch:{index}:{n}", "schedule")
        if trigger.repeat:
            self._arm_occurrence(rule, index, trigger, n + 1)

    # -- the firing state machine --------------------------------------------

    def _fire(
        self, rule: Rule, event: dict[str, Any] | None, key: str, trigger_kind: str
    ) -> SimFuture:
        now = self.sim.now
        if not rule.enabled:
            self._suppress()
            return SimFuture.completed(None)
        seen = self._seen[rule.name]
        if key in seen:
            self._suppress()
            return SimFuture.completed(None)
        # Mark before cooldown/conditions: a suppressed occurrence must
        # stay suppressed when the interchange redelivers it.
        seen[key] = True
        if self._journal is not None:
            self._journal.log_rule_seen(self.label, rule.name, key)
        while len(seen) > DEDUP_WINDOW:
            seen.popitem(last=False)
        last = self._last_fired.get(rule.name)
        if rule.cooldown > 0 and last is not None and now < last + rule.cooldown:
            self._suppress()
            return SimFuture.completed(None)

        tracer = self.obs.tracer
        span = (
            tracer.start_span(
                f"rule.fire {rule.name}", island=self.gateway.island, kind="client"
            )
            if tracer.enabled
            else NULL_SPAN
        )
        if span.recording:
            span.set_attribute("trigger", trigger_kind)
            span.set_attribute("key", key)
            if event is not None:
                span.set_attribute("topic", event["topic"])

        ctx = FiringContext(engine=self, rule=rule, event=event, key=key, fired_at=now)
        result: SimFuture = SimFuture()

        def on_conditions(done: SimFuture) -> None:
            exc = done.exception()
            if exc is not None or not done.result():
                # Condition error fails safe: the rule stays quiet.
                self._suppress()
                if span.recording:
                    span.annotate("conditions not met")
                span.finish(exc)
                result.set_result(None)
                return
            self._run_actions(ctx, span, trigger_kind, result)

        with tracer.activate(span):
            AllOf(rule.conditions).evaluate(ctx).add_done_callback(on_conditions)
        return result

    def _run_actions(
        self, ctx: FiringContext, span: Any, trigger_kind: str, result: SimFuture
    ) -> None:
        rule, event = ctx.rule, ctx.event
        self.fired_count += 1
        self._m_fired.inc()
        self._last_fired[rule.name] = ctx.fired_at
        if self._journal is not None:
            self._journal.log_rule_fired(self.label, rule.name, ctx.fired_at)
        firing = Firing(
            rule=rule.name,
            key=ctx.key,
            trigger_kind=trigger_kind,
            fired_at=ctx.fired_at,
            topic=event["topic"] if event is not None else None,
        )
        self.firings.append(firing)
        for listener in self._firing_listeners:
            listener(firing)
        # Latency is trigger→actions-complete: for event triggers it starts
        # at the publisher's stamp, so interchange transport is included.
        started = (
            float(event["published_at"])
            if event is not None and "published_at" in event
            else ctx.fired_at
        )
        pending = 1  # registration token (see ContextSweepAction)

        def finish_if_drained() -> None:
            if pending == 0:
                firing.completed_at = self.sim.now
                firing.latency = self.sim.now - started
                self._m_latency.observe(firing.latency)
                span.finish()
                result.set_result(firing)

        tracer = self.obs.tracer
        for action in rule.actions:
            pending += 1

            def on_action(done: SimFuture) -> None:
                nonlocal pending
                if done.exception() is None:
                    firing.actions_ok += 1
                    firing.results.append(done.result())
                else:
                    firing.actions_failed += 1
                    firing.results.append({"error": str(done.exception())})
                    self.count_action_failure()
                pending -= 1
                finish_if_drained()

            with tracer.activate(span):
                try:
                    future = action.perform(ctx)
                except Exception as exc:
                    future = SimFuture.failed(exc)
            future.add_done_callback(on_action)
        pending -= 1
        finish_if_drained()


def _join(futures: list[SimFuture]) -> SimFuture:
    """Resolve when every future has settled (best-effort: errors ignored)."""
    result: SimFuture = SimFuture()
    remaining = len(futures)
    if remaining == 0:
        result.set_result(None)
        return result

    def on_done(_: SimFuture) -> None:
        nonlocal remaining
        remaining -= 1
        if remaining == 0:
            result.set_result(None)

    for future in futures:
        future.add_done_callback(on_done)
    return result
