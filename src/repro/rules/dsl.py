"""Fluent rule construction and canonical (de)serialization.

The builder reads like the rule means::

    dsl.rule("hall-motion-light")
        .when(dsl.on_event("x10.ON"))
        .only_if(dsl.payload("address").eq("A9"))
        .then(dsl.invoke("X10_A1_hall_lamp", "turn_on"))
        .build()

    dsl.rule("nightly-shutdown")
        .when(dsl.daily_at(3 * 3600.0, day=86400.0))
        .then(dsl.sweep("off"))
        .build()

Rules round-trip losslessly: ``loads(dumps(rule)) == rule`` and
``dumps`` is canonical (sorted keys, fixed separators), so rule sets can
be diffed, hashed and replayed byte-identically by the testkit.
"""

from __future__ import annotations

import json
from typing import Any, Callable

from repro.errors import FrameworkError
from repro.rules.actions import (
    Action,
    ContextSweepAction,
    EventRef,
    InvokeAction,
    PublishAction,
    sweep_operations,
)
from repro.rules.conditions import (
    AllOf,
    AnyOf,
    Condition,
    MetricCondition,
    Not,
    PayloadCondition,
    ServiceCondition,
    VsrCondition,
)
from repro.rules.engine import Rule, rule_from_dict
from repro.rules.triggers import EventTrigger, ScheduleTrigger, Trigger

# -- triggers -----------------------------------------------------------------


def on_event(topic: str, island: str = "") -> EventTrigger:
    """Fire on a framework event; ``topic`` may end in ``*`` (prefix)."""
    return EventTrigger(topic=topic, source_island=island)


def every(interval: float, offset: float = 0.0) -> ScheduleTrigger:
    """Fire every ``interval`` virtual seconds."""
    return ScheduleTrigger(interval=interval, offset=offset)


def daily_at(time_of_day: float, day: float = 86400.0) -> ScheduleTrigger:
    """Fire once per ``day``-second day, ``time_of_day`` seconds in."""
    return ScheduleTrigger(interval=day, offset=time_of_day)


def after(delay: float) -> ScheduleTrigger:
    """Fire once, ``delay`` seconds after the engine starts."""
    return ScheduleTrigger(interval=delay, offset=delay, repeat=False)


# -- conditions ---------------------------------------------------------------


class Comparable:
    """Half-built predicate: pick the comparison to finish it."""

    __slots__ = ("_factory",)

    def __init__(self, factory: Callable[[str, Any], Condition]) -> None:
        self._factory = factory

    def eq(self, value: Any) -> Condition:
        return self._factory("eq", value)

    def ne(self, value: Any) -> Condition:
        return self._factory("ne", value)

    def lt(self, value: Any) -> Condition:
        return self._factory("lt", value)

    def le(self, value: Any) -> Condition:
        return self._factory("le", value)

    def gt(self, value: Any) -> Condition:
        return self._factory("gt", value)

    def ge(self, value: Any) -> Condition:
        return self._factory("ge", value)

    def contains(self, value: Any) -> Condition:
        return self._factory("contains", value)

    def truthy(self) -> Condition:
        return self._factory("truthy", None)


def payload(key: str = "") -> Comparable:
    """Predicate on the triggering event's payload (or one field of it)."""
    return Comparable(lambda op, value: PayloadCondition(key=key, op=op, value=value))


def service_state(service: str, operation: str, *args: Any) -> Comparable:
    """Predicate on a bridged service read, e.g.
    ``service_state("Digital_TV_tuner", "get_channel").eq(7)``."""
    return Comparable(
        lambda op, value: ServiceCondition(
            service=service, operation=operation, args=tuple(args), op=op, value=value
        )
    )


def metric(name: str, instrument: str = "counter") -> Comparable:
    """Predicate on a live observability instrument."""
    return Comparable(
        lambda op, value: MetricCondition(
            name=name, instrument=instrument, op=op, value=value
        )
    )


def vsr_has(min_count: int = 1, **context: str) -> VsrCondition:
    """At least ``min_count`` services match the VSR context filter."""
    return VsrCondition(
        context=tuple(sorted((k, str(v)) for k, v in context.items())),
        min_count=min_count,
    )


def all_of(*conditions: Condition) -> AllOf:
    return AllOf(conditions=tuple(conditions))


def any_of(*conditions: Condition) -> AnyOf:
    return AnyOf(conditions=tuple(conditions))


def negate(condition: Condition) -> Not:
    return Not(condition=condition)


# -- actions ------------------------------------------------------------------


def event(key: str = "") -> EventRef:
    """Placeholder resolved from the triggering event at fire time."""
    return EventRef(key=key)


def invoke(service: str, operation: str, *args: Any) -> InvokeAction:
    """Invoke one bridged service operation (args may embed ``event(...)``)."""
    return InvokeAction(service=service, operation=operation, args=tuple(args))


def publish(topic: str, **payload: Any) -> PublishAction:
    """Publish a framework event."""
    return PublishAction(topic=topic, payload=tuple(sorted(payload.items())))


def sweep(operations: Any = "off", **context: str) -> ContextSweepAction:
    """The scene primitive: ``sweep("off", room="living")``.

    ``operations`` is a preset name (``"off"``/``"on"``) or an explicit
    preference-ordered sequence of operation names.
    """
    return ContextSweepAction(
        context=tuple(sorted((k, str(v)) for k, v in context.items())),
        operations=sweep_operations(operations),
    )


# -- the builder --------------------------------------------------------------


class RuleBuilder:
    """Accumulates triggers/conditions/actions; :meth:`build` validates."""

    def __init__(self, name: str) -> None:
        self._name = name
        self._triggers: list[Trigger] = []
        self._conditions: list[Condition] = []
        self._actions: list[Action] = []
        self._cooldown = 0.0
        self._enabled = True
        self._description = ""

    def when(self, *triggers: Trigger) -> "RuleBuilder":
        self._triggers.extend(triggers)
        return self

    def only_if(self, *conditions: Condition) -> "RuleBuilder":
        self._conditions.extend(conditions)
        return self

    def then(self, *actions: Action) -> "RuleBuilder":
        self._actions.extend(actions)
        return self

    def cooldown(self, seconds: float) -> "RuleBuilder":
        """Minimum gap between firings (new occurrences inside the gap are
        suppressed permanently, not queued)."""
        self._cooldown = seconds
        return self

    def disabled(self) -> "RuleBuilder":
        self._enabled = False
        return self

    def describe(self, text: str) -> "RuleBuilder":
        self._description = text
        return self

    def build(self) -> Rule:
        return Rule(
            name=self._name,
            triggers=tuple(self._triggers),
            conditions=tuple(self._conditions),
            actions=tuple(self._actions),
            cooldown=self._cooldown,
            enabled=self._enabled,
            description=self._description,
        )


def rule(name: str) -> RuleBuilder:
    """Start building a rule."""
    return RuleBuilder(name)


# -- serialization ------------------------------------------------------------


def dumps(rules: Rule | list[Rule] | tuple[Rule, ...]) -> str:
    """Canonical JSON for one rule or a rule set (sorted keys, compact)."""
    if isinstance(rules, Rule):
        return rules.canonical_json()
    return json.dumps(
        [r.to_dict() for r in rules], sort_keys=True, separators=(",", ":")
    )


def loads(text: str) -> Rule | list[Rule]:
    """Inverse of :func:`dumps`."""
    data = json.loads(text)
    if isinstance(data, dict):
        return rule_from_dict(data)
    if isinstance(data, list):
        return [rule_from_dict(item) for item in data]
    raise FrameworkError("expected a rule object or a list of rules")
