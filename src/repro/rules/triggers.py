"""Rule triggers: what makes a rule fire.

Two kinds, both pure frozen data (rules serialize canonically, and the
testkit replays rule sets from specs):

- :class:`EventTrigger` — a framework event topic, exact or prefix
  wildcard (see :func:`repro.core.vsg.topic_matches`).  The engine
  subscribes through the island's :class:`~repro.core.vsg.EventRouter`,
  so delivery rides whatever the interchange negotiated — streamed push
  channels when available, polling otherwise — and each occurrence is
  identified by the publisher's ``(island, sequence)`` stamp for dedup.
- :class:`ScheduleTrigger` — a cron-like periodic schedule evaluated on
  the simulation clock.  Occurrence times are computed *closed-form*
  (``epoch + offset + n*interval`` with integer ``n``), never by
  accumulating increments, so two runs of the same seed produce exactly
  the same instants and the testkit's schedule-determinism oracle can
  check them with float equality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import FrameworkError


class Trigger:
    """Marker base class; concrete triggers are frozen dataclasses."""

    kind = "abstract"

    def to_dict(self) -> dict[str, Any]:
        raise NotImplementedError


@dataclass(frozen=True)
class EventTrigger(Trigger):
    """Fire on a framework event.

    ``topic`` may be exact (``x10.ON``) or a prefix pattern (``x10.*``).
    ``source_island`` optionally restricts to events published by one
    island ("" = any).
    """

    topic: str
    source_island: str = ""

    kind = "event"

    def matches(self, event: dict[str, Any]) -> bool:
        from repro.core.vsg import topic_matches

        if not topic_matches(self.topic, event["topic"]):
            return False
        return not self.source_island or event["island"] == self.source_island

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"kind": self.kind, "topic": self.topic}
        if self.source_island:
            data["source_island"] = self.source_island
        return data


@dataclass(frozen=True)
class ScheduleTrigger(Trigger):
    """Fire every ``interval`` virtual seconds, phase-shifted by ``offset``.

    The first occurrence is the earliest ``epoch + offset + n*interval``
    (integer ``n >= 0``) at or after the engine arms the trigger, where
    ``epoch`` is the engine's start instant.  ``repeat=False`` fires once.
    A daily 03:00 job in a world whose day is ``day`` seconds long is
    ``ScheduleTrigger(interval=day, offset=3 * 3600.0)``.
    """

    interval: float
    offset: float = 0.0
    repeat: bool = True

    kind = "schedule"

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise FrameworkError(f"schedule interval must be positive, got {self.interval!r}")
        if self.offset < 0:
            raise FrameworkError(f"schedule offset must be >= 0, got {self.offset!r}")

    def occurrence(self, epoch: float, n: int) -> float:
        """The ``n``-th occurrence instant — closed form, no accumulation."""
        return epoch + self.offset + n * self.interval

    def first_occurrence_index(self, epoch: float, now: float) -> int:
        """Smallest ``n >= 0`` whose occurrence is at or after ``now``."""
        if now <= epoch + self.offset:
            return 0
        periods = (now - epoch - self.offset) / self.interval
        n = int(periods)
        if self.occurrence(epoch, n) < now:
            n += 1
        return n

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "kind": self.kind,
            "interval": self.interval,
            "offset": self.offset,
        }
        if not self.repeat:
            data["repeat"] = False
        return data


def trigger_from_dict(data: dict[str, Any]) -> Trigger:
    """Inverse of ``Trigger.to_dict`` (canonical rule deserialization)."""
    kind = data.get("kind")
    if kind == "event":
        return EventTrigger(
            topic=str(data["topic"]),
            source_island=str(data.get("source_island", "")),
        )
    if kind == "schedule":
        return ScheduleTrigger(
            interval=float(data["interval"]),
            offset=float(data.get("offset", 0.0)),
            repeat=bool(data.get("repeat", True)),
        )
    raise FrameworkError(f"unknown trigger kind {kind!r}")
