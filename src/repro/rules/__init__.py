"""repro.rules — declarative cross-island automation.

The paper's demo applications hand-wire each scenario; this package makes
scenarios first-class data.  A :class:`Rule` is **trigger(s) →
condition(s) → action(s)**:

- *triggers* fire the rule: framework events from any middleware island
  (X10 motion, HAVi stream state, mail arrival — delivered through the
  :class:`~repro.core.vsg.EventRouter`, preferring streamed push
  channels), or cron-like schedules driven deterministically off the
  simulation clock;
- *conditions* gate the firing: VSR context lookups, bridged service
  state reads, observability metric values, predicates on the triggering
  payload;
- *actions* do the work: bridged service invocations through the
  gateway's ordinary neutral call path (so the resilience layer's
  deadlines, retries and circuit breakers apply unchanged), event
  publishes, and context sweeps (the scene primitive).

The :class:`RuleEngine` owns the firing state machine, including
per-rule at-least-once deduplication: the push-channel delivery modes of
the event interchange may redeliver an event, and a redelivered trigger
must never double-fire an action.

Construct rules with the :mod:`repro.rules.dsl` builder::

    from repro.rules import RuleEngine, dsl

    engine = RuleEngine(home.island("havi").gateway)
    engine.add_rule(
        dsl.rule("hall-motion-light")
        .when(dsl.on_event("x10.ON"))
        .only_if(dsl.payload("address").eq("A9"))
        .then(dsl.invoke("X10_A1_hall_lamp", "turn_on"))
        .build()
    )
    home.sim.run_until_complete(engine.start())

See ``docs/AUTOMATION.md`` for the rule model, dedup semantics and
scheduling determinism.
"""

from repro.rules.actions import (
    Action,
    ContextSweepAction,
    EventRef,
    InvokeAction,
    PublishAction,
    action_from_dict,
)
from repro.rules.conditions import (
    AllOf,
    AnyOf,
    Condition,
    MetricCondition,
    Not,
    PayloadCondition,
    ServiceCondition,
    VsrCondition,
    condition_from_dict,
)
from repro.rules.engine import Firing, FiringContext, Rule, RuleEngine, rule_from_dict
from repro.rules.triggers import (
    EventTrigger,
    ScheduleTrigger,
    Trigger,
    trigger_from_dict,
)
from repro.rules import dsl

__all__ = [
    "Action",
    "AllOf",
    "AnyOf",
    "Condition",
    "ContextSweepAction",
    "EventRef",
    "EventTrigger",
    "Firing",
    "FiringContext",
    "InvokeAction",
    "MetricCondition",
    "Not",
    "PayloadCondition",
    "PublishAction",
    "Rule",
    "RuleEngine",
    "ScheduleTrigger",
    "ServiceCondition",
    "Trigger",
    "VsrCondition",
    "action_from_dict",
    "condition_from_dict",
    "dsl",
    "rule_from_dict",
    "trigger_from_dict",
]
