"""Rule actions: what a firing does.

Actions run through the gateway's ordinary neutral call path, so the
resilience layer (deadlines, retries, circuit breakers) and tracing
apply exactly as they do to hand-written application calls.  Actions are
best-effort and independent: one failing device does not stop the others
(matching scene semantics), but every failure is counted on the engine's
``actions_failed`` metric and recorded on the firing.

Arguments may embed :class:`EventRef` placeholders that resolve against
the triggering event's payload at fire time, serialized canonically as
``{"$event": "<key>"}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import FrameworkError
from repro.net.simkernel import SimFuture
from repro.soap.wsdl import WsdlDocument

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rules.engine import FiringContext


@dataclass(frozen=True)
class EventRef:
    """Placeholder resolved from the triggering event at fire time.

    ``key`` names a field of the event payload; ``""`` means the whole
    payload.  On a schedule-triggered firing (no event) it resolves to
    ``None``.
    """

    key: str = ""

    def resolve(self, event: dict[str, Any] | None) -> Any:
        if event is None:
            return None
        if self.key in ("topic", "island"):
            return event[self.key]
        payload = event.get("payload")
        if not self.key:
            return payload
        if isinstance(payload, dict):
            return payload.get(self.key)
        return None


def _resolve_args(args: tuple[Any, ...], event: dict[str, Any] | None) -> list[Any]:
    return [a.resolve(event) if isinstance(a, EventRef) else a for a in args]


def _serialize_arg(arg: Any) -> Any:
    if isinstance(arg, EventRef):
        return {"$event": arg.key}
    return arg


def _deserialize_arg(arg: Any) -> Any:
    if isinstance(arg, dict) and set(arg) == {"$event"}:
        return EventRef(key=str(arg["$event"]))
    return arg


class Action:
    """Marker base class; concrete actions are frozen dataclasses."""

    kind = "abstract"

    def perform(self, ctx: "FiringContext") -> SimFuture:
        raise NotImplementedError

    def to_dict(self) -> dict[str, Any]:
        raise NotImplementedError


@dataclass(frozen=True)
class InvokeAction(Action):
    """Invoke one bridged service operation."""

    service: str
    operation: str
    args: tuple[Any, ...] = ()

    kind = "invoke"

    def perform(self, ctx: "FiringContext") -> SimFuture:
        return ctx.gateway.invoke(
            self.service, self.operation, _resolve_args(self.args, ctx.event)
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "service": self.service,
            "operation": self.operation,
            "args": [_serialize_arg(a) for a in self.args],
        }


@dataclass(frozen=True)
class PublishAction(Action):
    """Publish a framework event (e.g. a notification other rules or
    subscribers consume).  Payload dict values may be :class:`EventRef`."""

    topic: str
    payload: tuple[tuple[str, Any], ...] = ()

    kind = "publish"

    def perform(self, ctx: "FiringContext") -> SimFuture:
        payload = {
            key: (value.resolve(ctx.event) if isinstance(value, EventRef) else value)
            for key, value in self.payload
        }
        ctx.gateway.publish_event(self.topic, payload)
        return SimFuture.completed({"kind": "publish", "topic": self.topic})

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "topic": self.topic,
            "payload": [[k, _serialize_arg(v)] for k, v in self.payload],
        }


#: Preference tables a sweep may name instead of spelling operations out.
SWEEP_PRESETS = {
    "off": ("power_off", "turn_off", "stop", "stop_record", "stop_capture"),
    "on": ("power_on", "turn_on", "play", "start_capture"),
}


def pick_operation(document: WsdlDocument, candidates: tuple[str, ...]) -> str | None:
    """First operation in preference order the service actually exports."""
    for operation in candidates:
        if document.has_operation(operation):
            return operation
    return None


@dataclass(frozen=True)
class ContextSweepAction(Action):
    """The scene primitive: fan one command out by VSR context.

    Looks up every service matching ``context`` in the VSR, picks each
    service's first supported operation from ``operations`` (preference
    order), and invokes them all — best-effort, like
    :class:`~repro.apps.scenes.SceneController`.  Resolves to a summary::

        {"kind": "sweep", "invocations": [
            {"service": ..., "operation": ..., "island": ..., "ok": bool}, ...]}
    """

    context: tuple[tuple[str, str], ...]
    operations: tuple[str, ...]

    kind = "sweep"

    def perform(self, ctx: "FiringContext") -> SimFuture:
        result: SimFuture = SimFuture()

        def on_documents(done: SimFuture) -> None:
            exc = done.exception()
            if exc is not None:
                result.set_exception(exc)
                return
            invocations: list[dict[str, Any]] = []
            # One registration token held while dispatching, so a locally
            # exported service completing synchronously mid-loop cannot
            # resolve the sweep before the remaining documents dispatch.
            pending = 1

            def finish_if_drained() -> None:
                if pending == 0:
                    result.set_result({"kind": "sweep", "invocations": invocations})

            for document in done.result():
                operation = pick_operation(document, self.operations)
                if operation is None:
                    continue
                record = {
                    "service": document.service,
                    "operation": operation,
                    "island": document.context.get("island", "?"),
                    "ok": False,
                }
                invocations.append(record)
                pending += 1

                def on_invoked(future: SimFuture, record: dict[str, Any] = record) -> None:
                    nonlocal pending
                    record["ok"] = future.exception() is None
                    if not record["ok"]:
                        ctx.engine.count_action_failure()
                    pending -= 1
                    finish_if_drained()

                ctx.gateway.invoke(document.service, operation, []).add_done_callback(
                    on_invoked
                )
            pending -= 1
            finish_if_drained()

        ctx.gateway.vsr.find(dict(self.context)).add_done_callback(on_documents)
        return result

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "context": [[k, v] for k, v in self.context],
            "operations": list(self.operations),
        }


def sweep_operations(spec: Any) -> tuple[str, ...]:
    """Resolve a preset name ("off"/"on") or explicit sequence of ops."""
    if isinstance(spec, str):
        try:
            return SWEEP_PRESETS[spec]
        except KeyError:
            raise FrameworkError(f"unknown sweep preset {spec!r}") from None
    return tuple(str(op) for op in spec)


def action_from_dict(data: dict[str, Any]) -> Action:
    """Inverse of ``Action.to_dict``."""
    kind = data.get("kind")
    if kind == "invoke":
        return InvokeAction(
            service=str(data["service"]),
            operation=str(data["operation"]),
            args=tuple(_deserialize_arg(a) for a in data.get("args", ())),
        )
    if kind == "publish":
        return PublishAction(
            topic=str(data["topic"]),
            payload=tuple(
                (str(k), _deserialize_arg(v)) for k, v in data.get("payload", ())
            ),
        )
    if kind == "sweep":
        return ContextSweepAction(
            context=tuple(sorted((str(k), str(v)) for k, v in data.get("context", ()))),
            operations=sweep_operations(data.get("operations", ())),
        )
    raise FrameworkError(f"unknown action kind {kind!r}")
