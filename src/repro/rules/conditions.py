"""Rule conditions: predicates gating a triggered firing.

A condition's :meth:`~Condition.evaluate` receives the
:class:`~repro.rules.engine.FiringContext` and resolves a
:class:`~repro.net.simkernel.SimFuture` to a boolean.  Conditions that
consult remote state (VSR lookups, bridged service reads) go through the
gateway's ordinary resilient paths; a condition that *errors* (directory
unreachable, breaker open) counts as False — a rule should fail safe,
not crash the engine — and the firing records the exception.

All concrete conditions are frozen dataclasses with canonical
``to_dict``/:func:`condition_from_dict` serialization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import FrameworkError
from repro.net.simkernel import SimFuture

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rules.engine import FiringContext

#: Comparison operators a value condition may apply.
COMPARATORS = {
    "eq": lambda actual, expected: actual == expected,
    "ne": lambda actual, expected: actual != expected,
    "lt": lambda actual, expected: actual < expected,
    "le": lambda actual, expected: actual <= expected,
    "gt": lambda actual, expected: actual > expected,
    "ge": lambda actual, expected: actual >= expected,
    "contains": lambda actual, expected: expected in actual,
    "truthy": lambda actual, expected: bool(actual),
}


def _compare(op: str, actual: Any, expected: Any) -> bool:
    try:
        return bool(COMPARATORS[op](actual, expected))
    except KeyError:
        raise FrameworkError(f"unknown comparison operator {op!r}") from None
    except TypeError:
        return False  # incomparable types: the predicate simply fails


class Condition:
    """Marker base class; concrete conditions are frozen dataclasses."""

    kind = "abstract"

    def evaluate(self, ctx: "FiringContext") -> SimFuture:
        raise NotImplementedError

    def to_dict(self) -> dict[str, Any]:
        raise NotImplementedError


@dataclass(frozen=True)
class PayloadCondition(Condition):
    """Predicate on the triggering event's payload (no round trip).

    ``key`` selects a field of a dict payload ("" = the payload itself);
    missing keys and schedule-triggered firings (no event) evaluate
    False rather than erroring.
    """

    key: str
    op: str = "truthy"
    value: Any = None

    kind = "payload"

    def evaluate(self, ctx: "FiringContext") -> SimFuture:
        if ctx.event is None:
            return SimFuture.completed(False)
        payload = ctx.event.get("payload")
        if self.key:
            if not isinstance(payload, dict) or self.key not in payload:
                return SimFuture.completed(False)
            payload = payload[self.key]
        return SimFuture.completed(_compare(self.op, payload, self.value))

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "key": self.key, "op": self.op, "value": self.value}


@dataclass(frozen=True)
class ServiceCondition(Condition):
    """Read bridged service state and compare the result.

    ``service.operation(*args)`` is invoked through the gateway's neutral
    call path (resilience applies), and the reply is compared with
    ``op``/``value``.
    """

    service: str
    operation: str
    args: tuple[Any, ...] = ()
    op: str = "truthy"
    value: Any = None

    kind = "service"

    def evaluate(self, ctx: "FiringContext") -> SimFuture:
        result: SimFuture = SimFuture()

        def on_reply(done: SimFuture) -> None:
            exc = done.exception()
            if exc is not None:
                result.set_exception(exc)
                return
            result.set_result(_compare(self.op, done.result(), self.value))

        ctx.gateway.invoke(self.service, self.operation, list(self.args)).add_done_callback(
            on_reply
        )
        return result

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "service": self.service,
            "operation": self.operation,
            "args": list(self.args),
            "op": self.op,
            "value": self.value,
        }


@dataclass(frozen=True)
class VsrCondition(Condition):
    """True when the VSR holds at least ``min_count`` services matching
    the context filter — "is there a camera in the hall right now".

    ``context`` is a sorted tuple of ``(key, value)`` pairs (canonical
    form of the filter dict).
    """

    context: tuple[tuple[str, str], ...]
    min_count: int = 1

    kind = "vsr"

    def evaluate(self, ctx: "FiringContext") -> SimFuture:
        result: SimFuture = SimFuture()

        def on_documents(done: SimFuture) -> None:
            exc = done.exception()
            if exc is not None:
                result.set_exception(exc)
                return
            result.set_result(len(done.result()) >= self.min_count)

        ctx.gateway.vsr.find(dict(self.context)).add_done_callback(on_documents)
        return result

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "context": [[k, v] for k, v in self.context],
            "min_count": self.min_count,
        }


@dataclass(frozen=True)
class MetricCondition(Condition):
    """Compare a live observability instrument's value.

    Reads the named counter or gauge from the engine's metrics registry
    (``repro.obs``).  With observability disabled every instrument reads
    0 — degraded-mode rules keyed on failure counters then simply stay
    quiet, which is the safe default.
    """

    name: str
    instrument: str = "counter"  # "counter" | "gauge"
    op: str = "ge"
    value: Any = 1

    kind = "metric"

    def evaluate(self, ctx: "FiringContext") -> SimFuture:
        metrics = ctx.engine.obs.metrics
        if self.instrument == "gauge":
            actual = metrics.gauge(self.name).value
        else:
            actual = metrics.counter(self.name).value
        return SimFuture.completed(_compare(self.op, actual, self.value))

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "instrument": self.instrument,
            "op": self.op,
            "value": self.value,
        }


@dataclass(frozen=True)
class AllOf(Condition):
    """Every child condition must hold (evaluated left to right,
    short-circuiting on the first False)."""

    conditions: tuple[Condition, ...]

    kind = "all"

    def evaluate(self, ctx: "FiringContext") -> SimFuture:
        return _evaluate_chain(ctx, list(self.conditions), require=True)

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "conditions": [c.to_dict() for c in self.conditions]}


@dataclass(frozen=True)
class AnyOf(Condition):
    """At least one child condition must hold (short-circuits on True)."""

    conditions: tuple[Condition, ...]

    kind = "any"

    def evaluate(self, ctx: "FiringContext") -> SimFuture:
        return _evaluate_chain(ctx, list(self.conditions), require=False)

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "conditions": [c.to_dict() for c in self.conditions]}


@dataclass(frozen=True)
class Not(Condition):
    """Negate a child condition."""

    condition: Condition

    kind = "not"

    def evaluate(self, ctx: "FiringContext") -> SimFuture:
        result: SimFuture = SimFuture()

        def on_inner(done: SimFuture) -> None:
            exc = done.exception()
            if exc is not None:
                result.set_exception(exc)
                return
            result.set_result(not done.result())

        self.condition.evaluate(ctx).add_done_callback(on_inner)
        return result

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "condition": self.condition.to_dict()}


def _evaluate_chain(
    ctx: "FiringContext", conditions: list[Condition], require: bool
) -> SimFuture:
    """Sequential short-circuit evaluation: AND when ``require`` else OR."""
    result: SimFuture = SimFuture()
    if not conditions:
        result.set_result(require)  # empty AND is True, empty OR is False
        return result

    def step(index: int) -> None:
        if index >= len(conditions):
            result.set_result(require)
            return

        def on_value(done: SimFuture) -> None:
            exc = done.exception()
            if exc is not None:
                result.set_exception(exc)
                return
            value = bool(done.result())
            if value != require:  # False in AND / True in OR short-circuits
                result.set_result(value)
                return
            step(index + 1)

        conditions[index].evaluate(ctx).add_done_callback(on_value)

    step(0)
    return result


_CONDITION_KINDS = {
    "payload": lambda d: PayloadCondition(
        key=str(d.get("key", "")), op=str(d.get("op", "truthy")), value=d.get("value")
    ),
    "service": lambda d: ServiceCondition(
        service=str(d["service"]),
        operation=str(d["operation"]),
        args=tuple(d.get("args", ())),
        op=str(d.get("op", "truthy")),
        value=d.get("value"),
    ),
    "vsr": lambda d: VsrCondition(
        context=tuple(sorted((str(k), str(v)) for k, v in d.get("context", ()))),
        min_count=int(d.get("min_count", 1)),
    ),
    "metric": lambda d: MetricCondition(
        name=str(d["name"]),
        instrument=str(d.get("instrument", "counter")),
        op=str(d.get("op", "ge")),
        value=d.get("value", 1),
    ),
    "all": lambda d: AllOf(
        conditions=tuple(condition_from_dict(c) for c in d.get("conditions", ()))
    ),
    "any": lambda d: AnyOf(
        conditions=tuple(condition_from_dict(c) for c in d.get("conditions", ()))
    ),
    "not": lambda d: Not(condition=condition_from_dict(d["condition"])),
}


def condition_from_dict(data: dict[str, Any]) -> Condition:
    """Inverse of ``Condition.to_dict``."""
    kind = data.get("kind")
    builder = _CONDITION_KINDS.get(kind)
    if builder is None:
        raise FrameworkError(f"unknown condition kind {kind!r}")
    return builder(data)
