"""AV devices hosted as Jini services.

Each class is a plain Python object (the Jini substrate exports public
methods over RMI) plus a ``JINI_OPS`` table — the typed operation
description its lookup registration carries so the Jini PCM can convert it
(see :mod:`repro.pcms.jini_pcm`).
"""

from __future__ import annotations

from typing import Any

from repro.errors import JiniError


class Laserdisc:
    """The Jini Laserdisc player a person controls with an X10 remote in
    the paper's Figure 5."""

    JINI_INTERFACE = "home.av.Laserdisc"
    JINI_OPS = {
        "play": ["->boolean"],
        "stop": ["->boolean"],
        "next_chapter": ["->int"],
        "previous_chapter": ["->int"],
        "goto_chapter": ["int", "->int"],
        "get_chapter": ["->int"],
        "get_state": ["->string"],
    }
    CHAPTERS = 30

    def __init__(self) -> None:
        self.playing = False
        self.chapter = 1
        self.command_log: list[str] = []

    def play(self) -> bool:
        self.command_log.append("play")
        self.playing = True
        return True

    def stop(self) -> bool:
        self.command_log.append("stop")
        self.playing = False
        return True

    def next_chapter(self) -> int:
        return self.goto_chapter(self.chapter + 1)

    def previous_chapter(self) -> int:
        return self.goto_chapter(self.chapter - 1)

    def goto_chapter(self, chapter: int) -> int:
        chapter = int(chapter)
        if not 1 <= chapter <= self.CHAPTERS:
            raise JiniError(f"chapter {chapter} out of range 1..{self.CHAPTERS}")
        self.command_log.append(f"goto_chapter {chapter}")
        self.chapter = chapter
        return self.chapter

    def get_chapter(self) -> int:
        return self.chapter

    def get_state(self) -> str:
        return "PLAY" if self.playing else "STOP"


class NetworkVcr:
    """A Jini network VCR — the device the Section 2 automatic video
    recording scenario drives from an Internet TV-program service."""

    JINI_INTERFACE = "home.av.Vcr"
    JINI_OPS = {
        "set_channel": ["int", "->int"],
        "start_record": ["string", "->boolean"],
        "stop_record": ["->boolean"],
        "get_state": ["->string"],
        "list_recordings": ["->anyType"],
    }

    def __init__(self) -> None:
        self.channel = 1
        self.recording: str | None = None
        self.recordings: list[dict[str, Any]] = []
        self._record_started = 0.0

    def set_channel(self, channel: int) -> int:
        channel = int(channel)
        if not 1 <= channel <= 999:
            raise JiniError(f"channel {channel} out of range")
        if self.recording is not None:
            raise JiniError("cannot change channel while recording")
        self.channel = channel
        return self.channel

    def start_record(self, title: str) -> bool:
        if self.recording is not None:
            raise JiniError(f"already recording {self.recording!r}")
        self.recording = str(title)
        return True

    def stop_record(self) -> bool:
        if self.recording is None:
            return False
        self.recordings.append({"title": self.recording, "channel": self.channel})
        self.recording = None
        return True

    def get_state(self) -> str:
        return "RECORD" if self.recording is not None else "STOP"

    def list_recordings(self) -> list[dict[str, Any]]:
        return list(self.recordings)
