"""White goods on the Jini island — the paper's Section 1 smart home has
"a Jini-based Ethernet network connecting a refrigerator and an air
conditioner"."""

from __future__ import annotations

from repro.errors import JiniError


class Refrigerator:
    """A networked refrigerator."""

    JINI_INTERFACE = "home.kitchen.Refrigerator"
    JINI_OPS = {
        "get_temperature": ["->double"],
        "set_temperature": ["double", "->double"],
        "list_contents": ["->anyType"],
        "add_item": ["string", "->boolean"],
        "remove_item": ["string", "->boolean"],
    }

    MIN_TEMP = -5.0
    MAX_TEMP = 10.0

    def __init__(self, temperature: float = 4.0) -> None:
        self.temperature = temperature
        self.contents: list[str] = ["milk", "eggs"]

    def get_temperature(self) -> float:
        return self.temperature

    def set_temperature(self, target: float) -> float:
        target = float(target)
        if not self.MIN_TEMP <= target <= self.MAX_TEMP:
            raise JiniError(f"temperature {target} outside {self.MIN_TEMP}..{self.MAX_TEMP}")
        self.temperature = target
        return self.temperature

    def list_contents(self) -> list[str]:
        return list(self.contents)

    def add_item(self, item: str) -> bool:
        self.contents.append(str(item))
        return True

    def remove_item(self, item: str) -> bool:
        try:
            self.contents.remove(str(item))
        except ValueError:
            return False
        return True


class AirConditioner:
    """A networked air conditioner."""

    JINI_INTERFACE = "home.climate.AirConditioner"
    JINI_OPS = {
        "power_on": ["->boolean"],
        "power_off": ["->boolean"],
        "set_target": ["double", "->double"],
        "get_target": ["->double"],
        "get_mode": ["->string"],
        "set_mode": ["string", "->string"],
    }

    MODES = ("cool", "heat", "fan", "dry")

    def __init__(self) -> None:
        self.powered = False
        self.target = 24.0
        self.mode = "cool"

    def power_on(self) -> bool:
        self.powered = True
        return True

    def power_off(self) -> bool:
        self.powered = False
        return True

    def set_target(self, target: float) -> float:
        target = float(target)
        if not 16.0 <= target <= 32.0:
            raise JiniError(f"target {target} outside 16..32")
        self.target = target
        return self.target

    def get_target(self) -> float:
        return self.target

    def get_mode(self) -> str:
        return self.mode

    def set_mode(self, mode: str) -> str:
        if mode not in self.MODES:
            raise JiniError(f"unknown mode {mode!r}")
        self.mode = mode
        return self.mode
