"""Simulated appliances used by the examples, applications and benchmarks.

- :mod:`repro.devices.av` — AV devices hosted on the Jini island (the
  Laserdisc of Figure 5, a network VCR for the automatic-recording
  scenario).
- :mod:`repro.devices.appliances` — white goods on the Jini island (the
  refrigerator and air conditioner from the paper's smart-home example).

HAVi-side devices are plain FCMs from :mod:`repro.havi.fcm_types`;
X10-side devices live in :mod:`repro.x10.devices`.
"""

from repro.devices.appliances import AirConditioner, Refrigerator
from repro.devices.av import Laserdisc, NetworkVcr

__all__ = ["AirConditioner", "Laserdisc", "NetworkVcr", "Refrigerator"]
