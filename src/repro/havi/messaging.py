"""The HAVi Messaging System.

Every HAVi software element (DCM, FCM, registry, application) is addressed
by a SEID — GUID of its node plus a local element id — and exchanges
request/response/event messages carried in 1394 asynchronous packets.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import HaviError, MarshallingError
from repro.net.frames import Frame
from repro.net.node import Interface
from repro.net.simkernel import SimFuture
from repro.havi import codec
from repro.havi.bus1394 import PROTO_1394_ASYNC

if TYPE_CHECKING:  # pragma: no cover
    from repro.havi.bus1394 import HaviNode

_MSG_REQUEST = 1
_MSG_RESPONSE = 2
_MSG_ERROR = 3
_MSG_EVENT = 4

_HEADER = struct.Struct("!BIQHQH")  # type, transaction, src guid, src local, dst guid, dst local

#: Well-known local element ids.
REGISTRY_LOCAL_ID = 0x0002
FIRST_DYNAMIC_LOCAL_ID = 0x0100


@dataclass(frozen=True, order=True)
class Seid:
    """Software element identifier."""

    guid: int
    local: int

    def to_wire(self) -> list[int]:
        return [self.guid, self.local]

    @staticmethod
    def from_wire(data: Any) -> "Seid":
        if not isinstance(data, (list, tuple)) or len(data) != 2:
            raise HaviError(f"malformed SEID wire form {data!r}")
        return Seid(int(data[0]), int(data[1]))

    def __str__(self) -> str:
        return f"{self.guid:x}.{self.local:x}"


#: Request handler: (src seid, operation, args) -> result (or SimFuture).
ElementHandler = Callable[[Seid, str, list[Any]], Any]
#: Event handler: (src seid, event payload dict).
EventHandler = Callable[[Seid, dict[str, Any]], None]


class MessagingSystem:
    """Per-node messaging engine.  Created by :class:`HaviNode`."""

    def __init__(self, havi_node: "HaviNode") -> None:
        self.havi_node = havi_node
        self.sim = havi_node.network.sim
        self._elements: dict[int, ElementHandler] = {}
        self._event_subscribers: list[EventHandler] = []
        self._pending: dict[int, SimFuture] = {}
        self._next_transaction = 1
        self._next_local_id = FIRST_DYNAMIC_LOCAL_ID
        self.messages_sent = 0
        self.messages_received = 0
        havi_node.node.register_protocol(PROTO_1394_ASYNC, self._on_packet)

    # -- element registration ---------------------------------------------------

    def register_element(
        self, handler: ElementHandler, local_id: int | None = None
    ) -> Seid:
        """Register a software element; returns its SEID."""
        if local_id is None:
            local_id = self._next_local_id
            self._next_local_id += 1
        if local_id in self._elements:
            raise HaviError(f"local element id 0x{local_id:x} already in use")
        self._elements[local_id] = handler
        return Seid(self.havi_node.guid, local_id)

    def unregister_element(self, seid: Seid) -> None:
        self._elements.pop(seid.local, None)

    def subscribe_events(self, handler: EventHandler) -> None:
        """Receive every broadcast HAVi event seen by this node."""
        self._event_subscribers.append(handler)

    # -- sending ------------------------------------------------------------

    def send_request(
        self, src: Seid, dst: Seid, operation: str, args: list[Any]
    ) -> SimFuture:
        """Invoke ``operation`` on the remote element; resolves to the
        result value or fails with :class:`HaviError`."""
        transaction = self._next_transaction
        self._next_transaction += 1
        future: SimFuture = SimFuture()
        self._pending[transaction] = future
        payload = codec.encode({"op": operation, "args": args})
        try:
            self._transmit(_MSG_REQUEST, transaction, src, dst, payload)
        except HaviError as exc:
            self._pending.pop(transaction, None)
            future.set_exception(exc)
        return future

    def send_event(self, src: Seid, event: dict[str, Any]) -> None:
        """Broadcast an event to every node on the bus (and locally)."""
        payload = codec.encode(event)
        header = _HEADER.pack(_MSG_EVENT, 0, src.guid, src.local, 0, 0)
        self.messages_sent += 1
        self.havi_node.bus.broadcast_async(self.havi_node, header + payload)
        # The segment does not loop frames back to the sender; deliver the
        # event to local subscribers directly.
        self.sim.call_soon(self._dispatch_event, src, event)

    # -- datapath ------------------------------------------------------------

    def _transmit(self, msg_type: int, transaction: int, src: Seid, dst: Seid, payload: bytes) -> None:
        if src.guid != self.havi_node.guid:
            raise HaviError(f"source SEID {src} does not belong to node {self.havi_node.name}")
        header = _HEADER.pack(msg_type, transaction, src.guid, src.local, dst.guid, dst.local)
        self.messages_sent += 1
        if dst.guid == self.havi_node.guid:
            # Local element: short-circuit through the kernel for ordering.
            frame = Frame(
                self.havi_node.hw_address,
                self.havi_node.hw_address,
                PROTO_1394_ASYNC,
                header + payload,
                note="local",
            )
            self.sim.call_soon(self._on_packet, self.havi_node.interface, frame)
        else:
            self.havi_node.bus.send_async(self.havi_node, dst.guid, header + payload)

    def _on_packet(self, interface: Interface, frame: Frame) -> None:
        if len(frame.payload) < _HEADER.size:
            return
        msg_type, transaction, src_guid, src_local, dst_guid, dst_local = _HEADER.unpack_from(
            frame.payload
        )
        body = frame.payload[_HEADER.size :]
        src = Seid(src_guid, src_local)
        self.messages_received += 1

        if msg_type == _MSG_EVENT:
            try:
                event = codec.decode(body)
            except MarshallingError:
                return
            if isinstance(event, dict):
                self._dispatch_event(src, event)
            return

        if dst_guid != self.havi_node.guid:
            return  # async packet for someone else (broadcast filtering)

        if msg_type == _MSG_REQUEST:
            self._serve_request(src, Seid(dst_guid, dst_local), transaction, body)
        elif msg_type in (_MSG_RESPONSE, _MSG_ERROR):
            future = self._pending.pop(transaction, None)
            if future is None:
                return
            try:
                value = codec.decode(body)
            except MarshallingError as exc:
                future.set_exception(exc)
                return
            if msg_type == _MSG_RESPONSE:
                future.set_result(value)
            else:
                future.set_exception(HaviError(str(value)))

    def _serve_request(self, src: Seid, dst: Seid, transaction: int, body: bytes) -> None:
        handler = self._elements.get(dst.local)
        if handler is None:
            self._reply(_MSG_ERROR, transaction, dst, src, f"no element 0x{dst.local:x}")
            return
        try:
            message = codec.decode(body)
            operation = str(message["op"])
            args = list(message.get("args", []))
        except (MarshallingError, KeyError, TypeError) as exc:
            self._reply(_MSG_ERROR, transaction, dst, src, f"malformed request: {exc}")
            return
        try:
            result = handler(src, operation, args)
        except Exception as exc:
            self._reply(_MSG_ERROR, transaction, dst, src, f"{type(exc).__name__}: {exc}")
            return
        if isinstance(result, SimFuture):
            def on_done(future: SimFuture) -> None:
                exc = future.exception()
                if exc is not None:
                    self._reply(_MSG_ERROR, transaction, dst, src, str(exc))
                else:
                    self._reply(_MSG_RESPONSE, transaction, dst, src, future.result())
            result.add_done_callback(on_done)
        else:
            self._reply(_MSG_RESPONSE, transaction, dst, src, result)

    def _reply(self, msg_type: int, transaction: int, src: Seid, dst: Seid, value: Any) -> None:
        try:
            payload = codec.encode(value)
        except MarshallingError as exc:
            payload = codec.encode(f"unmarshallable result: {exc}")
            msg_type = _MSG_ERROR
        self._transmit(msg_type, transaction, src, dst, payload)

    def _dispatch_event(self, src: Seid, event: dict[str, Any]) -> None:
        for subscriber in list(self._event_subscribers):
            subscriber(src, event)
