"""IEEE1394 bus management: self-identification, GUIDs, phy ids, and the
isochronous resource manager.

A :class:`Bus1394` wraps one :class:`repro.net.segment.IEEE1394Segment`.
Nodes join through :class:`HaviNode`, which attaches a network node to the
segment and registers it with the bus.  Every join or leave triggers a *bus
reset*: phy ids are reassigned (GUIDs are stable), and reset listeners —
the HAVi registry invalidates cached queries on reset, for example — are
notified.

The isochronous resource manager (held by the highest-phy-id node, as on a
real bus) hands out the 64 isochronous channels and a bandwidth budget;
stream connections in :mod:`repro.havi.streams` draw on it.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import HaviError
from repro.net.addressing import HwAddress
from repro.net.network import Network
from repro.net.node import Interface, Node
from repro.net.segment import IEEE1394Segment

PROTO_1394_ASYNC = "1394-async"

ISO_CHANNELS = 64
#: Isochronous bandwidth budget in bytes/second (80% of a 400 Mb/s bus,
#: matching the 1394 arbitration split between iso and async traffic).
ISO_BANDWIDTH_BUDGET = int(400e6 * 0.8 / 8)


class Bus1394:
    """Bus-level state shared by all HAVi nodes on one 1394 segment."""

    #: GUIDs are EUI-64s burned into hardware: globally unique across every
    #: bus in the simulation, not per-bus.
    _guid_counter = 0x0800_0000

    def __init__(self, network: Network, segment: IEEE1394Segment) -> None:
        if not isinstance(segment, IEEE1394Segment):
            raise HaviError("Bus1394 requires an IEEE1394Segment")
        self.network = network
        self.segment = segment
        self.sim = network.sim
        self._members: list["HaviNode"] = []
        self._phy_ids: dict[int, "HaviNode"] = {}
        self._guid_to_phy: dict[int, int] = {}
        self._reset_listeners: list[Callable[[], None]] = []
        self.reset_count = 0
        # Isochronous resource manager state: channel -> (owner guid, B/s).
        self._channels_in_use: dict[int, tuple[int, int]] = {}
        self._bandwidth_used = 0

    # -- membership ------------------------------------------------------------

    def join(self, havi_node: "HaviNode") -> int:
        """Add a node to the bus; triggers a bus reset.  Returns the GUID."""
        Bus1394._guid_counter += 1
        guid = Bus1394._guid_counter
        havi_node.guid = guid
        self._members.append(havi_node)
        self.bus_reset()
        return guid

    def leave(self, havi_node: "HaviNode") -> None:
        if havi_node not in self._members:
            raise HaviError(f"{havi_node.name} is not on bus {self.segment.name}")
        self._members.remove(havi_node)
        # Resources owned by the departed node are reclaimed on reset.
        reclaimed = {
            channel: entry
            for channel, entry in self._channels_in_use.items()
            if entry[0] == havi_node.guid
        }
        for channel, (_owner, bandwidth_bytes) in reclaimed.items():
            del self._channels_in_use[channel]
            self._bandwidth_used = max(0, self._bandwidth_used - bandwidth_bytes)
        self.bus_reset()

    def bus_reset(self) -> None:
        """Reassign phy ids (join order; root = highest) and notify."""
        self.reset_count += 1
        self._phy_ids.clear()
        self._guid_to_phy.clear()
        for phy_id, member in enumerate(self._members):
            member.phy_id = phy_id
            self._phy_ids[phy_id] = member
            self._guid_to_phy[member.guid] = phy_id
        for listener in list(self._reset_listeners):
            listener()

    def on_bus_reset(self, listener: Callable[[], None]) -> None:
        self._reset_listeners.append(listener)

    @property
    def members(self) -> list["HaviNode"]:
        return list(self._members)

    @property
    def root(self) -> "HaviNode":
        if not self._members:
            raise HaviError("empty bus has no root node")
        return self._members[-1]

    def node_by_guid(self, guid: int) -> "HaviNode":
        phy_id = self._guid_to_phy.get(guid)
        if phy_id is None:
            raise HaviError(f"no node with GUID 0x{guid:x} on the bus")
        return self._phy_ids[phy_id]

    # -- async packet service ------------------------------------------------------

    def send_async(self, sender: "HaviNode", dst_guid: int, payload: bytes) -> None:
        """Send an asynchronous packet to the node owning ``dst_guid``."""
        dst = self.node_by_guid(dst_guid)
        sender.interface.send(dst.interface.hw_address, PROTO_1394_ASYNC, payload)

    def broadcast_async(self, sender: "HaviNode", payload: bytes) -> None:
        sender.interface.broadcast(PROTO_1394_ASYNC, payload)

    # -- isochronous resource manager ----------------------------------------------

    def allocate_channel(self, owner_guid: int, bandwidth_bps: int) -> int:
        """Allocate an iso channel plus bandwidth; raises when exhausted."""
        bandwidth_bytes = bandwidth_bps // 8
        if self._bandwidth_used + bandwidth_bytes > ISO_BANDWIDTH_BUDGET:
            raise HaviError(
                f"isochronous bandwidth exhausted "
                f"({self._bandwidth_used + bandwidth_bytes} > {ISO_BANDWIDTH_BUDGET} B/s)"
            )
        for channel in range(ISO_CHANNELS):
            if channel not in self._channels_in_use:
                self._channels_in_use[channel] = (owner_guid, bandwidth_bytes)
                self._bandwidth_used += bandwidth_bytes
                return channel
        raise HaviError("all 64 isochronous channels are in use")

    def release_channel(self, channel: int, bandwidth_bps: int) -> None:
        if channel not in self._channels_in_use:
            raise HaviError(f"channel {channel} is not allocated")
        del self._channels_in_use[channel]
        self._bandwidth_used = max(0, self._bandwidth_used - bandwidth_bps // 8)

    @property
    def channels_allocated(self) -> int:
        return len(self._channels_in_use)

    @property
    def iso_bandwidth_free(self) -> int:
        return ISO_BANDWIDTH_BUDGET - self._bandwidth_used


class HaviNode:
    """One HAVi device's attachment to the bus.

    Creates the network node, attaches it to the 1394 segment, joins the
    bus, and instantiates the node's Messaging System.
    """

    def __init__(self, network: Network, name: str, bus: Bus1394) -> None:
        from repro.havi.messaging import MessagingSystem  # cycle at import time

        self.network = network
        self.bus = bus
        self.node: Node = network.create_node(name)
        self.interface: Interface = network.attach(self.node, bus.segment)
        self.guid = 0
        self.phy_id = -1
        bus.join(self)
        self.messaging = MessagingSystem(self)
        self.sim = network.sim

    @classmethod
    def adopt(cls, network: Network, node: Node, bus: Bus1394) -> "HaviNode":
        """Join an *existing* node (e.g. a gateway already attached to the
        1394 segment) to the bus as a HAVi node."""
        from repro.havi.messaging import MessagingSystem

        havi_node = cls.__new__(cls)
        havi_node.network = network
        havi_node.bus = bus
        havi_node.node = node
        havi_node.interface = node.interface_on(bus.segment)
        havi_node.guid = 0
        havi_node.phy_id = -1
        bus.join(havi_node)
        havi_node.messaging = MessagingSystem(havi_node)
        havi_node.sim = network.sim
        return havi_node

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def hw_address(self) -> HwAddress:
        return self.interface.hw_address

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<HaviNode {self.name} guid=0x{self.guid:x} phy={self.phy_id}>"
