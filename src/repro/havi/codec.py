"""HAVi's compact TLV binary value encoding.

Distinct from the Jini codec (no Java serialization magic; 16-bit lengths,
network byte order) but covering the same value model, so the C1 payload
benchmark compares three genuinely different encodings of one logical call.

Values: None, bool, int (64-bit), float, str, bytes, list, dict[str, ...].
"""

from __future__ import annotations

import struct
from typing import Any

from repro.errors import MarshallingError

_T_NULL = 0x00
_T_BOOL = 0x01
_T_INT = 0x02
_T_FLOAT = 0x03
_T_STR = 0x04
_T_BYTES = 0x05
_T_LIST = 0x06
_T_DICT = 0x07

_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")
_U16 = struct.Struct("!H")

_MAX_LEN = 0xFFFF
_INT_MIN = -(2**63)
_INT_MAX = 2**63 - 1


def encode(value: Any) -> bytes:
    """Serialise ``value`` to HAVi TLV bytes."""
    out = bytearray()
    _write(out, value)
    return bytes(out)


def decode(data: bytes) -> Any:
    """Inverse of :func:`encode`; rejects trailing bytes."""
    value, offset = _read(data, 0)
    if offset != len(data):
        raise MarshallingError(f"{len(data) - offset} trailing bytes in HAVi TLV")
    return value


def _write(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(_T_NULL)
    elif isinstance(value, bool):
        out.append(_T_BOOL)
        out.append(1 if value else 0)
    elif isinstance(value, int):
        if not _INT_MIN <= value <= _INT_MAX:
            raise MarshallingError(f"integer {value} out of 64-bit range")
        out.append(_T_INT)
        out += _I64.pack(value)
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out += _F64.pack(value)
    elif isinstance(value, str):
        _write_blob(out, _T_STR, value.encode("utf-8"))
    elif isinstance(value, (bytes, bytearray)):
        _write_blob(out, _T_BYTES, bytes(value))
    elif isinstance(value, (list, tuple)):
        if len(value) > _MAX_LEN:
            raise MarshallingError("list too long for HAVi TLV")
        out.append(_T_LIST)
        out += _U16.pack(len(value))
        for item in value:
            _write(out, item)
    elif isinstance(value, dict):
        if len(value) > _MAX_LEN:
            raise MarshallingError("dict too large for HAVi TLV")
        out.append(_T_DICT)
        out += _U16.pack(len(value))
        for key, member in value.items():
            if not isinstance(key, str):
                raise MarshallingError("HAVi TLV dict keys must be str")
            _write_blob(out, _T_STR, key.encode("utf-8"))
            _write(out, member)
    else:
        raise MarshallingError(f"cannot TLV-encode {type(value).__name__}")


def _write_blob(out: bytearray, tag: int, blob: bytes) -> None:
    if len(blob) > _MAX_LEN:
        raise MarshallingError("blob too long for HAVi TLV (16-bit length)")
    out.append(tag)
    out += _U16.pack(len(blob))
    out += blob


def _read(data: bytes, offset: int) -> tuple[Any, int]:
    if offset >= len(data):
        raise MarshallingError("truncated TLV: missing tag")
    tag = data[offset]
    offset += 1
    if tag == _T_NULL:
        return None, offset
    if tag == _T_BOOL:
        _need(data, offset, 1)
        return data[offset] != 0, offset + 1
    if tag == _T_INT:
        _need(data, offset, 8)
        return _I64.unpack_from(data, offset)[0], offset + 8
    if tag == _T_FLOAT:
        _need(data, offset, 8)
        return _F64.unpack_from(data, offset)[0], offset + 8
    if tag == _T_STR:
        blob, offset = _read_blob(data, offset)
        try:
            return blob.decode("utf-8"), offset
        except UnicodeDecodeError as exc:
            raise MarshallingError("invalid UTF-8 in TLV string") from exc
    if tag == _T_BYTES:
        return _read_blob(data, offset)
    if tag == _T_LIST:
        _need(data, offset, 2)
        count = _U16.unpack_from(data, offset)[0]
        offset += 2
        items = []
        for _ in range(count):
            item, offset = _read(data, offset)
            items.append(item)
        return items, offset
    if tag == _T_DICT:
        _need(data, offset, 2)
        count = _U16.unpack_from(data, offset)[0]
        offset += 2
        result: dict[str, Any] = {}
        for _ in range(count):
            if offset >= len(data) or data[offset] != _T_STR:
                raise MarshallingError("TLV dict key must be a string")
            key_blob, offset = _read_blob(data, offset + 1)
            value, offset = _read(data, offset)
            result[key_blob.decode("utf-8")] = value
        return result, offset
    raise MarshallingError(f"unknown TLV tag 0x{tag:02x}")


def _read_blob(data: bytes, offset: int) -> tuple[bytes, int]:
    _need(data, offset, 2)
    length = _U16.unpack_from(data, offset)[0]
    offset += 2
    _need(data, offset, length)
    return data[offset : offset + length], offset + length


def _need(data: bytes, offset: int, count: int) -> None:
    if offset + count > len(data):
        raise MarshallingError("truncated TLV stream")
