"""The HAVi Stream Manager.

Connects FCM plugs over isochronous 1394 channels.  Stream data never
leaves the bus: this hard boundary is the mechanism behind the paper's
Section 4.2 finding that the SOAP/HTTP gateway cannot carry multimedia
streams — the meta-middleware can *control* AV devices across islands but
cannot bridge their isochronous connections.

Data flow is simulated by periodic delivery ticks: the sink FCM's
``on_stream_data`` is invoked with the bytes accumulated per tick, so AV
sinks (displays, recorders) observe realistic byte counts at the stream's
bandwidth without per-packet events.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HaviError
from repro.net.simkernel import Event
from repro.havi.bus1394 import Bus1394
from repro.havi.dcm import Fcm

#: Bandwidths of the formats the scenarios use, bits/second.
FORMAT_BANDWIDTH = {
    "DV": 28_800_000,  # DV over 1394 (25 Mb/s video + overhead)
    "MPEG2": 8_000_000,
    "AUDIO": 1_500_000,
}

_TICK_SECONDS = 0.5


@dataclass(frozen=True)
class Plug:
    """One FCM plug: direction plus index."""

    fcm: Fcm
    direction: str  # 'out' or 'in'
    index: int = 0

    def validate(self) -> None:
        limit = self.fcm.N_OUTPUT_PLUGS if self.direction == "out" else self.fcm.N_INPUT_PLUGS
        if self.direction not in ("out", "in"):
            raise HaviError(f"plug direction must be 'out' or 'in', got {self.direction!r}")
        if not 0 <= self.index < limit:
            raise HaviError(
                f"{self.fcm.name} has no {self.direction} plug {self.index} "
                f"(limit {limit})"
            )


class StreamConnection:
    """One active isochronous connection."""

    def __init__(
        self,
        manager: "StreamManager",
        source: Plug,
        sink: Plug,
        fmt: str,
        channel: int,
        bandwidth_bps: int,
    ) -> None:
        self.manager = manager
        self.source = source
        self.sink = sink
        self.format = fmt
        self.channel = channel
        self.bandwidth_bps = bandwidth_bps
        self.bytes_delivered = 0
        self.active = True
        self._tick_event: Event | None = None

    def _start_ticks(self) -> None:
        self._tick_event = self.manager.sim.schedule(_TICK_SECONDS, self._tick)

    def _tick(self) -> None:
        if not self.active:
            return
        nbytes = int(self.bandwidth_bps / 8 * _TICK_SECONDS)
        self.bytes_delivered += nbytes
        self.sink.fcm.on_stream_data(self, nbytes)
        self._tick_event = self.manager.sim.schedule(_TICK_SECONDS, self._tick)

    def disconnect(self) -> None:
        self.manager.disconnect(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<StreamConnection {self.source.fcm.name}->{self.sink.fcm.name} "
            f"{self.format} ch={self.channel}>"
        )


class StreamManager:
    """Per-bus stream connection broker."""

    def __init__(self, bus: Bus1394) -> None:
        self.bus = bus
        self.sim = bus.sim
        self.connections: list[StreamConnection] = []

    def connect(self, source: Plug, sink: Plug, fmt: str = "DV") -> StreamConnection:
        """Set up source→sink over a fresh isochronous channel."""
        source.validate()
        sink.validate()
        if source.direction != "out" or sink.direction != "in":
            raise HaviError("stream connections run from an 'out' plug to an 'in' plug")
        if fmt not in FORMAT_BANDWIDTH:
            raise HaviError(f"unknown stream format {fmt!r}")
        self._require_on_bus(source.fcm)
        self._require_on_bus(sink.fcm)
        bandwidth = FORMAT_BANDWIDTH[fmt]
        channel = self.bus.allocate_channel(source.fcm.seid.guid, bandwidth)
        connection = StreamConnection(self, source, sink, fmt, channel, bandwidth)
        self.connections.append(connection)
        source.fcm.on_stream_connected(connection, "source")
        sink.fcm.on_stream_connected(connection, "sink")
        connection._start_ticks()
        return connection

    def disconnect(self, connection: StreamConnection) -> None:
        if connection not in self.connections:
            return
        self.connections.remove(connection)
        connection.active = False
        if connection._tick_event is not None:
            connection._tick_event.cancel()
        self.bus.release_channel(connection.channel, connection.bandwidth_bps)
        connection.source.fcm.on_stream_disconnected(connection, "source")
        connection.sink.fcm.on_stream_disconnected(connection, "sink")

    def _require_on_bus(self, fcm: Fcm) -> None:
        guids = {member.guid for member in self.bus.members}
        if fcm.seid.guid not in guids:
            raise HaviError(
                f"FCM {fcm.name!r} is not on bus {self.bus.segment.name!r}: "
                "isochronous streams cannot leave the IEEE1394 bus"
            )

    @property
    def active_connections(self) -> int:
        return len(self.connections)
