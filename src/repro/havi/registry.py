"""The HAVi Registry.

One software element (well-known local id ``0x0002``) holding attribute
records for every registered element on the bus.  Queries are attribute
subset matches, like HAVi's ``Registry::GetElement`` with comparators.
A bus reset does not clear the registry (GUIDs are stable here), but
elements of departed nodes are dropped.
"""

from __future__ import annotations

from typing import Any

from repro.errors import HaviError, ServiceNotFoundError
from repro.net.simkernel import SimFuture
from repro.havi.bus1394 import HaviNode
from repro.havi.messaging import REGISTRY_LOCAL_ID, MessagingSystem, Seid


class Registry:
    """Registry software element, hosted on one bus node."""

    def __init__(self, havi_node: HaviNode) -> None:
        self.havi_node = havi_node
        self._entries: dict[Seid, dict[str, Any]] = {}
        self.seid = havi_node.messaging.register_element(
            self._handle, local_id=REGISTRY_LOCAL_ID
        )
        havi_node.bus.on_bus_reset(self._on_bus_reset)

    # -- request dispatch ---------------------------------------------------------

    def _handle(self, src: Seid, operation: str, args: list[Any]) -> Any:
        if operation == "register":
            return self._register(Seid.from_wire(args[0]), dict(args[1]))
        if operation == "unregister":
            return self._unregister(Seid.from_wire(args[0]))
        if operation == "query":
            return self._query(dict(args[0]) if args else {})
        if operation == "get_all":
            return self._query({})
        raise HaviError(f"registry has no operation {operation!r}")

    # -- operations ------------------------------------------------------------

    def _register(self, seid: Seid, attributes: dict[str, Any]) -> bool:
        self._entries[seid] = attributes
        return True

    def _unregister(self, seid: Seid) -> bool:
        return self._entries.pop(seid, None) is not None

    def _query(self, attribute_filter: dict[str, Any]) -> list[dict[str, Any]]:
        matches = []
        for seid, attributes in sorted(self._entries.items()):
            if all(attributes.get(key) == value for key, value in attribute_filter.items()):
                matches.append({"seid": seid.to_wire(), "attributes": attributes})
        return matches

    # -- local inspection ---------------------------------------------------------

    @property
    def entry_count(self) -> int:
        return len(self._entries)

    def _on_bus_reset(self) -> None:
        live_guids = {member.guid for member in self.havi_node.bus.members}
        self._entries = {
            seid: attributes
            for seid, attributes in self._entries.items()
            if seid.guid in live_guids
        }


class RegistryClient:
    """Client-side view of the registry, used from any bus node."""

    def __init__(self, messaging: MessagingSystem, registry_seid: Seid) -> None:
        self.messaging = messaging
        self.registry_seid = registry_seid
        # A throwaway element to source requests from.
        self._seid = messaging.register_element(self._ignore)

    @staticmethod
    def for_bus(havi_node: HaviNode, registry_node: HaviNode) -> "RegistryClient":
        """Convenience: client on ``havi_node`` talking to the registry
        hosted by ``registry_node``."""
        return RegistryClient(
            havi_node.messaging, Seid(registry_node.guid, REGISTRY_LOCAL_ID)
        )

    @staticmethod
    def _ignore(src: Seid, operation: str, args: list[Any]) -> Any:
        raise HaviError("registry client element accepts no requests")

    def register(self, seid: Seid, attributes: dict[str, Any]) -> SimFuture:
        return self.messaging.send_request(
            self._seid, self.registry_seid, "register", [seid.to_wire(), attributes]
        )

    def unregister(self, seid: Seid) -> SimFuture:
        return self.messaging.send_request(
            self._seid, self.registry_seid, "unregister", [seid.to_wire()]
        )

    def query(self, attribute_filter: dict[str, Any] | None = None) -> SimFuture:
        """Resolve to a list of (Seid, attributes) tuples."""
        raw = self.messaging.send_request(
            self._seid, self.registry_seid, "query", [attribute_filter or {}]
        )
        result: SimFuture = SimFuture()

        def decode(future: SimFuture) -> None:
            exc = future.exception()
            if exc is not None:
                result.set_exception(exc)
                return
            entries = [
                (Seid.from_wire(entry["seid"]), entry["attributes"])
                for entry in future.result()
            ]
            result.set_result(entries)

        raw.add_done_callback(decode)
        return result

    def find_one(self, attribute_filter: dict[str, Any]) -> SimFuture:
        """Resolve to the first matching (Seid, attributes) or fail with
        :class:`ServiceNotFoundError`."""
        result: SimFuture = SimFuture()

        def pick(future: SimFuture) -> None:
            exc = future.exception()
            if exc is not None:
                result.set_exception(exc)
                return
            entries = future.result()
            if not entries:
                result.set_exception(
                    ServiceNotFoundError(f"no HAVi element matches {attribute_filter!r}")
                )
            else:
                result.set_result(entries[0])

        self.query(attribute_filter).add_done_callback(pick)
        return result
