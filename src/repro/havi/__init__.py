"""Simulated HAVi substrate on IEEE1394.

HAVi (paper Section 2.1) is "a digital AV networking middleware ... for
seamless interoperability among home entertainment products", targeting
IEEE1394 only.  This package reproduces the architecture the HAVi 1.1
specification describes, at the granularity the meta-middleware needs:

- :mod:`repro.havi.bus1394` — bus reset / self-identification, GUIDs and
  phy ids, and the isochronous resource manager (channel + bandwidth
  allocation) on top of :class:`repro.net.segment.IEEE1394Segment`.
- :mod:`repro.havi.codec` — HAVi's compact TLV binary encoding.
- :mod:`repro.havi.messaging` — the HAVi Messaging System: software
  elements with SEIDs exchanging request/response/event messages.
- :mod:`repro.havi.registry` — the Registry: attribute-based queries over
  registered software elements.
- :mod:`repro.havi.dcm` — Device Control Modules and Functional Control
  Modules (the HAVi device model).
- :mod:`repro.havi.fcm_types` — concrete FCM command sets (VCR, camera,
  display, AV disc, tuner).
- :mod:`repro.havi.streams` — the Stream Manager: isochronous connections
  between FCM plugs.  These connections are exactly what the paper's
  Section 4.2 found *cannot* cross a SOAP/HTTP gateway.
"""

from repro.havi.bus1394 import Bus1394, HaviNode
from repro.havi.codec import decode, encode
from repro.havi.dcm import Dcm, Fcm, FcmHandle
from repro.havi.registry import RegistryClient
from repro.havi.fcm_types import (
    AvDiscFcm,
    CameraFcm,
    DisplayFcm,
    TunerFcm,
    VcrFcm,
)
from repro.havi.messaging import MessagingSystem, Seid
from repro.havi.registry import Registry
from repro.havi.streams import StreamConnection, StreamManager

__all__ = [
    "AvDiscFcm",
    "Bus1394",
    "CameraFcm",
    "Dcm",
    "DisplayFcm",
    "Fcm",
    "FcmHandle",
    "HaviNode",
    "MessagingSystem",
    "Registry",
    "RegistryClient",
    "Seid",
    "StreamConnection",
    "StreamManager",
    "TunerFcm",
    "VcrFcm",
    "decode",
    "encode",
]
