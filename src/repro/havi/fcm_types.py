"""Concrete FCM command sets.

These are AV/C-flavoured command sets for the device kinds the paper's
scenarios use: the HAVi DV camera and TV of the prototype, a VCR for the
automatic-recording application, an AV disc (the Jini Laserdisc has a
HAVi-side twin in some tests), and a tuner.
"""

from __future__ import annotations

from typing import Any

from repro.errors import HaviError
from repro.havi.dcm import Fcm


class VcrFcm(Fcm):
    """Transport-control FCM: a tape deck."""

    FCM_TYPE = "vcr"
    N_INPUT_PLUGS = 1
    N_OUTPUT_PLUGS = 1
    COMMANDS = {
        "play": (),
        "stop": (),
        "record": (),
        "pause": (),
        "wind": ("int",),  # signed seconds; negative rewinds
        "get_transport_state": (),
        "get_position": (),
    }
    RETURNS = {
        "get_transport_state": "string",
        "get_position": "int",
        "play": "boolean",
        "stop": "boolean",
        "record": "boolean",
        "pause": "boolean",
        "wind": "int",
    }

    STATES = ("STOP", "PLAY", "RECORD", "PAUSE")
    TAPE_LENGTH = 3 * 3600  # seconds

    def __init__(self, dcm, name=None):
        super().__init__(dcm, name)
        self.state = "STOP"
        self.position = 0
        self.recorded_spans: list[tuple[int, int]] = []
        self._record_started_at: int | None = None

    def play(self) -> bool:
        self._finish_recording()
        self._transition("PLAY")
        return True

    def stop(self) -> bool:
        self._finish_recording()
        self._transition("STOP")
        return True

    def record(self) -> bool:
        if self.state == "RECORD":
            return True
        self._transition("RECORD")
        self._record_started_at = self.position
        return True

    def pause(self) -> bool:
        self._finish_recording()
        self._transition("PAUSE")
        return True

    def _transition(self, state: str) -> None:
        if state != self.state:
            self.state = state
            self.post_event("transport_state", state)

    def wind(self, seconds: int) -> int:
        if self.state == "RECORD":
            raise HaviError("cannot wind while recording")
        self.position = max(0, min(self.TAPE_LENGTH, self.position + int(seconds)))
        return self.position

    def get_transport_state(self) -> str:
        return self.state

    def get_position(self) -> int:
        return self.position

    def advance(self, seconds: int) -> None:
        """Test/simulation helper: tape moves while playing or recording."""
        if self.state in ("PLAY", "RECORD"):
            self.position = min(self.TAPE_LENGTH, self.position + seconds)

    def _finish_recording(self) -> None:
        if self.state == "RECORD" and self._record_started_at is not None:
            self.recorded_spans.append((self._record_started_at, self.position))
            self._record_started_at = None


class CameraFcm(Fcm):
    """DV camera FCM — the device in the paper's Figure 5."""

    FCM_TYPE = "camera"
    N_OUTPUT_PLUGS = 1
    COMMANDS = {
        "start_capture": (),
        "stop_capture": (),
        "zoom": ("int",),  # 1..10
        "pan": ("int",),  # degrees, -90..90
        "get_status": (),
    }
    RETURNS = {
        "start_capture": "boolean",
        "stop_capture": "boolean",
        "zoom": "int",
        "pan": "int",
        "get_status": "anyType",
    }

    def __init__(self, dcm, name=None):
        super().__init__(dcm, name)
        self.capturing = False
        self.zoom_level = 1
        self.pan_angle = 0

    def start_capture(self) -> bool:
        if not self.capturing:
            self.capturing = True
            self.post_event("capture", True)
        return True

    def stop_capture(self) -> bool:
        if self.capturing:
            self.capturing = False
            self.post_event("capture", False)
        return True

    def zoom(self, level: int) -> int:
        if not 1 <= int(level) <= 10:
            raise HaviError(f"zoom level {level} out of range 1..10")
        self.zoom_level = int(level)
        return self.zoom_level

    def pan(self, degrees: int) -> int:
        if not -90 <= int(degrees) <= 90:
            raise HaviError(f"pan angle {degrees} out of range -90..90")
        self.pan_angle = int(degrees)
        return self.pan_angle

    def get_status(self) -> dict[str, Any]:
        return {
            "capturing": self.capturing,
            "zoom": self.zoom_level,
            "pan": self.pan_angle,
        }


class DisplayFcm(Fcm):
    """Display FCM: the digital TV of the smart-home scenario."""

    FCM_TYPE = "display"
    N_INPUT_PLUGS = 1
    COMMANDS = {
        "power_on": (),
        "power_off": (),
        "set_input": ("string",),
        "show_message": ("string",),
        "get_status": (),
    }
    RETURNS = {
        "power_on": "boolean",
        "power_off": "boolean",
        "set_input": "string",
        "show_message": "boolean",
        "get_status": "anyType",
    }

    INPUTS = ("tuner", "1394", "composite")

    def __init__(self, dcm, name=None):
        super().__init__(dcm, name)
        self.powered = False
        self.input = "tuner"
        self.messages: list[str] = []
        self.bytes_displayed = 0

    def power_on(self) -> bool:
        self.powered = True
        return True

    def power_off(self) -> bool:
        self.powered = False
        return True

    def set_input(self, source: str) -> str:
        if source not in self.INPUTS:
            raise HaviError(f"unknown input {source!r}")
        self.input = source
        return self.input

    def show_message(self, text: str) -> bool:
        self.messages.append(str(text))
        return True

    def get_status(self) -> dict[str, Any]:
        return {"powered": self.powered, "input": self.input}

    def on_stream_data(self, connection: Any, nbytes: int) -> None:
        self.bytes_displayed += nbytes


class AvDiscFcm(Fcm):
    """AV disc FCM (Laserdisc/DVD-style chapter playback)."""

    FCM_TYPE = "avdisc"
    N_OUTPUT_PLUGS = 1
    COMMANDS = {
        "play": (),
        "stop": (),
        "next_chapter": (),
        "previous_chapter": (),
        "goto_chapter": ("int",),
        "get_chapter": (),
        "get_state": (),
    }
    RETURNS = {
        "play": "boolean",
        "stop": "boolean",
        "next_chapter": "int",
        "previous_chapter": "int",
        "goto_chapter": "int",
        "get_chapter": "int",
        "get_state": "string",
    }

    CHAPTERS = 24

    def __init__(self, dcm, name=None):
        super().__init__(dcm, name)
        self.playing = False
        self.chapter = 1

    def play(self) -> bool:
        self.playing = True
        return True

    def stop(self) -> bool:
        self.playing = False
        return True

    def next_chapter(self) -> int:
        return self.goto_chapter(self.chapter + 1)

    def previous_chapter(self) -> int:
        return self.goto_chapter(self.chapter - 1)

    def goto_chapter(self, chapter: int) -> int:
        self.chapter = max(1, min(self.CHAPTERS, int(chapter)))
        return self.chapter

    def get_chapter(self) -> int:
        return self.chapter

    def get_state(self) -> str:
        return "PLAY" if self.playing else "STOP"


class TunerFcm(Fcm):
    """Broadcast tuner FCM."""

    FCM_TYPE = "tuner"
    N_OUTPUT_PLUGS = 1
    COMMANDS = {
        "set_channel": ("int",),
        "get_channel": (),
        "channel_up": (),
        "channel_down": (),
    }
    RETURNS = {
        "set_channel": "int",
        "get_channel": "int",
        "channel_up": "int",
        "channel_down": "int",
    }

    MAX_CHANNEL = 999

    def __init__(self, dcm, name=None):
        super().__init__(dcm, name)
        self.channel = 1

    def set_channel(self, channel: int) -> int:
        channel = int(channel)
        if not 1 <= channel <= self.MAX_CHANNEL:
            raise HaviError(f"channel {channel} out of range")
        self.channel = channel
        return self.channel

    def get_channel(self) -> int:
        return self.channel

    def channel_up(self) -> int:
        return self.set_channel(min(self.MAX_CHANNEL, self.channel + 1))

    def channel_down(self) -> int:
        return self.set_channel(max(1, self.channel - 1))
