"""Device Control Modules and Functional Control Modules.

HAVi models a device as a DCM hosting one FCM per controllable function
(a camcorder = one DCM with a VCR FCM and a camera FCM, say).  Each FCM
exposes a typed *command set*; the HAVi PCM later turns command sets into
neutral service interfaces, so FCMs also answer a ``_describe`` request
with their own machine-readable description.
"""

from __future__ import annotations

from typing import Any

from repro.errors import HaviError
from repro.net.simkernel import SimFuture
from repro.havi.bus1394 import HaviNode
from repro.havi.messaging import MessagingSystem, Seid
from repro.havi.registry import RegistryClient


class Fcm:
    """Base functional control module.

    Subclasses declare ``FCM_TYPE``, a ``COMMANDS`` table mapping operation
    names to parameter type tuples (types are ``int`` / ``double`` /
    ``string`` / ``boolean``), an optional ``RETURNS`` table, and implement
    each operation as a plain method.
    """

    FCM_TYPE = "generic"
    COMMANDS: dict[str, tuple[str, ...]] = {}
    RETURNS: dict[str, str] = {}
    N_INPUT_PLUGS = 0
    N_OUTPUT_PLUGS = 0

    def __init__(self, dcm: "Dcm", name: str | None = None) -> None:
        self.dcm = dcm
        self.name = name or f"{dcm.device_name}.{self.FCM_TYPE}"
        self.seid = dcm.havi_node.messaging.register_element(self._handle)
        self.huid = f"{self.seid.guid:x}:{self.seid.local:x}"
        dcm.fcms.append(self)

    # -- request dispatch ---------------------------------------------------------

    def _handle(self, src: Seid, operation: str, args: list[Any]) -> Any:
        if operation == "_describe":
            return self.describe()
        if operation not in self.COMMANDS:
            raise HaviError(f"FCM {self.name!r} has no command {operation!r}")
        expected = self.COMMANDS[operation]
        if len(args) != len(expected):
            raise HaviError(
                f"{self.name}.{operation} expects {len(expected)} args, got {len(args)}"
            )
        return getattr(self, operation)(*args)

    def describe(self) -> dict[str, Any]:
        """Machine-readable command-set description."""
        return {
            "fcm_type": self.FCM_TYPE,
            "name": self.name,
            "huid": self.huid,
            "commands": {op: list(params) for op, params in self.COMMANDS.items()},
            "returns": dict(self.RETURNS),
        }

    def attributes(self) -> dict[str, Any]:
        """Registry attributes for this FCM."""
        attributes = {
            "element_type": "fcm",
            "fcm_type": self.FCM_TYPE,
            "device_name": self.dcm.device_name,
            "device_class": self.dcm.device_class,
            "huid": self.huid,
        }
        if self.dcm.room:
            attributes["room"] = self.dcm.room
        return attributes

    # -- events ------------------------------------------------------------

    def post_event(self, event_type: str, payload: Any = None) -> None:
        """Broadcast a HAVi event from this FCM to every bus node (the
        HAVi Event Manager role).  The HAVi PCM republishes these on the
        framework bus as ``havi.<event_type>``."""
        self.dcm.havi_node.messaging.send_event(
            self.seid,
            {
                "event_type": event_type,
                "source_huid": self.huid,
                "device_name": self.dcm.device_name,
                "payload": payload,
            },
        )

    # -- stream hooks (overridden by AV FCMs) ----------------------------------

    def on_stream_connected(self, connection: Any, role: str) -> None:
        """Called by the stream manager; ``role`` is 'source' or 'sink'."""

    def on_stream_data(self, connection: Any, nbytes: int) -> None:
        """Sink-side periodic data arrival callback."""

    def on_stream_disconnected(self, connection: Any, role: str) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} seid={self.seid}>"


class Dcm:
    """Device control module: the device-level software element."""

    def __init__(
        self,
        havi_node: HaviNode,
        device_name: str,
        device_class: str,
        vendor: str = "Reproduction Electronics",
        room: str = "",
    ) -> None:
        self.havi_node = havi_node
        self.device_name = device_name
        self.device_class = device_class
        self.vendor = vendor
        self.room = room
        self.fcms: list[Fcm] = []
        self.seid = havi_node.messaging.register_element(self._handle)

    def _handle(self, src: Seid, operation: str, args: list[Any]) -> Any:
        if operation == "get_device_info":
            return {
                "device_name": self.device_name,
                "device_class": self.device_class,
                "vendor": self.vendor,
                "fcm_seids": [fcm.seid.to_wire() for fcm in self.fcms],
            }
        raise HaviError(f"DCM {self.device_name!r} has no operation {operation!r}")

    def attributes(self) -> dict[str, Any]:
        attributes = {
            "element_type": "dcm",
            "device_name": self.device_name,
            "device_class": self.device_class,
            "vendor": self.vendor,
        }
        if self.room:
            attributes["room"] = self.room
        return attributes

    def register(self, registry: RegistryClient) -> SimFuture:
        """Register the DCM and all its FCMs; resolves when every
        registration has been acknowledged."""
        futures = [registry.register(self.seid, self.attributes())]
        futures += [registry.register(fcm.seid, fcm.attributes()) for fcm in self.fcms]
        result: SimFuture = SimFuture()
        remaining = len(futures)

        def one_done(future: SimFuture) -> None:
            nonlocal remaining
            exc = future.exception()
            if exc is not None:
                if not result.done():
                    result.set_exception(exc)
                return
            remaining -= 1
            if remaining == 0 and not result.done():
                result.set_result(True)

        for future in futures:
            future.add_done_callback(one_done)
        return result


class FcmHandle:
    """Client-side handle on a (possibly remote) FCM."""

    def __init__(self, messaging: MessagingSystem, seid: Seid) -> None:
        self.messaging = messaging
        self.seid = seid
        self._src = messaging.register_element(self._reject)

    @staticmethod
    def _reject(src: Seid, operation: str, args: list[Any]) -> Any:
        raise HaviError("FCM handles accept no inbound requests")

    def call(self, operation: str, *args: Any) -> SimFuture:
        return self.messaging.send_request(self._src, self.seid, operation, list(args))

    def describe(self) -> SimFuture:
        return self.call("_describe")
