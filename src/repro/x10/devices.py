"""X10 device modules on the powerline.

Modules implement real X10 selection semantics: an address frame *selects*
matching units (and deselects other units of the same house); a following
function frame acts on all currently selected units of its house code.
``ALL_UNITS_OFF`` / ``ALL_LIGHTS_ON`` act house-wide regardless of
selection.
"""

from __future__ import annotations

from typing import Callable

from repro.net.network import Network
from repro.net.segment import PowerlineSegment
from repro.x10.codes import X10Address, X10Function
from repro.x10.controller import DIM_STEPS
from repro.x10.powerline import PowerlineTransceiver, X10Signal


class X10Module:
    """Base receiver module at one address."""

    IS_LIGHT = False

    def __init__(self, network: Network, name: str, powerline: PowerlineSegment | str, address: X10Address) -> None:
        self.network = network
        self.address = address
        self.node = network.create_node(name)
        self.transceiver = PowerlineTransceiver(network, self.node, powerline)
        self.transceiver.on_signal(self._on_signal)
        self.selected = False
        self.on = False

    # -- powerline protocol ------------------------------------------------------

    def _on_signal(self, signal: X10Signal) -> None:
        if not signal.is_function:
            if signal.address.house != self.address.house:
                return
            self.selected = signal.address.unit == self.address.unit
            return
        if signal.house != self.address.house:
            return
        function = signal.function
        if function == X10Function.ALL_UNITS_OFF:
            self._apply_off()
        elif function == X10Function.ALL_LIGHTS_ON and self.IS_LIGHT:
            self._apply_on()
        elif function == X10Function.ALL_LIGHTS_OFF and self.IS_LIGHT:
            self._apply_off()
        elif self.selected:
            self.handle_function(function, signal.dims)

    def handle_function(self, function: X10Function, dims: int) -> None:
        if function == X10Function.ON:
            self._apply_on()
        elif function == X10Function.OFF:
            self._apply_off()
        elif function == X10Function.STATUS_REQUEST:
            # Two-way X10: the addressed module answers with a status
            # function frame (house-wide; the asker correlates by house).
            reply = X10Function.STATUS_ON if self.on else X10Function.STATUS_OFF
            self.transceiver.transmit_function(self.address.house, reply)

    def _apply_on(self) -> None:
        self.on = True

    def _apply_off(self) -> None:
        self.on = False


class ApplianceModule(X10Module):
    """Relay module: on/off only (dims are ignored, as on real hardware)."""


class LampModule(X10Module):
    """Lamp module: on/off plus 22-step dimming."""

    IS_LIGHT = True

    def __init__(self, network, name, powerline, address):
        super().__init__(network, name, powerline, address)
        self.level = 0  # percent, 0-100

    def handle_function(self, function: X10Function, dims: int) -> None:
        if function == X10Function.DIM:
            self.on = True
            self.level = max(0, self.level - self._percent(dims))
        elif function == X10Function.BRIGHT:
            self.on = True
            self.level = min(100, self.level + self._percent(dims))
        else:
            super().handle_function(function, dims)

    def _apply_on(self) -> None:
        self.on = True
        self.level = 100

    def _apply_off(self) -> None:
        self.on = False
        self.level = 0

    @staticmethod
    def _percent(dims: int) -> int:
        return round(max(1, dims) * 100 / DIM_STEPS)


class MotionSensor:
    """PIR sensor: transmits its address + ON when motion is detected (and
    OFF after a quiet period, like real X10 sensors)."""

    def __init__(
        self,
        network: Network,
        name: str,
        powerline: PowerlineSegment | str,
        address: X10Address,
        off_delay: float = 30.0,
    ) -> None:
        self.network = network
        self.sim = network.sim
        self.address = address
        self.off_delay = off_delay
        self.node = network.create_node(name)
        self.transceiver = PowerlineTransceiver(network, self.node, powerline)
        self.triggers = 0
        self._off_event = None

    def trigger(self) -> None:
        """Simulate motion in front of the sensor."""
        self.triggers += 1
        self.transceiver.transmit_command(self.address, X10Function.ON)
        if self._off_event is not None:
            self._off_event.cancel()
        self._off_event = self.sim.schedule(self.off_delay, self._send_off)

    def _send_off(self) -> None:
        self._off_event = None
        self.transceiver.transmit_command(self.address, X10Function.OFF)


class RemoteHandset:
    """The handheld X10 remote of the paper's Figure 5.

    Each button maps to an (address, function) pair; pressing it transmits
    the standard two-frame sequence on the powerline (via the plug-in
    transceiver module real handsets use).
    """

    def __init__(self, network: Network, name: str, powerline: PowerlineSegment | str) -> None:
        self.network = network
        self.node = network.create_node(name)
        self.transceiver = PowerlineTransceiver(network, self.node, powerline)
        self.presses: list[tuple[X10Address, X10Function]] = []

    def press(self, address: X10Address, function: X10Function = X10Function.ON, dims: int = 0) -> float:
        """Press a button; returns the virtual time the powerline frames
        finish transmitting."""
        self.presses.append((address, function))
        return self.transceiver.transmit_command(address, function, dims)

    def press_on(self, address: X10Address) -> float:
        return self.press(address, X10Function.ON)

    def press_off(self, address: X10Address) -> float:
        return self.press(address, X10Function.OFF)
