"""Powerline transceivers.

An X10 transmission on the wire is modelled as one 2-byte frame:
``[code byte, flags byte]``.  The code byte carries house+unit (address
frames) or house+function (function frames); the flags byte marks which it
is and carries the dim repeat count for DIM/BRIGHT.  At powerline bandwidth
this frame costs ~0.33 virtual seconds — so an address+function pair lands
around 0.7 s, matching real X10's order of magnitude and dominating every
cross-middleware latency that ends at an X10 device (experiment F4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import X10Error
from repro.net.frames import Frame
from repro.net.network import Network
from repro.net.node import Interface, Node
from repro.net.segment import PowerlineSegment, Segment
from repro.x10.codes import (
    X10Address,
    X10Function,
    decode_address_byte,
    decode_function_byte,
    encode_address_byte,
    encode_function_byte,
)

PROTO_X10 = "x10"

_FLAG_FUNCTION = 0x01


@dataclass(frozen=True)
class X10Signal:
    """One decoded powerline transmission."""

    is_function: bool
    address: X10Address | None = None
    house: str = ""
    function: X10Function | None = None
    dims: int = 0

    @staticmethod
    def for_address(address: X10Address) -> "X10Signal":
        return X10Signal(is_function=False, address=address, house=address.house)

    @staticmethod
    def for_function(house: str, function: X10Function, dims: int = 0) -> "X10Signal":
        return X10Signal(is_function=True, house=house, function=function, dims=dims)

    def encode(self) -> bytes:
        if self.is_function:
            if self.function is None:
                raise X10Error("function signal without a function code")
            flags = _FLAG_FUNCTION | ((self.dims & 0x1F) << 1)
            return bytes([encode_function_byte(self.house, self.function), flags])
        if self.address is None:
            raise X10Error("address signal without an address")
        return bytes([encode_address_byte(self.address), 0])

    @staticmethod
    def decode(payload: bytes) -> "X10Signal":
        if len(payload) != 2:
            raise X10Error(f"X10 frame must be 2 bytes, got {len(payload)}")
        code, flags = payload[0], payload[1]
        if flags & _FLAG_FUNCTION:
            house, function = decode_function_byte(code)
            return X10Signal.for_function(house, function, dims=(flags >> 1) & 0x1F)
        return X10Signal.for_address(decode_address_byte(code))

    def __str__(self) -> str:
        if self.is_function:
            suffix = f" dims={self.dims}" if self.dims else ""
            return f"{self.house}:{self.function.name}{suffix}"
        return f"addr {self.address}"


class PowerlineTransceiver:
    """Attachment of one node to the powerline, speaking X10 frames."""

    def __init__(
        self,
        network: Network,
        node: Node,
        powerline: PowerlineSegment | Segment | str,
    ) -> None:
        if isinstance(powerline, str):
            powerline = network.segment(powerline)
        self.network = network
        self.node = node
        self.interface: Interface = network.attach(node, powerline)
        self._listeners: list[Callable[[X10Signal], None]] = []
        node.register_protocol(PROTO_X10, self._on_frame)
        self.signals_sent = 0
        self.signals_received = 0

    def on_signal(self, listener: Callable[[X10Signal], None]) -> None:
        self._listeners.append(listener)

    def transmit(self, signal: X10Signal) -> float:
        """Send one signal; returns virtual completion time of the frame."""
        self.signals_sent += 1
        return self.interface.broadcast(PROTO_X10, signal.encode(), note=str(signal))

    def transmit_address(self, address: X10Address) -> float:
        return self.transmit(X10Signal.for_address(address))

    def transmit_function(self, house: str, function: X10Function, dims: int = 0) -> float:
        return self.transmit(X10Signal.for_function(house, function, dims))

    def transmit_command(self, address: X10Address, function: X10Function, dims: int = 0) -> float:
        """The standard two-frame sequence: address then function."""
        self.transmit_address(address)
        return self.transmit_function(address.house, function, dims)

    def _on_frame(self, interface: Interface, frame: Frame) -> None:
        try:
            signal = X10Signal.decode(frame.payload)
        except X10Error:
            return  # powerline noise
        self.signals_received += 1
        for listener in list(self._listeners):
            listener(signal)
