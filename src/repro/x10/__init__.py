"""Simulated X10 substrate.

X10 is the fourth middleware of the paper's prototype (Figure 3) and the
heart of its Universal Remote Controller application (Figure 5).  It is a
1970s powerline-carrier protocol: devices listen on the mains for 4-bit
house and unit codes; a PC drives the powerline through a CM11A controller
attached over RS-232.  This package reproduces that stack:

- :mod:`repro.x10.codes` — the real X10 house/unit nibble encoding tables
  and function codes (from the CM11A programming protocol document the
  paper cites as [15]).
- :mod:`repro.x10.powerline` — transceivers exchanging 2-byte X10 frames
  on a :class:`repro.net.segment.PowerlineSegment` at powerline speed
  (~0.3 s per frame — the slowest medium in the whole simulation).
- :mod:`repro.x10.cm11a` — the CM11A serial protocol: header/code bytes,
  checksum handshakes, 0x55 ready signals, and the 0x5A poll sequence for
  received events, byte-for-byte in the style of the real device.
- :mod:`repro.x10.controller` — :class:`X10Controller`, the high-level PC
  API (turn_on / turn_off / dim / events).
- :mod:`repro.x10.devices` — lamp and appliance modules, motion sensors
  and the remote handset.
"""

from repro.x10.cm11a import Cm11aDriver, Cm11aInterface
from repro.x10.codes import (
    FUNCTION_NAMES,
    X10Address,
    X10Function,
    decode_address_byte,
    decode_function_byte,
    encode_address_byte,
    encode_function_byte,
)
from repro.x10.controller import X10Controller
from repro.x10.devices import (
    ApplianceModule,
    LampModule,
    MotionSensor,
    RemoteHandset,
)
from repro.x10.powerline import PowerlineTransceiver, X10Signal

__all__ = [
    "ApplianceModule",
    "Cm11aDriver",
    "Cm11aInterface",
    "FUNCTION_NAMES",
    "LampModule",
    "MotionSensor",
    "PowerlineTransceiver",
    "RemoteHandset",
    "X10Address",
    "X10Controller",
    "X10Function",
    "X10Signal",
    "decode_address_byte",
    "decode_function_byte",
    "encode_address_byte",
    "encode_function_byte",
]
