"""The CM11A serial protocol.

The CM11A is the PC-to-powerline controller the paper's prototype used for
its X10 PCM (reference [15] is the CM11A programming protocol).  The byte
exchanges reproduced here follow that document:

PC transmits an X10 signal::

    PC  -> CM11A   [header, code]         header = dims<<3 | 0x04 | F
    CM11A -> PC    checksum               (header + code) & 0xFF
    PC  -> CM11A   0x00                   acknowledge
    CM11A -> PC    0x55                   interface ready (after powerline tx)

CM11A uploads received powerline data::

    CM11A -> PC    0x5A                   poll (repeated until answered)
    PC  -> CM11A   0xC3                   poll acknowledge
    CM11A -> PC    [size, fmap, bytes...] fmap bit i set = byte i is a function

A bad checksum makes the PC resend, which the failure-injection tests
exercise by corrupting the serial link.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ChecksumError, NetworkError, X10Error
from repro.net.frames import Frame
from repro.net.network import Network
from repro.net.node import Interface, Node
from repro.net.segment import PowerlineSegment, Segment, SerialLink
from repro.net.simkernel import SimFuture
from repro.x10.codes import X10Address, X10Function, decode_function_byte
from repro.x10.powerline import PowerlineTransceiver, X10Signal

PROTO_SERIAL = "serial"

_ACK = 0x00
_READY = 0x55
_POLL = 0x5A
_POLL_ACK = 0xC3

_HDR_ALWAYS = 0x04
_HDR_FUNCTION = 0x02

_POLL_INTERVAL = 0.5
_RX_BUFFER_LIMIT = 8
_MAX_SEND_RETRIES = 3


def make_header(is_function: bool, dims: int = 0) -> int:
    """CM11A transmission header byte: dims<<3 | 0x04 | function bit."""
    header = _HDR_ALWAYS | ((dims & 0x1F) << 3)
    if is_function:
        header |= _HDR_FUNCTION
    return header


class _SerialPort:
    """Byte-oriented endpoint on a serial link."""

    def __init__(self, network: Network, node: Node, link: SerialLink | Segment | str) -> None:
        if isinstance(link, str):
            link = network.segment(link)
        self.interface: Interface = network.attach(node, link)
        self._on_byte: Callable[[int], None] | None = None
        node.register_protocol(PROTO_SERIAL, self._on_frame)

    def set_receiver(self, on_byte: Callable[[int], None]) -> None:
        self._on_byte = on_byte

    def write(self, data: bytes) -> None:
        try:
            self.interface.broadcast(PROTO_SERIAL, data)
        except NetworkError:
            pass  # writing into a dead serial line loses bytes, silently

    def _on_frame(self, interface: Interface, frame: Frame) -> None:
        if self._on_byte is None:
            return
        for byte in frame.payload:
            self._on_byte(byte)


class Cm11aInterface:
    """The CM11A box: bridges the serial link and the powerline."""

    def __init__(
        self,
        network: Network,
        name: str,
        serial_link: SerialLink | str,
        powerline: PowerlineSegment | str,
    ) -> None:
        self.network = network
        self.sim = network.sim
        self.node = network.create_node(name)
        self.port = _SerialPort(network, self.node, serial_link)
        self.port.set_receiver(self._on_serial_byte)
        self.transceiver = PowerlineTransceiver(network, self.node, powerline)
        self.transceiver.on_signal(self._on_powerline_signal)
        # Serial-side state.
        self._tx_pending: list[int] = []  # bytes of an in-progress PC transmission
        self._awaiting_ack: tuple[int, int] | None = None
        self._rx_buffer: list[tuple[int, bool]] = []  # (code byte, is_function)
        self._polling = False
        self.transmissions = 0
        self.uploads = 0

    # -- serial side ------------------------------------------------------------

    def _on_serial_byte(self, byte: int) -> None:
        if byte == _POLL_ACK and self._polling:
            self._polling = False
            self._upload_buffer()
            return
        if self._awaiting_ack is not None:
            if byte == _ACK:
                header, code = self._awaiting_ack
                self._awaiting_ack = None
                self._transmit_on_powerline(header, code)
            else:
                # PC rejected the checksum: drop the staged transmission.
                self._awaiting_ack = None
            return
        self._tx_pending.append(byte)
        if len(self._tx_pending) >= 2:
            header, code = self._tx_pending[0], self._tx_pending[1]
            self._tx_pending = self._tx_pending[2:]
            self._awaiting_ack = (header, code)
            self.port.write(bytes([(header + code) & 0xFF]))

    def _transmit_on_powerline(self, header: int, code: int) -> None:
        is_function = bool(header & _HDR_FUNCTION)
        dims = (header >> 3) & 0x1F
        flags = (0x01 | ((dims & 0x1F) << 1)) if is_function else 0
        payload = bytes([code, flags])
        try:
            signal = X10Signal.decode(payload)
        except X10Error:
            return  # unencodable; the real box would transmit garbage
        done_at = self.transceiver.transmit(signal)
        self.transmissions += 1
        # Interface-ready byte goes out once the powerline transmission ends.
        delay = max(0.0, done_at - self.sim.now)
        self.sim.schedule(delay, self.port.write, bytes([_READY]))

    # -- powerline side -----------------------------------------------------------

    def _on_powerline_signal(self, signal: X10Signal) -> None:
        code = signal.encode()[0]
        # Our own transmissions do not echo back (segments don't loop), so
        # anything arriving here came from another transmitter.
        if len(self._rx_buffer) >= _RX_BUFFER_LIMIT:
            return  # real CM11A overruns silently
        self._rx_buffer.append((code, signal.is_function))
        self._start_polling()

    def _start_polling(self) -> None:
        if self._polling or not self._rx_buffer:
            return
        self._polling = True
        self._poll_once()

    def _poll_once(self) -> None:
        if not self._polling:
            return
        self.port.write(bytes([_POLL]))
        self.sim.schedule(_POLL_INTERVAL, self._poll_once)

    def _upload_buffer(self) -> None:
        buffered, self._rx_buffer = self._rx_buffer[:_RX_BUFFER_LIMIT], []
        fmap = 0
        data = []
        for index, (code, is_function) in enumerate(buffered):
            if is_function:
                fmap |= 1 << index
            data.append(code)
        self.uploads += 1
        self.port.write(bytes([len(data), fmap] + data))


class Cm11aDriver:
    """PC-side driver: commands out, received events in.

    The driver attaches an *existing* node (typically the gateway PC) to the
    serial link; the node may have other interfaces.
    """

    def __init__(self, network: Network, node: Node, serial_link: SerialLink | str) -> None:
        self.network = network
        self.sim = network.sim
        self.node = node
        self.port = _SerialPort(network, node, serial_link)
        self.port.set_receiver(self._on_serial_byte)
        self._event_listeners: list[Callable[[X10Signal], None]] = []
        # Driver transmit state machine.
        self._state = "idle"  # idle | wait_checksum | wait_ready | rx_head | rx_data
        self._queue: list[tuple[int, int, SimFuture, int]] = []
        self._current: tuple[int, int, SimFuture, int] | None = None
        self._command_queue: list[tuple[X10Address, X10Function, int, SimFuture]] = []
        self._command_active = False
        self._rx_expect = 0
        self._rx_bytes: list[int] = []
        self.commands_sent = 0
        self.events_received = 0
        self.checksum_retries = 0

    def on_event(self, listener: Callable[[X10Signal], None]) -> None:
        """Register for signals the CM11A hears on the powerline."""
        self._event_listeners.append(listener)

    # -- transmit API ----------------------------------------------------------

    def send_raw(self, header: int, code: int) -> SimFuture:
        """Send one [header, code] transmission; resolves on 0x55 ready."""
        future: SimFuture = SimFuture()
        self._queue.append((header, code, future, 0))
        self._pump()
        return future

    def send_signal(self, signal: X10Signal) -> SimFuture:
        header = make_header(signal.is_function, signal.dims)
        return self.send_raw(header, signal.encode()[0])

    def send_command(self, address: X10Address, function: X10Function, dims: int = 0) -> SimFuture:
        """Standard command: address transmission then function transmission.

        Commands are serialised whole: interleaving two commands' address
        and function frames would let the second address frame *deselect*
        the first command's unit on the powerline (X10's selection
        semantics), so the next command starts only after this command's
        function frame is on the wire.  Resolves when the function's ready
        byte arrives.
        """
        result: SimFuture = SimFuture()
        self._command_queue.append((address, function, dims, result))
        self.commands_sent += 1
        self._pump_commands()
        return result

    def _pump_commands(self) -> None:
        if self._command_active or not self._command_queue:
            return
        self._command_active = True
        address, function, dims, result = self._command_queue.pop(0)

        def finish(exc: BaseException | None) -> None:
            self._command_active = False
            if exc is not None:
                result.set_exception(exc)
            else:
                result.set_result(None)
            self._pump_commands()

        def after_address(done: SimFuture) -> None:
            exc = done.exception()
            if exc is not None:
                finish(exc)
                return
            function_future = self.send_signal(
                X10Signal.for_function(address.house, function, dims)
            )
            function_future.add_done_callback(lambda f: finish(f.exception()))

        self.send_signal(X10Signal.for_address(address)).add_done_callback(after_address)

    # -- serial receive state machine --------------------------------------------

    def _pump(self) -> None:
        if self._state != "idle" or self._current is not None or not self._queue:
            return
        self._current = self._queue.pop(0)
        header, code, _future, _retries = self._current
        self._state = "wait_checksum"
        self.port.write(bytes([header, code]))

    def _on_serial_byte(self, byte: int) -> None:
        if self._state == "wait_checksum":
            self._handle_checksum(byte)
        elif self._state == "wait_ready":
            if byte == _READY:
                current, self._current = self._current, None
                self._state = "idle"
                current[2].set_result(None)
                self._pump()
            elif byte == _POLL:
                pass  # box will poll again once we're idle
        elif self._state == "rx_head":
            self._rx_expect = byte + 1  # size byte counts data; fmap follows
            self._rx_bytes = []
            self._state = "rx_data"
        elif self._state == "rx_data":
            self._rx_bytes.append(byte)
            if len(self._rx_bytes) >= self._rx_expect:
                self._finish_upload()
        elif byte == _POLL:
            self._state = "rx_head"
            self.port.write(bytes([_POLL_ACK]))

    def _handle_checksum(self, byte: int) -> None:
        header, code, future, retries = self._current
        expected = (header + code) & 0xFF
        if byte == expected:
            self._state = "wait_ready"
            self.port.write(bytes([_ACK]))
            return
        # Checksum mismatch: abort this attempt and retry.
        self.checksum_retries += 1
        self.port.write(bytes([0xFF]))  # anything but 0x00 cancels
        self._current = None
        self._state = "idle"
        if retries + 1 >= _MAX_SEND_RETRIES:
            future.set_exception(
                ChecksumError(
                    f"checksum failed {retries + 1} times (got 0x{byte:02x}, "
                    f"want 0x{expected:02x})"
                )
            )
        else:
            self._queue.insert(0, (header, code, future, retries + 1))
        self._pump()

    def _finish_upload(self) -> None:
        fmap = self._rx_bytes[0]
        data = self._rx_bytes[1:]
        self._state = "idle"
        self._rx_bytes = []
        for index, code in enumerate(data):
            is_function = bool(fmap & (1 << index))
            flags = 0x01 if is_function else 0x00
            try:
                signal = X10Signal.decode(bytes([code, flags]))
            except X10Error:
                continue
            self.events_received += 1
            for listener in list(self._event_listeners):
                listener(signal)
        self._pump()
