"""X10 code tables, as specified in the CM11A programming protocol.

X10's house codes A–P and unit codes 1–16 do not map to binary in order;
both use the same non-monotonic nibble table reproduced below.  Getting
this right matters because the CM11A benchmark asserts byte-exact frames.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.errors import X10Error

#: House code letter -> 4-bit code (CM11A spec table).
HOUSE_CODES = {
    "A": 0b0110, "B": 0b1110, "C": 0b0010, "D": 0b1010,
    "E": 0b0001, "F": 0b1001, "G": 0b0101, "H": 0b1101,
    "I": 0b0111, "J": 0b1111, "K": 0b0011, "L": 0b1011,
    "M": 0b0000, "N": 0b1000, "O": 0b0100, "P": 0b1100,
}

#: Unit number (1-16) -> 4-bit code (same table shifted to numbers).
UNIT_CODES = {
    1: 0b0110, 2: 0b1110, 3: 0b0010, 4: 0b1010,
    5: 0b0001, 6: 0b1001, 7: 0b0101, 8: 0b1101,
    9: 0b0111, 10: 0b1111, 11: 0b0011, 12: 0b1011,
    13: 0b0000, 14: 0b1000, 15: 0b0100, 16: 0b1100,
}

_HOUSE_FROM_CODE = {code: letter for letter, code in HOUSE_CODES.items()}
_UNIT_FROM_CODE = {code: unit for unit, code in UNIT_CODES.items()}


class X10Function(IntEnum):
    """4-bit X10 function codes."""

    ALL_UNITS_OFF = 0b0000
    ALL_LIGHTS_ON = 0b0001
    ON = 0b0010
    OFF = 0b0011
    DIM = 0b0100
    BRIGHT = 0b0101
    ALL_LIGHTS_OFF = 0b0110
    EXTENDED_CODE = 0b0111
    HAIL_REQUEST = 0b1000
    HAIL_ACK = 0b1001
    PRESET_DIM_1 = 0b1010
    PRESET_DIM_2 = 0b1011
    EXTENDED_DATA = 0b1100
    STATUS_ON = 0b1101
    STATUS_OFF = 0b1110
    STATUS_REQUEST = 0b1111


FUNCTION_NAMES = {function: function.name for function in X10Function}


@dataclass(frozen=True, order=True)
class X10Address:
    """A house/unit pair like ``A1`` or ``P16``."""

    house: str
    unit: int

    def __post_init__(self) -> None:
        if self.house not in HOUSE_CODES:
            raise X10Error(f"house code must be A-P, got {self.house!r}")
        if self.unit not in UNIT_CODES:
            raise X10Error(f"unit code must be 1-16, got {self.unit!r}")

    def __str__(self) -> str:
        return f"{self.house}{self.unit}"

    @staticmethod
    def parse(text: str) -> "X10Address":
        """Parse ``'A1'``-style addresses."""
        if len(text) < 2:
            raise X10Error(f"malformed X10 address {text!r}")
        house, unit_text = text[0].upper(), text[1:]
        if not unit_text.isdigit():
            raise X10Error(f"malformed X10 address {text!r}")
        return X10Address(house, int(unit_text))


def encode_address_byte(address: X10Address) -> int:
    """House nibble in the high bits, unit nibble in the low bits."""
    return (HOUSE_CODES[address.house] << 4) | UNIT_CODES[address.unit]


def decode_address_byte(byte: int) -> X10Address:
    """Inverse of :func:`encode_address_byte`."""
    house_code = (byte >> 4) & 0x0F
    unit_code = byte & 0x0F
    return X10Address(_HOUSE_FROM_CODE[house_code], _UNIT_FROM_CODE[unit_code])


def encode_function_byte(house: str, function: X10Function) -> int:
    """House nibble in the high bits, function code in the low bits."""
    if house not in HOUSE_CODES:
        raise X10Error(f"house code must be A-P, got {house!r}")
    return (HOUSE_CODES[house] << 4) | int(function)


def decode_function_byte(byte: int) -> tuple[str, X10Function]:
    """Inverse of :func:`encode_function_byte` -> (house, function)."""
    house_code = (byte >> 4) & 0x0F
    return _HOUSE_FROM_CODE[house_code], X10Function(byte & 0x0F)
