"""High-level X10 controller API, built on the CM11A driver.

This is the layer the X10 PCM talks to: named operations per device
address, percentage dims, and decoded powerline events (motion sensors,
handset presses) delivered as ``(address, function)`` pairs.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import X10Error
from repro.net.network import Network
from repro.net.node import Node
from repro.net.segment import SerialLink
from repro.net.simkernel import SimFuture
from repro.x10.cm11a import Cm11aDriver
from repro.x10.codes import X10Address, X10Function
from repro.x10.powerline import X10Signal

#: Full dim range is 22 steps in the CM11A protocol.
DIM_STEPS = 22


class X10Controller:
    """Drives the powerline through a CM11A on a serial link."""

    def __init__(self, network: Network, node: Node, serial_link: SerialLink | str) -> None:
        self.driver = Cm11aDriver(network, node, serial_link)
        self.driver.on_event(self._on_signal)
        self._event_listeners: list[Callable[[X10Address, X10Function, int], None]] = []
        self._last_address: dict[str, X10Address] = {}
        self._status_waiters: list[tuple[str, SimFuture]] = []

    # -- commands ------------------------------------------------------------

    def turn_on(self, address: X10Address) -> SimFuture:
        return self.driver.send_command(address, X10Function.ON)

    def turn_off(self, address: X10Address) -> SimFuture:
        return self.driver.send_command(address, X10Function.OFF)

    def dim(self, address: X10Address, percent: int) -> SimFuture:
        """Dim by ``percent`` of full range (rounded to CM11A steps)."""
        return self.driver.send_command(
            address, X10Function.DIM, dims=self._steps(percent)
        )

    def brighten(self, address: X10Address, percent: int) -> SimFuture:
        return self.driver.send_command(
            address, X10Function.BRIGHT, dims=self._steps(percent)
        )

    def all_units_off(self, house: str) -> SimFuture:
        return self.driver.send_signal(
            X10Signal.for_function(house, X10Function.ALL_UNITS_OFF)
        )

    def all_lights_on(self, house: str) -> SimFuture:
        return self.driver.send_signal(
            X10Signal.for_function(house, X10Function.ALL_LIGHTS_ON)
        )

    def send_function(self, address: X10Address, function: X10Function, dims: int = 0) -> SimFuture:
        """Arbitrary function to one address (used by the PCM)."""
        return self.driver.send_command(address, function, dims)

    def status_request(self, address: X10Address, timeout: float = 15.0) -> SimFuture:
        """Two-way X10: ask the module at ``address`` whether it is on.

        Sends ``STATUS_REQUEST`` and resolves to True/False from the
        module's ``STATUS_ON``/``STATUS_OFF`` reply, or fails with
        :class:`repro.errors.X10Error` after ``timeout`` virtual seconds
        (module absent or not two-way capable).
        """
        result: SimFuture = SimFuture()
        sim = self.driver.sim
        house = address.house
        pending = (house, result)
        self._status_waiters.append(pending)

        def give_up() -> None:
            if not result.done():
                self._status_waiters.remove(pending)
                result.set_exception(
                    X10Error(f"no status reply from {address} within {timeout}s")
                )

        timer = sim.schedule(timeout, give_up)
        result.add_done_callback(lambda _f: timer.cancel())
        self.driver.send_command(address, X10Function.STATUS_REQUEST)
        return result

    # -- events ------------------------------------------------------------

    def on_event(self, listener: Callable[[X10Address, X10Function, int], None]) -> None:
        """``listener(address, function, dims)`` per decoded powerline event.

        X10 function frames carry only the house code; the controller pairs
        each function with the most recent address frame seen for that
        house, which is how real X10 receivers resolve targets.
        """
        self._event_listeners.append(listener)

    def _on_signal(self, signal: X10Signal) -> None:
        if not signal.is_function:
            self._last_address[signal.house] = signal.address
            return
        if signal.function in (X10Function.STATUS_ON, X10Function.STATUS_OFF):
            self._resolve_status(signal)
            return
        address = self._last_address.get(signal.house)
        if address is None:
            return  # function with no addressed unit: house-wide only
        for listener in list(self._event_listeners):
            listener(address, signal.function, signal.dims)

    def _resolve_status(self, signal: X10Signal) -> None:
        for index, (house, future) in enumerate(self._status_waiters):
            if house == signal.house and not future.done():
                del self._status_waiters[index]
                future.set_result(signal.function == X10Function.STATUS_ON)
                return

    @staticmethod
    def _steps(percent: int) -> int:
        percent = max(0, min(100, int(percent)))
        return max(1, round(percent * DIM_STEPS / 100))
