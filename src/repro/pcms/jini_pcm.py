"""The Jini PCM.

Conversion conventions (paper Figure 4 is exactly this PCM talking to the
X10 PCM through the SOAP VSG):

- **Client Proxy (export)** — every item in the island's lookup service
  whose attributes carry an ``ops`` table becomes a neutral service.  The
  ``ops`` table uses ``simple_interface`` specs, e.g.
  ``{"play": ["->boolean"], "goto_chapter": ["int", "->int"]}``.
  The handler invokes the Jini proxy over RMI.
- **Server Proxy (import)** — a remote service's WSDL is turned into a
  *generated* adapter object exported over the gateway's RMI runtime and
  registered with the lookup service under the interface
  ``vsg.<ServiceName>`` with attribute ``bridged: True``.  Unmodified Jini
  clients discover and call it like any native service; the adapter routes
  through the VSG.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConversionError
from repro.net.simkernel import SimFuture
from repro.soap.wsdl import WsdlDocument
from repro.soap.xmlutil import is_xml_name
from repro.core.interface import ServiceInterface, simple_interface
from repro.core.pcm import ProtocolConversionManager
from repro.core.vsg import VirtualServiceGateway
from repro.jini.events import (
    TRANSITION_MATCH_NOMATCH,
    TRANSITION_NOMATCH_MATCH,
    RemoteEvent,
)
from repro.jini.lease import Lease, LeaseRenewalManager
from repro.jini.lookup import ServiceItem, ServiceTemplate
from repro.jini.rmi import RemoteRef
from repro.jini.service import JiniHost, JiniService, ServiceProxy


class _TransitionListener:
    """Exported remote-event listener feeding lookup transitions to the PCM."""

    def __init__(self, pcm: "JiniPcm") -> None:
        self._pcm = pcm

    def notify(self, event_wire: dict) -> None:
        event = RemoteEvent.from_wire(event_wire)
        payload = event.payload or {}
        item_wire = payload.get("item")
        if not isinstance(item_wire, dict):
            return
        self._pcm._on_transition(
            int(payload.get("transition", 0)), ServiceItem.from_wire(item_wire)
        )

#: How long the SP adapters' lookup registrations are leased for.
BRIDGE_LEASE = 120.0


def interface_from_ops(name: str, ops: dict[str, list[str]]) -> ServiceInterface:
    """Build a neutral interface from a Jini ``ops`` attribute table."""
    return simple_interface(name, {op: tuple(spec) for op, spec in ops.items()})


def ops_from_interface(interface: ServiceInterface) -> dict[str, list[str]]:
    """Inverse: render an interface as an ``ops`` attribute table."""
    table: dict[str, list[str]] = {}
    for operation in interface.operations:
        spec = [param.type.xsd_name for param in operation.params]
        spec.append("->" + operation.returns.xsd_name)
        table[operation.name] = spec
    return table


class JiniPcm(ProtocolConversionManager):
    """PCM bridging one Jini island."""

    middleware_name = "jini"

    def __init__(
        self,
        vsg: VirtualServiceGateway,
        host: JiniHost,
        lookup_ref: RemoteRef,
    ) -> None:
        super().__init__(vsg)
        self.host = host
        self.lookup_ref = lookup_ref
        self._bridges: dict[str, JiniService] = {}
        self._liveness_renewals = LeaseRenewalManager(self.sim)
        self.hotplug_exports = 0
        self.withdrawals = 0

    # -- liveness: track lookup-service transitions --------------------------------

    def enable_liveness(self, duration: float = 120.0) -> SimFuture:
        """Watch the lookup service: newly registered Jini services are
        exported framework-wide at runtime (hot plug), and services whose
        leases lapse are withdrawn from the VSR (liveness propagation).

        Resolves to True once the event registration is in place; the
        registration's own lease is auto-renewed.
        """
        adapter = _TransitionListener(self)
        listener_ref = self.host.runtime.export(adapter)
        result: SimFuture = SimFuture()

        def on_registered(future: SimFuture) -> None:
            exc = future.exception()
            if exc is not None:
                result.set_exception(exc)
                return
            registration = future.result()
            lease = Lease.from_wire(registration["lease"])
            self._liveness_renewals.manage(
                lease,
                duration,
                lambda lease_id, renew_duration: self.host.runtime.call(
                    self.lookup_ref, "renew_lease", [lease_id, renew_duration]
                ),
            )
            result.set_result(True)

        self.host.runtime.call(
            self.lookup_ref,
            "notify",
            [ServiceTemplate().to_wire(), listener_ref.to_wire(), duration],
        ).add_done_callback(on_registered)
        return result

    def _on_transition(self, transition: int, item: ServiceItem) -> None:
        if item.attributes.get("bridged"):
            return  # our own Server Proxies: not subject to re-export
        if transition == TRANSITION_NOMATCH_MATCH:
            entry = self._describe_item(item)
            if entry is None or entry[0] in self.exported:
                return
            name, interface, handler, context = entry
            self.exported[name] = interface
            full_context = {"middleware": self.middleware_name}
            full_context.update(context)
            self.hotplug_exports += 1
            self.vsg.export_service(
                name, interface, handler, full_context
            ).add_done_callback(lambda f: f.exception())
        elif transition == TRANSITION_MATCH_NOMATCH:
            name = str(
                item.attributes.get("name") or item.interfaces[0].rpartition(".")[2]
            )
            if name in self.exported:
                self.withdrawals += 1
                self.exported.pop(name, None)
                self.vsg.withdraw_service(name).add_done_callback(
                    lambda f: f.exception()
                )

    # -- Client Proxy: Jini -> neutral ----------------------------------------------

    def _discover_local_services(self) -> SimFuture:
        result: SimFuture = SimFuture()

        def on_items(future: SimFuture) -> None:
            exc = future.exception()
            if exc is not None:
                result.set_exception(exc)
                return
            discovered = []
            for wire in future.result():
                item = ServiceItem.from_wire(wire)
                entry = self._describe_item(item)
                if entry is not None:
                    discovered.append(entry)
            result.set_result(discovered)

        self.host.runtime.call(
            self.lookup_ref, "lookup", [ServiceTemplate().to_wire(), 256]
        ).add_done_callback(on_items)
        return result

    def _describe_item(self, item: ServiceItem):
        if item.attributes.get("bridged"):
            return None  # a Server Proxy we created: never re-export
        ops = item.attributes.get("ops")
        if not isinstance(ops, dict) or not ops:
            return None  # service carries no convertible description
        name = str(item.attributes.get("name") or item.interfaces[0].rpartition(".")[2])
        if not is_xml_name(name):
            raise ConversionError(f"Jini service name {name!r} is not exportable")
        try:
            interface = interface_from_ops(name, ops)
        except Exception as exc:
            raise ConversionError(f"bad ops table on Jini service {name!r}: {exc}") from exc
        proxy = ServiceProxy(self.host.runtime, item.proxy_ref())

        def handler(operation: str, args: list[Any]) -> SimFuture:
            return self.host.runtime.call(proxy.remote_ref, operation, args)

        context = {
            "jini_interface": item.interfaces[0],
            "jini_service_id": str(item.service_id),
        }
        room = item.attributes.get("room")
        if isinstance(room, str) and room:
            context["room"] = room
        return (name, interface, handler, context)

    # -- Server Proxy: neutral -> Jini ----------------------------------------------

    def _materialise(self, document: WsdlDocument, interface: ServiceInterface) -> SimFuture:
        adapter = self.proxies.create(interface, self.remote_invoker(document.service))
        bridge = JiniService(
            self.host,
            adapter,
            interfaces=(f"vsg.{document.service}",),
            attributes={
                "name": document.service,
                "bridged": True,
                "origin_island": document.context.get("island", ""),
                "origin_middleware": document.context.get("middleware", ""),
                "ops": ops_from_interface(interface),
            },
        )
        self._bridges[document.service] = bridge
        result: SimFuture = SimFuture()

        def on_published(future: SimFuture) -> None:
            exc = future.exception()
            if exc is not None:
                result.set_exception(exc)
            else:
                result.set_result(True)

        bridge.publish(self.lookup_ref, duration=BRIDGE_LEASE).add_done_callback(on_published)
        return result

    def shutdown(self) -> None:
        for bridge in self._bridges.values():
            bridge.unpublish()
        self._bridges.clear()
