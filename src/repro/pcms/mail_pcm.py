"""The Internet Mail PCM.

The mail island's "middleware" is classic Internet mail: an SMTP/POP
server on the backbone.

- **Client Proxy (export)** — one neutral service ``InternetMail`` with
  ``send(to, subject, body)`` (SMTP submission from the gateway) and
  ``check_inbox(user)`` (POP drain, returning message structs).  Any other
  island can now send email: the VCR mails the user when a recording
  finishes, etc.
- **Server Proxy (import)** — mail cannot natively *host* remote services;
  instead the PCM offers :meth:`forward_events_to`, which subscribes to
  framework event topics and delivers each event as an email — genuine
  service integration in the paper's Section 2 sense.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConversionError
from repro.net.addressing import NodeAddress
from repro.net.simkernel import SimFuture
from repro.soap.wsdl import WsdlDocument
from repro.core.interface import ServiceInterface, simple_interface
from repro.core.pcm import ProtocolConversionManager
from repro.core.vsg import VirtualServiceGateway
from repro.mail.mailbox import PopClient
from repro.mail.message import MailMessage
from repro.mail.smtp import SmtpClient

SERVICE_NAME = "InternetMail"
DEFAULT_SOURCE = "framework@home.sim"
#: Topic published per message noticed by :meth:`MailPcm.watch_inbox`.
MAIL_ARRIVED_TOPIC = "mail.arrived"


class MailPcm(ProtocolConversionManager):
    """PCM bridging the Internet Mail service."""

    middleware_name = "mail"

    def __init__(
        self,
        vsg: VirtualServiceGateway,
        server_address: NodeAddress,
        smtp_port: int = 25,
        pop_port: int = 110,
    ) -> None:
        super().__init__(vsg)
        self.server_address = server_address
        self.smtp_port = smtp_port
        self.pop_port = pop_port
        self.smtp = SmtpClient(vsg.stack)
        self.pop = PopClient(vsg.stack)
        self.mails_sent = 0
        self.events_forwarded = 0
        self.mails_noticed = 0
        self._watch_timers: dict[str, Any] = {}

    # -- Client Proxy: mail -> neutral ----------------------------------------------

    def _discover_local_services(self) -> SimFuture:
        interface = simple_interface(
            SERVICE_NAME,
            {
                "send": ("string", "string", "string", "->boolean"),
                "check_inbox": ("string", "->anyType"),
            },
        )
        context = {"server": str(self.server_address)}
        return SimFuture.completed([(SERVICE_NAME, interface, self._handle, context)])

    def _handle(self, operation: str, args: list[Any]) -> SimFuture:
        if operation == "send":
            return self.send_mail(str(args[0]), str(args[1]), str(args[2]))
        if operation == "check_inbox":
            return self._check_inbox(str(args[0]))
        raise ConversionError(f"{SERVICE_NAME} has no operation {operation!r}")

    def send_mail(self, to: str, subject: str, body: str, sender: str = DEFAULT_SOURCE) -> SimFuture:
        message = MailMessage(
            sender=sender,
            recipients=(to,),
            subject=subject,
            body=body,
            sent_at=self.sim.now,
        )
        result: SimFuture = SimFuture()

        def on_sent(future: SimFuture) -> None:
            exc = future.exception()
            if exc is not None:
                result.set_exception(exc)
                return
            self.mails_sent += 1
            result.set_result(True)

        self.smtp.send(self.server_address, message, port=self.smtp_port).add_done_callback(on_sent)
        return result

    def _check_inbox(self, user: str) -> SimFuture:
        result: SimFuture = SimFuture()

        def on_fetched(future: SimFuture) -> None:
            exc = future.exception()
            if exc is not None:
                result.set_exception(exc)
                return
            structs = [
                {
                    "from": message.sender,
                    "subject": message.subject,
                    "body": message.body,
                    "sent_at": message.sent_at,
                }
                for message in future.result()
            ]
            result.set_result(structs)

        self.pop.fetch_all(self.server_address, user, port=self.pop_port).add_done_callback(
            on_fetched
        )
        return result

    # -- Server Proxy: neutral -> mail ----------------------------------------------

    def _materialise(self, document: WsdlDocument, interface: ServiceInterface) -> SimFuture:
        # Remote services have no mail-native representation to install;
        # integration happens through forward_events_to / send_mail.
        return SimFuture.completed(True)

    def forward_events_to(self, user: str, topic: str) -> SimFuture:
        """Subscribe to ``topic`` framework-wide and mail each event."""

        def on_event(event_topic: str, payload: Any, source_island: str) -> None:
            self.events_forwarded += 1
            self.send_mail(
                to=user,
                subject=f"[{source_island}] {event_topic}",
                body=f"event payload: {payload!r}",
            )

        return self.vsg.subscribe(topic, on_event)

    # -- inbound mail as framework events -------------------------------------------

    def watch_inbox(self, user: str, interval: float = 30.0) -> None:
        """Poll ``user``'s POP inbox on the simulation clock and publish a
        :data:`MAIL_ARRIVED_TOPIC` framework event per fetched message.

        This turns mail *arrival* into a trigger other islands (and the
        rule engine) can react to — the inbound mirror of
        :meth:`forward_events_to`.  POP fetches drain the mailbox, so each
        poll sees only new mail.
        """
        if user in self._watch_timers:
            return

        def poll() -> None:
            def on_fetched(future: SimFuture) -> None:
                exc = future.exception()
                if exc is None:
                    for message in future.result():
                        self.mails_noticed += 1
                        self.vsg.publish_event(
                            MAIL_ARRIVED_TOPIC,
                            {
                                "user": user,
                                "from": message.sender,
                                "subject": message.subject,
                                "body": message.body,
                            },
                        )
                if user in self._watch_timers:  # still watching
                    self._watch_timers[user] = self.sim.schedule(interval, poll)

            self.pop.fetch_all(
                self.server_address, user, port=self.pop_port
            ).add_done_callback(on_fetched)

        self._watch_timers[user] = self.sim.schedule(interval, poll)

    def stop_watching(self, user: str) -> None:
        timer = self._watch_timers.pop(user, None)
        if timer is not None:
            timer.cancel()
