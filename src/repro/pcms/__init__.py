"""Protocol Conversion Managers — one per middleware, as in Figure 3.

The prototype (paper Section 4.1) "has four types of PCM[:] Jini, X10,
HAVi and Internet Mail service".  :mod:`repro.pcms.upnp_pcm` is the fifth,
added to demonstrate the paper's "new middleware can be participated ...
effortlessly" claim (experiment C5): one new module, zero changes anywhere
else.
"""

from repro.pcms.havi_pcm import HaviPcm
from repro.pcms.jini_pcm import JiniPcm
from repro.pcms.mail_pcm import MailPcm
from repro.pcms.x10_pcm import X10Pcm

__all__ = ["HaviPcm", "JiniPcm", "MailPcm", "X10Pcm"]
