"""The HAVi PCM.

- **Client Proxy (export)** — queries the HAVi registry for FCMs, asks each
  for its ``_describe`` command set, and exports one neutral service per
  FCM named ``<Device>_<fcmtype>`` (e.g. ``DV_Camera_camera``).  The
  handler converts neutral calls into HAVi messages.
- **Server Proxy (import)** — a remote service becomes a *virtual FCM*: a
  software element on the gateway's HAVi node whose requests forward
  through the VSG, registered in the HAVi registry with
  ``fcm_type: 'bridged'``.  Native HAVi controllers drive it with ordinary
  HAVi messages.

Command-set types map 1:1 onto neutral types (``int`` / ``double`` /
``string`` / ``boolean`` / ``anyType``).
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConversionError, HaviError
from repro.net.simkernel import SimFuture
from repro.soap.wsdl import WsdlDocument
from repro.soap.xmlutil import is_xml_name
from repro.core.interface import (
    Operation,
    Parameter,
    ServiceInterface,
    ValueType,
)
from repro.core.pcm import ProtocolConversionManager
from repro.core.vsg import VirtualServiceGateway
from repro.core import values
from repro.havi.bus1394 import HaviNode
from repro.havi.dcm import FcmHandle
from repro.havi.messaging import Seid
from repro.havi.registry import RegistryClient

_PARAM_TYPES = {
    "int": ValueType.INT,
    "double": ValueType.FLOAT,
    "string": ValueType.STRING,
    "boolean": ValueType.BOOL,
    "anyType": ValueType.ANY,
}


def service_name_for(device_name: str, fcm_type: str) -> str:
    """Neutral service name for one FCM; spaces become underscores."""
    name = f"{device_name}_{fcm_type}".replace(" ", "_").replace("-", "_")
    if not is_xml_name(name):
        raise ConversionError(f"cannot derive a service name from {device_name!r}")
    return name


def interface_from_describe(name: str, description: dict[str, Any]) -> ServiceInterface:
    """Neutral interface from an FCM ``_describe`` result."""
    returns_table = description.get("returns", {})
    operations = []
    for op_name, param_types in sorted(description.get("commands", {}).items()):
        params = tuple(
            Parameter(f"arg{index}", _PARAM_TYPES.get(type_name, ValueType.ANY))
            for index, type_name in enumerate(param_types)
        )
        return_name = returns_table.get(op_name, "anyType")
        returns = _PARAM_TYPES.get(return_name, ValueType.ANY)
        operations.append(Operation(op_name, params, returns))
    return ServiceInterface(name, tuple(operations))


class BridgedFcmElement:
    """A virtual FCM: HAVi messages in, VSG calls out."""

    def __init__(self, pcm: "HaviPcm", service: str, interface: ServiceInterface) -> None:
        self.pcm = pcm
        self.service = service
        self.interface = interface
        self.seid = pcm.havi_node.messaging.register_element(self._handle)
        self.calls_forwarded = 0

    def _handle(self, src: Seid, operation: str, args: list[Any]) -> Any:
        if operation == "_describe":
            return {
                "fcm_type": "bridged",
                "name": self.service,
                "huid": f"{self.seid.guid:x}:{self.seid.local:x}",
                "commands": {
                    op.name: [param.type.xsd_name for param in op.params]
                    for op in self.interface.operations
                },
                "returns": {
                    op.name: op.returns.xsd_name for op in self.interface.operations
                },
            }
        if not self.interface.has_operation(operation):
            raise HaviError(f"bridged FCM {self.service!r} has no command {operation!r}")
        checked = values.check_args(self.interface.operation(operation), args)
        self.calls_forwarded += 1
        return self.pcm.vsg.invoke(self.service, operation, checked)

    def attributes(self) -> dict[str, Any]:
        return {
            "element_type": "fcm",
            "fcm_type": "bridged",
            "device_name": self.service,
            "device_class": "bridge",
            "bridged": True,
            "huid": f"{self.seid.guid:x}:{self.seid.local:x}",
        }


class HaviPcm(ProtocolConversionManager):
    """PCM bridging one HAVi/IEEE1394 island."""

    middleware_name = "havi"

    def __init__(
        self,
        vsg: VirtualServiceGateway,
        havi_node: HaviNode,
        registry: RegistryClient,
    ) -> None:
        super().__init__(vsg)
        self.havi_node = havi_node
        self.registry = registry
        self._virtual_fcms: dict[str, BridgedFcmElement] = {}
        self.events_bridged = 0
        havi_node.messaging.subscribe_events(self._on_havi_event)

    def _on_havi_event(self, src: Seid, event: dict[str, Any]) -> None:
        """Republish HAVi bus events on the framework bus as
        ``havi.<event_type>``."""
        event_type = event.get("event_type")
        if not isinstance(event_type, str) or not event_type:
            return
        self.events_bridged += 1
        self.vsg.publish_event(
            f"havi.{event_type}",
            {
                "source_huid": str(event.get("source_huid", "")),
                "device_name": str(event.get("device_name", "")),
                "payload": event.get("payload"),
            },
        )

    # -- Client Proxy: HAVi -> neutral ----------------------------------------------

    def _discover_local_services(self) -> SimFuture:
        result: SimFuture = SimFuture()

        def on_entries(future: SimFuture) -> None:
            exc = future.exception()
            if exc is not None:
                result.set_exception(exc)
                return
            entries = [
                (seid, attributes)
                for seid, attributes in future.result()
                if not attributes.get("bridged")
            ]
            if not entries:
                result.set_result([])
                return
            discovered: list[Any] = []
            pending = {"count": len(entries)}

            def described(seid: Seid, attributes: dict[str, Any], done: SimFuture) -> None:
                if done.exception() is None:
                    entry = self._build_export(seid, attributes, done.result())
                    if entry is not None:
                        discovered.append(entry)
                pending["count"] -= 1
                if pending["count"] == 0 and not result.done():
                    discovered.sort(key=lambda item: item[0])
                    result.set_result(discovered)

            for seid, attributes in entries:
                handle = FcmHandle(self.havi_node.messaging, seid)
                handle.describe().add_done_callback(
                    lambda done, s=seid, a=attributes: described(s, a, done)
                )

        self.registry.query({"element_type": "fcm"}).add_done_callback(on_entries)
        return result

    def _build_export(self, seid: Seid, attributes: dict[str, Any], description: dict[str, Any]):
        device_name = str(attributes.get("device_name", "device"))
        fcm_type = str(description.get("fcm_type", attributes.get("fcm_type", "fcm")))
        name = service_name_for(device_name, fcm_type)
        interface = interface_from_describe(name, description)
        handle = FcmHandle(self.havi_node.messaging, seid)

        def handler(operation: str, args: list[Any]) -> SimFuture:
            return handle.call(operation, *args)

        context = {
            "fcm_type": fcm_type,
            "device_class": str(attributes.get("device_class", "")),
            "huid": str(description.get("huid", "")),
        }
        room = attributes.get("room")
        if isinstance(room, str) and room:
            context["room"] = room
        return (name, interface, handler, context)

    # -- Server Proxy: neutral -> HAVi ----------------------------------------------

    def _materialise(self, document: WsdlDocument, interface: ServiceInterface) -> SimFuture:
        element = BridgedFcmElement(self, document.service, interface)
        self._virtual_fcms[document.service] = element
        return self.registry.register(element.seid, element.attributes())

    def shutdown(self) -> None:
        for element in self._virtual_fcms.values():
            self.havi_node.messaging.unregister_element(element.seid)
        self._virtual_fcms.clear()
