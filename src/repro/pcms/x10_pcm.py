"""The X10 PCM.

X10 has no service discovery — the installer knows which module sits at
which house/unit address — so the PCM takes an explicit *device map*
(exactly what the 2002 prototype would have configured by hand):

- **Client Proxy (export)** — each mapped device becomes a neutral service
  (``turn_on`` / ``turn_off``, plus ``dim`` / ``brighten`` for lamps); the
  handler drives the CM11A through :class:`repro.x10.controller.X10Controller`.
- **Server Proxy (import)** — X10 cannot *host* a remote service the way
  Jini or HAVi can, but it can *trigger* one: remote services are bound to
  spare X10 addresses (:meth:`bind_button`), so a plain X10 handset button
  invokes, say, the Jini Laserdisc — the paper's Figure 5 application.

Every powerline event the CM11A hears is also published on the framework
event bus as topic ``x10.<FUNCTION>`` (payload: address, dims), which the
event-based multimedia application consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConversionError
from repro.net.simkernel import SimFuture
from repro.soap.wsdl import WsdlDocument
from repro.core.interface import ServiceInterface, simple_interface
from repro.core.pcm import ProtocolConversionManager
from repro.core.vsg import VirtualServiceGateway
from repro.x10.codes import X10Address, X10Function
from repro.x10.controller import X10Controller


@dataclass(frozen=True)
class X10DeviceInfo:
    """One entry of the installer-provided device map."""

    address: X10Address
    name: str
    kind: str = "appliance"  # 'lamp' | 'appliance' | 'sensor'
    room: str = ""

    def service_name(self) -> str:
        return f"X10_{self.address}_{self.name}".replace(" ", "_")


@dataclass
class ButtonBinding:
    """Handset button -> remote neutral call."""

    service: str
    operation: str
    args: list[Any] = field(default_factory=list)
    invocations: int = 0


class X10Pcm(ProtocolConversionManager):
    """PCM bridging one X10 powerline island."""

    middleware_name = "x10"

    def __init__(
        self,
        vsg: VirtualServiceGateway,
        controller: X10Controller,
        device_map: list[X10DeviceInfo],
    ) -> None:
        super().__init__(vsg)
        self.controller = controller
        self.device_map = list(device_map)
        self._bindings: dict[tuple[X10Address, X10Function], ButtonBinding] = {}
        self.events_bridged = 0
        controller.on_event(self._on_x10_event)

    # -- Client Proxy: X10 -> neutral ----------------------------------------------

    def _discover_local_services(self) -> SimFuture:
        discovered = []
        houses = sorted({info.address.house for info in self.device_map})
        for house in houses:
            discovered.append(self._export_house(house))
        for info in self.device_map:
            if info.kind == "sensor":
                continue  # sensors only emit events; nothing to invoke
            discovered.append(self._export_for(info))
        return SimFuture.completed(discovered)

    def _export_house(self, house: str):
        """House-wide X10 functions as one service per house code."""
        interface = simple_interface(
            f"X10_house_{house}",
            {"all_units_off": ("->boolean",), "all_lights_on": ("->boolean",),
             "all_lights_off": ("->boolean",)},
        )

        def handler(operation: str, args: list[Any]) -> SimFuture:
            from repro.x10.codes import X10Function
            from repro.x10.powerline import X10Signal

            functions = {
                "all_units_off": X10Function.ALL_UNITS_OFF,
                "all_lights_on": X10Function.ALL_LIGHTS_ON,
                "all_lights_off": X10Function.ALL_LIGHTS_OFF,
            }
            raw = self.controller.driver.send_signal(
                X10Signal.for_function(house, functions[operation])
            )
            result: SimFuture = SimFuture()
            raw.add_done_callback(
                lambda future: result.set_exception(future.exception())
                if future.exception() is not None
                else result.set_result(True)
            )
            return result

        context = {"x10_house": house, "x10_kind": "house"}
        return (f"X10_house_{house}", interface, handler, context)

    def _export_for(self, info: X10DeviceInfo):
        ops: dict[str, tuple] = {
            "turn_on": ("->boolean",),
            "turn_off": ("->boolean",),
            "is_on": ("->boolean",),
        }
        if info.kind == "lamp":
            ops["dim"] = ("int", "->boolean")
            ops["brighten"] = ("int", "->boolean")
        interface = simple_interface(info.service_name(), ops)
        address = info.address

        def handler(operation: str, args: list[Any]) -> SimFuture:
            # Island-local span for the native powerline work: only created
            # when a bridged call is already being traced (the VSG dispatch
            # span is ambient here), so untraced local traffic costs nothing.
            tracer = self.vsg.obs.tracer
            span = None
            if tracer.enabled and tracer.current() is not None:
                span = tracer.start_span(
                    f"x10.{operation} {address}", island=self.vsg.island, kind="native"
                )
            if operation == "is_on":
                # Two-way X10: the module itself answers on the powerline.
                status = self.controller.status_request(address)
                if span is not None:
                    status.add_done_callback(lambda f, s=span: s.finish(f.exception()))
                return status
            if operation == "turn_on":
                raw = self.controller.turn_on(address)
            elif operation == "turn_off":
                raw = self.controller.turn_off(address)
            elif operation == "dim":
                raw = self.controller.dim(address, int(args[0]))
            elif operation == "brighten":
                raw = self.controller.brighten(address, int(args[0]))
            else:
                if span is not None:
                    span.finish()
                raise ConversionError(f"X10 device has no operation {operation!r}")
            result: SimFuture = SimFuture()

            def relay(future: SimFuture) -> None:
                if span is not None:
                    span.finish(future.exception())
                if future.exception() is not None:
                    result.set_exception(future.exception())
                else:
                    result.set_result(True)

            raw.add_done_callback(relay)
            return result

        context = {
            "x10_address": str(address),
            "x10_kind": info.kind,
            "device_name": info.name,
        }
        if info.room:
            context["room"] = info.room
        return (info.service_name(), interface, handler, context)

    # -- Server Proxy: neutral -> X10 ----------------------------------------------

    def _materialise(self, document: WsdlDocument, interface: ServiceInterface) -> SimFuture:
        # Nothing to instantiate: remote services become *bindable targets*.
        # The Universal Remote application binds them to button addresses.
        return SimFuture.completed(True)

    def bind_button(
        self,
        address: X10Address,
        service: str,
        operation: str,
        args: list[Any] | None = None,
        function: X10Function = X10Function.ON,
    ) -> ButtonBinding:
        """Map ``(address, function)`` presses to a neutral call.

        The target must have been imported (i.e. exist in the VSR) — this
        is the Server Proxy role for a middleware that cannot host
        services, only address them.
        """
        if service not in self.imported and service not in self.exported:
            raise ConversionError(
                f"cannot bind {service!r}: not imported into the X10 island"
            )
        binding = ButtonBinding(service=service, operation=operation, args=list(args or []))
        self._bindings[(address, function)] = binding
        return binding

    def unbind_button(self, address: X10Address, function: X10Function = X10Function.ON) -> None:
        self._bindings.pop((address, function), None)

    @property
    def bindings(self) -> dict[tuple[X10Address, X10Function], ButtonBinding]:
        return dict(self._bindings)

    # -- events ------------------------------------------------------------

    def _on_x10_event(self, address: X10Address, function: X10Function, dims: int) -> None:
        self.events_bridged += 1
        self.vsg.publish_event(
            f"x10.{function.name}",
            {"address": str(address), "function": function.name, "dims": dims},
        )
        binding = self._bindings.get((address, function))
        if binding is not None:
            binding.invocations += 1
            future = self.vsg.invoke(binding.service, binding.operation, list(binding.args))
            future.add_done_callback(lambda f: f.exception())  # surfaced via stats
