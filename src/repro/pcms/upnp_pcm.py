"""The UPnP PCM — the paper's "new middleware joins effortlessly" claim.

Section 5: "We can connect the UPnP service to other middleware by
developing a PCM for UPnP."  This module *is* that PCM; experiment C5
measures that adding the UPnP island required exactly this one module and
zero changes to the framework or the other four PCMs.

- **Client Proxy (export)** — SSDP-discovered devices' actions become
  neutral services named ``<FriendlyName>_<ServiceShortId>``; GENA events
  are republished on the framework bus as ``upnp.<variable>``.
- **Server Proxy (import)** — remote services materialise as actions of a
  virtual UPnP device (``BridgeDevice``) hosted by the gateway, so native
  control points drive them with plain UPnP control.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConversionError
from repro.net.segment import Segment
from repro.net.simkernel import SimFuture
from repro.soap.wsdl import WsdlDocument
from repro.soap.xmlutil import is_xml_name
from repro.core.interface import (
    Operation,
    Parameter,
    ServiceInterface,
    ValueType,
)
from repro.core.pcm import ProtocolConversionManager
from repro.core.vsg import VirtualServiceGateway
from repro.upnp.control import UpnpControlPoint
from repro.upnp.description import (
    UPNP_TO_XSD,
    XSD_TO_UPNP,
    DeviceDescription,
    ServiceDescription,
)
from repro.upnp.device import UpnpDevice


def short_id_of(service: ServiceDescription) -> str:
    """The trailing token of a UPnP serviceId (e.g. ``SwitchPower``)."""
    return service.service_id.rpartition(":")[2]


def neutral_name(description: DeviceDescription, service: ServiceDescription) -> str:
    """Framework-wide service name: ``<FriendlyName>_<ServiceShortId>``."""
    name = f"{description.friendly_name}_{short_id_of(service)}".replace(" ", "_")
    if not is_xml_name(name):
        raise ConversionError(f"cannot derive a service name for {service.service_id!r}")
    return name


def interface_from_service(name: str, service: ServiceDescription) -> ServiceInterface:
    """Neutral interface from a UPnP service's action table."""
    operations = []
    for action in service.actions:
        params = tuple(
            Parameter(argument.name, ValueType.from_xsd(UPNP_TO_XSD[argument.type]))
            for argument in action.inputs
        )
        returns = (
            ValueType.from_xsd(UPNP_TO_XSD[action.output])
            if action.output
            else ValueType.VOID
        )
        operations.append(Operation(action.name, params, returns))
    return ServiceInterface(name, tuple(operations))


class UpnpPcm(ProtocolConversionManager):
    """PCM bridging one UPnP/IP island."""

    middleware_name = "upnp"
    BRIDGE_DEVICE_NAME = "VSG_Bridge"

    def __init__(
        self,
        vsg: VirtualServiceGateway,
        segment: Segment,
        control_point: UpnpControlPoint | None = None,
        discovery_settle: float = 1.0,
    ) -> None:
        super().__init__(vsg)
        self.segment = segment
        self.control = control_point or UpnpControlPoint(vsg.stack)
        self.discovery_settle = discovery_settle
        self._bridge_device: UpnpDevice | None = None
        self._exports_by_udn: dict[str, list[str]] = {}
        self.events_bridged = 0
        self.withdrawals = 0
        self.control.on_device_byebye(self._on_byebye)

    def _on_byebye(self, usn: str) -> None:
        """Liveness propagation: a departed device's services leave the
        VSR, so other islands stop seeing them."""
        for name in self._exports_by_udn.pop(usn, []):
            self.withdrawals += 1
            self.exported.pop(name, None)
            self.vsg.withdraw_service(name).add_done_callback(lambda f: f.exception())

    # -- Client Proxy: UPnP -> neutral ----------------------------------------------

    def _discover_local_services(self) -> SimFuture:
        result: SimFuture = SimFuture()
        self.control.search(self.segment)
        # Give unicast M-SEARCH responses a moment to arrive, then walk
        # every discovered root device's description.
        self.sim.schedule(self.discovery_settle, self._collect_descriptions, result)
        return result

    def _collect_descriptions(self, result: SimFuture) -> None:
        locations = [
            location
            for usn, location in sorted(self.control.discovered.items())
            if not usn.startswith(f"uuid:{self.BRIDGE_DEVICE_NAME}")
        ]
        if not locations:
            result.set_result([])
            return
        discovered: list[Any] = []
        pending = {"count": len(locations)}

        def one_fetched(future: SimFuture) -> None:
            if future.exception() is None:
                description, base = future.result()
                discovered.extend(self._exports_for(description, base))
            pending["count"] -= 1
            if pending["count"] == 0 and not result.done():
                discovered.sort(key=lambda entry: entry[0])
                result.set_result(discovered)

        for location in locations:
            self.control.fetch_description(location).add_done_callback(one_fetched)

    def _exports_for(self, description: DeviceDescription, base: tuple):
        exports = []
        names = self._exports_by_udn.setdefault(description.udn, [])
        for service in description.services:
            name = neutral_name(description, service)
            if name not in names:
                names.append(name)
            interface = interface_from_service(name, service)

            def handler(operation, args, _service=service, _base=base):
                return self.control.invoke(_base, _service, operation, args)

            context = {
                "upnp_udn": description.udn,
                "upnp_service_type": service.service_type,
                "device_name": description.friendly_name,
            }
            exports.append((name, interface, handler, context))
            # Bridge GENA events onto the framework bus.
            self.control.subscribe(base, service, description.udn, self._on_gena_event)
        return exports

    def _on_gena_event(self, udn: str, variable: str, value: Any) -> None:
        self.events_bridged += 1
        self.vsg.publish_event(f"upnp.{variable}", {"udn": udn, "value": value})

    # -- Server Proxy: neutral -> UPnP ----------------------------------------------

    def _materialise(self, document: WsdlDocument, interface: ServiceInterface) -> SimFuture:
        device = self._ensure_bridge_device()
        actions = {}
        for operation in interface.operations:
            arg_spec = tuple(
                (param.name, XSD_TO_UPNP[param.type.xsd_name]) for param in operation.params
            )
            output = (
                "" if operation.returns == ValueType.VOID
                else XSD_TO_UPNP[operation.returns.xsd_name]
            )
            actions[operation.name] = (
                self._forwarder(document.service, operation.name),
                arg_spec,
                output,
            )
        device.add_service(document.service, actions)
        return SimFuture.completed(True)

    def _forwarder(self, service: str, operation: str):
        def forward(*args: Any) -> SimFuture:
            return self.vsg.invoke(service, operation, list(args))

        return forward

    def _ensure_bridge_device(self) -> UpnpDevice:
        if self._bridge_device is None:
            self._bridge_device = UpnpDevice(
                self.vsg.stack.network,
                self.BRIDGE_DEVICE_NAME,
                self.segment,
                friendly_name="VSG Bridge",
                device_type="urn:schemas-repro:device:Bridge:1",
                port=8090,
            )
        return self._bridge_device

    def shutdown(self) -> None:
        if self._bridge_device is not None:
            self._bridge_device.close()
            self._bridge_device = None
        self.control.close()
