"""Telemetry-plane installation for the ``telemetry`` seed band.

Seeds in [400, 500) (see :mod:`repro.testkit.runner`) run the ISSUE-8
telemetry plane over the generated world: every island hosts a
:class:`~repro.obs.telemetry.TelemetryAgent` streaming delta reports on
a shared drift-free cadence, and one drawn island mounts the
:class:`~repro.obs.telemetry.TelemetryCollector` that merges them and
scores health against its own heartbeat/breaker view.

Like every testkit script the draw is **pure data from the seed**
(``generate_telemetry(spec)`` never looks at a live world), so a
replayed seed installs an identical plane and the metrics snapshot pins
byte-identical collector state.
"""

from __future__ import annotations

import random

from repro.obs.health import HealthPolicy
from repro.obs.telemetry import TelemetryAgent, TelemetryCollector
from repro.testkit.topology import TopologySpec, World

#: Report cadences: short enough that a 40-op workload spans several
#: reports, long enough that staleness windows are meaningful.
_INTERVALS = (2.0, 3.0, 5.0)


def generate_telemetry(spec: TopologySpec) -> dict:
    """Draw the plane's shape for a spec (pure data)."""
    rng = random.Random(f"testkit:telemetry:{spec.seed}")
    return {
        "interval": rng.choice(_INTERVALS),
        "collector": rng.choice(sorted(spec.island_names)),
        # Window sized in report counts so health scoring always sees a
        # few reports regardless of the drawn cadence.
        "window_reports": rng.choice((4, 6)),
    }


def install_telemetry(world: World) -> TelemetryCollector:
    """Build agents on every island + the collector (nothing started)."""
    plan = generate_telemetry(world.spec)
    interval = plan["interval"]
    for ispec in world.spec.islands:
        gateway = world.mm.islands[ispec.name].gateway
        world.telemetry_agents[ispec.name] = TelemetryAgent(
            gateway, monitor=None, interval=interval
        )
    policy = HealthPolicy(window=plan["window_reports"] * interval)
    collector = TelemetryCollector(
        world.mm.islands[plan["collector"]].gateway, policy=policy
    )
    world.telemetry_collector = collector
    return collector
