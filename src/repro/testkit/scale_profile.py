"""Stub-island catalogue for the ``scale`` seed band.

Seeds in [600, 700) (see :mod:`repro.testkit.runner`) run against a
sharded, replicated directory plane (:mod:`repro.core.shard`) — and the
whole point of that plane is behaviour under a registry holding
*thousands* of islands.  Building a full gateway stack per island would
make the band intractable, so the catalogue is seeded as **pure
directory data**: one WSDL document plus one gateway registration per
stub, written straight into the shard primaries through the federation
view (in-process, no wire traffic, no change notifications fan-out —
``FederationView`` routes each key to its ring owner exactly like a
wire client would).

The stubs then matter three ways:

- **lookup traffic** — half the band's lookups target stub names
  (see ``_SCALE_WEIGHTS`` in :mod:`repro.testkit.workload`), so every
  shard serves cache-cold reads;
- **anti-entropy payload** — the catalogue is thousands of ops the
  replica sync agents must converge, which is what the
  replica-convergence oracle measures;
- **ring placement** — each stub's document and registration must land
  on its ring owner, which is what the ring-placement oracle checks.

Stub locations point at a fake ``stubnet`` segment that exists on no
network: anything that accidentally dereferences one fails fast instead
of silently talking to a real node.
"""

from __future__ import annotations

from repro.soap.wsdl import WsdlDocument
from repro.testkit.topology import World


def stub_island_name(index: int) -> str:
    return f"stub{index}"


def stub_service_name(index: int) -> str:
    return f"Svc_stub{index}"


def stub_location(index: int) -> str:
    """A syntactically valid address on a segment that does not exist —
    dereferencing a stub is a bug, and this makes it a loud one."""
    return f"soap://stubnet/{index}:8080/{stub_service_name(index)}"


def install_scale(world: World) -> tuple[str, ...]:
    """Seed ``spec.stub_islands`` stub islands into the shard primaries.

    Call **after** ``mm.connect()`` (the real islands' registrations are
    part of the pinned connect traffic) and **before** the workload
    clock starts, so t=0 lookups already face the full catalogue.
    Returns the stub island names, also recorded on
    ``world.scale_stubs`` for the vsr-islands oracle.
    """
    federation = world.federation
    if federation is None or not world.spec.stub_islands:
        return ()
    view = federation.view
    names = []
    for index in range(world.spec.stub_islands):
        island = stub_island_name(index)
        service = stub_service_name(index)
        location = stub_location(index)
        view.publish(
            WsdlDocument(
                service=service,
                location=location,
                context={"island": island, "middleware": "stub", "kind": "stub"},
            )
        )
        view.register_gateway(island, location)
        names.append(island)
    world.scale_stubs = tuple(names)
    return world.scale_stubs
