"""System-wide invariants checked after (and during) every testkit run.

Each oracle states a property that must hold for *any* seed, workload and
fault schedule — declared failures are always legal, silent ones never:

- **call-completion** — every issued operation's future settles (a value
  or a declared exception); a future still pending after quiesce is a
  silently dropped call.
- **breaker-transitions** — circuit breakers only take legal edges
  (checked live via transition listeners, so an illegal flicker cannot
  hide behind a legal final state).
- **vsr-islands** — the directory (documents, gateway registry, and every
  lookup answer the workload saw) never names an island outside the spec.
- **pool-leak** — after shutdown + drain, no pooled HTTP connection is
  still open on any gateway client (idle timers must do their job; the
  check is scoped to the pools because legacy one-shot connections to
  crashed peers leak at the transport level by design).
- **span-hygiene** — when tracing is on, every started span is finished
  and every parent id resolves inside its own trace.
- **rule-dedup** — on rules-profile seeds, no rule engine ever fires
  twice for one occurrence key: at-least-once event redelivery (and any
  other duplicate trigger path) must be absorbed by the engines' dedup
  windows, never turned into duplicate actions.
- **rule-schedule** — every scheduled firing a rules-profile engine
  logged happened at exactly the closed-form instant
  ``epoch + offset + n * interval``: schedule state is derived, never
  accumulated, so faults and load cannot drift the timetable.
- **telemetry-soundness** — on telemetry-profile seeds, the collector's
  merged per-island counter totals never exceed what that island's agent
  actually shipped (at-least-once redelivery must be deduped, never
  double-counted), and the collector's high-water sequence number never
  exceeds the agent's (no fabricated reports).  Loss is legal — reports
  ride the ordinary event plane — inflation is not.
- **event-durability** (no-lost-acked-event) — on persistence-profile
  seeds, every event a journaled publisher queued for a subscriber is
  delivered there by quiesce — across any number of cold crash→restart
  cycles on either side — unless one of them is still down, or the
  event was handed over in a poll (fetch) reply, the one declared
  at-most-once window in the delivery contract.
- **replay-idempotence** — replaying any WAL twice yields byte-identical
  canonical state snapshots: recovery is a pure fold over the journal,
  with no hidden mutable inputs.
- **ring-placement** — on scale-profile seeds, every document and
  gateway registration a shard replica holds belongs on that shard by
  the consistent-hash ring: placement is a pure function of
  ``(seed, shards, virtual_nodes)``, so a key on the wrong replica
  means routing and ownership disagree somewhere.
- **replica-convergence** — on scale-profile seeds, once the run
  quiesces every *live* replica of a shard holds a byte-identical
  canonical state snapshot: anti-entropy must converge the group no
  matter which replica took which writes or which faults interleaved
  (permanently dead nodes are excluded — they catch up on return).
- **conservation** — per-segment delivery accounting balances, the
  monitor agrees with the segments, and every monitored drop is claimed
  by exactly one fault-report loss window.  Push event channels need no
  special case here: their held waits and streamed frames are ordinary
  TCP segments on the backbone, so the same per-segment arithmetic
  covers them (and the pool-leak oracle audits each channel's dedicated
  keep-alive client via ``World.http_clients``).  Vectored (reactor)
  transmissions are reconciled through the monitor's per-segment
  coalescing surplus: n constituent frames on one wire frame must net
  out to exactly one segment transmission.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.resilience import CircuitBreaker
from repro.faults.plan import FaultReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.testkit.topology import World
    from repro.testkit.workload import WorkloadRunner

LEGAL_BREAKER_EDGES = frozenset(
    {
        (CircuitBreaker.CLOSED, CircuitBreaker.OPEN),
        (CircuitBreaker.OPEN, CircuitBreaker.HALF_OPEN),
        (CircuitBreaker.HALF_OPEN, CircuitBreaker.CLOSED),
        (CircuitBreaker.HALF_OPEN, CircuitBreaker.OPEN),
        # record_success while OPEN (a straggler reply beating the reset
        # timer) legally snaps the breaker closed.
        (CircuitBreaker.OPEN, CircuitBreaker.CLOSED),
    }
)


@dataclass(frozen=True)
class Violation:
    oracle: str
    message: str
    op_index: int | None = None

    def render(self) -> str:
        prefix = f"op#{self.op_index} " if self.op_index is not None else ""
        return f"[{self.oracle}] {prefix}{self.message}"


class InvariantSuite:
    """Installs live probes at world-build time; judge with :meth:`finish`."""

    def __init__(self, world: "World") -> None:
        self.world = world
        self.violations: list[Violation] = []
        self.breaker_transitions: list[tuple[str, str, str, str]] = []
        for name, island in world.mm.islands.items():
            island.gateway.resilience.add_transition_listener(
                lambda remote, old, new, _home=name: self._on_transition(
                    _home, remote, old, new
                )
            )

    # -- live probes ---------------------------------------------------------

    def _on_transition(self, home: str, remote: str, old: str, new: str) -> None:
        self.breaker_transitions.append((home, remote, old, new))
        if (old, new) not in LEGAL_BREAKER_EDGES:
            self.violations.append(
                Violation(
                    "breaker-transitions",
                    f"{home}'s breaker for {remote} took illegal edge "
                    f"{old} -> {new}",
                )
            )

    # -- post-run judgement --------------------------------------------------

    def finish(self, runner: "WorkloadRunner", report: FaultReport) -> list[Violation]:
        self._check_call_completion(runner)
        self._check_vsr(runner)
        self._check_pools()
        self._check_spans()
        self._check_rules()
        self._check_telemetry()
        self._check_event_durability()
        self._check_replay_idempotence()
        self._check_federation()
        self._check_conservation(report)
        return self.violations

    def _check_call_completion(self, runner: "WorkloadRunner") -> None:
        for op, entry in runner.unresolved():
            self.violations.append(
                Violation(
                    "call-completion",
                    f"{op.describe()} never resolved (issued at t={entry['time']:g})",
                    op_index=op.index,
                )
            )

    def _check_vsr(self, runner: "WorkloadRunner") -> None:
        known = set(self.world.spec.island_names)
        # Scale-band stub islands are seeded directory data, not spec
        # islands; the directory naming them is expected, not phantom.
        known |= set(self.world.scale_stubs)
        directory = self.world.mm.uddi.directory
        for document in directory.find({}):
            island = document.context.get("island", "")
            if island not in known:
                self.violations.append(
                    Violation(
                        "vsr-islands",
                        f"directory lists {document.service!r} on unknown "
                        f"island {island!r}",
                    )
                )
        for island in directory.gateways():
            if island not in known:
                self.violations.append(
                    Violation(
                        "vsr-islands",
                        f"gateway registry names unknown island {island!r}",
                    )
                )
        for op_index, island in runner.lookup_results:
            if island not in known:
                self.violations.append(
                    Violation(
                        "vsr-islands",
                        f"lookup resolved to unknown island {island!r}",
                        op_index=op_index,
                    )
                )

    def _check_pools(self) -> None:
        for label, http in self.world.http_clients():
            open_entries = http.open_connections()
            if open_entries:
                self.violations.append(
                    Violation(
                        "pool-leak",
                        f"{label} still holds {len(open_entries)} pooled "
                        f"connection(s) after quiesce",
                    )
                )

    def _check_spans(self) -> None:
        obs = self.world.obs
        if obs is None:
            return
        tracer = obs.tracer
        for span in tracer.open_spans():
            self.violations.append(
                Violation(
                    "span-hygiene",
                    f"span {span.span_id} ({span.name}) started at "
                    f"t={span.start:g} was never finished",
                )
            )
        if tracer.spans_dropped:
            return  # parents may legitimately be missing from a clipped trace
        by_trace: dict[str, set[str]] = {}
        for span in tracer.spans:
            by_trace.setdefault(span.trace_id, set()).add(span.span_id)
        for span in tracer.spans:
            if span.parent_id and span.parent_id not in by_trace[span.trace_id]:
                self.violations.append(
                    Violation(
                        "span-hygiene",
                        f"span {span.span_id} ({span.name}) has parent "
                        f"{span.parent_id} outside its own trace",
                    )
                )

    def _check_rules(self) -> None:
        for name, engine in sorted(self.world.rule_engines.items()):
            seen: set[tuple[str, str]] = set()
            for firing in engine.firings:
                pair = (firing.rule, firing.key)
                if pair in seen:
                    self.violations.append(
                        Violation(
                            "rule-dedup",
                            f"engine on {name}: rule {firing.rule!r} fired "
                            f"twice for occurrence {firing.key!r}",
                        )
                    )
                seen.add(pair)
            rules = {rule.name: rule for rule in engine.rules}
            for entry in engine.schedule_log:
                rule = rules.get(entry["rule"])
                if rule is None:
                    self.violations.append(
                        Violation(
                            "rule-schedule",
                            f"engine on {name}: schedule log names unknown "
                            f"rule {entry['rule']!r}",
                        )
                    )
                    continue
                trigger = rule.triggers[entry["trigger"]]
                expected = trigger.occurrence(engine.epoch, entry["n"])
                if entry["due"] != expected:
                    self.violations.append(
                        Violation(
                            "rule-schedule",
                            f"engine on {name}: {entry['rule']} occurrence "
                            f"n={entry['n']} logged due={entry['due']!r} but "
                            f"closed form gives {expected!r}",
                        )
                    )
                elif entry["fired_at"] != entry["due"]:
                    self.violations.append(
                        Violation(
                            "rule-schedule",
                            f"engine on {name}: {entry['rule']} occurrence "
                            f"n={entry['n']} fired at t={entry['fired_at']!r}, "
                            f"not its due instant t={entry['due']!r}",
                        )
                    )

    def _check_telemetry(self) -> None:
        collector = self.world.telemetry_collector
        if collector is None:
            return
        for name, agent in sorted(self.world.telemetry_agents.items()):
            max_seq = collector.island_max_seq(name)
            if max_seq > agent.seq:
                self.violations.append(
                    Violation(
                        "telemetry-soundness",
                        f"collector holds seq {max_seq} for {name} but its "
                        f"agent only emitted {agent.seq} reports",
                    )
                )
            merged = collector.island_totals(name)
            for key, total in sorted(merged.items()):
                shipped = agent.emitted_totals.get(key, 0)
                # Strictly > with a float tolerance: sequence-ordered
                # folding re-adds the same increments the agent summed,
                # so any real excess means a duplicate was applied.
                if total > shipped + 1e-9:
                    self.violations.append(
                        Violation(
                            "telemetry-soundness",
                            f"collector merged {total!r} for {name}:{key} "
                            f"but the agent only shipped {shipped!r} — "
                            f"redelivery was double-counted",
                        )
                    )

    def _check_event_durability(self) -> None:
        journals = self.world.journals
        if not journals:
            return
        islands = self.world.mm.islands

        def alive(name: str) -> bool:
            island = islands.get(name)
            return island is not None and island.gateway.node.alive

        for pub_name, island in sorted(islands.items()):
            if pub_name not in journals or not alive(pub_name):
                continue  # permanently dead publishers owe nothing yet
            router = island.gateway.events
            for (sub_name, seq), event in sorted(router.retention_obligations.items()):
                if not alive(sub_name):
                    continue  # the subscriber never came back; nothing to deliver to
                subscriber = islands[sub_name].gateway.events
                if (pub_name, seq) in subscriber.delivered_keys:
                    continue
                if (sub_name, seq) in router.fetch_discharged:
                    # Handed over in a poll reply: the fetch response wire
                    # is the delivery contract's declared at-most-once
                    # window, so a reply lost to a fault is legal loss.
                    continue
                self.violations.append(
                    Violation(
                        "event-durability",
                        f"{pub_name} queued event seq={seq} "
                        f"(topic {event.get('topic', '?')!r}) for {sub_name} "
                        f"but it was never delivered, despite both sides "
                        f"being up after quiesce",
                    )
                )

    def _check_replay_idempotence(self) -> None:
        journals = dict(self.world.journals)
        if self.world.directory_journal is not None:
            journals["uddi-directory"] = self.world.directory_journal
        for label, journal in sorted(journals.items()):
            if journal.store.closed:
                continue  # crashed for good; the tail stands where it fell
            first = journal.snapshot_json()
            second = journal.snapshot_json()
            if first != second:
                self.violations.append(
                    Violation(
                        "replay-idempotence",
                        f"journal {label!r}: two replays of the same WAL "
                        f"disagree — recovery is not a pure fold",
                    )
                )

    def _check_federation(self) -> None:
        federation = self.world.federation
        if federation is None:
            return
        from repro.core.vsr import gateway_ring_key

        ring = federation.ring
        for shard, group in enumerate(federation.replicas):
            for replica in group:
                directory = replica.directory
                name = replica.endpoint.name
                for service in directory.service_names():
                    owner = ring.owner(service)
                    if owner != shard:
                        self.violations.append(
                            Violation(
                                "ring-placement",
                                f"{name} (shard {shard}) holds document "
                                f"{service!r} owned by shard {owner}",
                            )
                        )
                for island in directory.gateways():
                    owner = ring.owner(gateway_ring_key(island))
                    if owner != shard:
                        self.violations.append(
                            Violation(
                                "ring-placement",
                                f"{name} (shard {shard}) registers gateway "
                                f"{island!r} owned by shard {owner}",
                            )
                        )
            live = [
                replica for replica in group if replica.node.alive
            ]
            if len(live) < 2:
                continue  # nothing to compare (or peers died for good)
            baseline = live[0].directory.canonical_state_json()
            for replica in live[1:]:
                state = replica.directory.canonical_state_json()
                if state != baseline:
                    self.violations.append(
                        Violation(
                            "replica-convergence",
                            f"shard {shard}: {replica.endpoint.name} state "
                            f"diverges from {live[0].endpoint.name} after "
                            f"quiesce — anti-entropy never converged",
                        )
                    )

    def _check_conservation(self, report: FaultReport) -> None:
        monitored_frames = 0
        monitored_drops = 0
        for segment in self.world.segments():
            if segment.frames_delivered + segment.frames_blocked != segment.delivery_opportunities:
                self.violations.append(
                    Violation(
                        "conservation",
                        f"{segment.name}: delivered {segment.frames_delivered} "
                        f"+ blocked {segment.frames_blocked} != opportunities "
                        f"{segment.delivery_opportunities}",
                    )
                )
            by_protocol = self.world.monitor.per_segment.get(segment.name, {})
            seg_frames = sum(stats.frames for stats in by_protocol.values())
            seg_drops = sum(stats.dropped_frames for stats in by_protocol.values())
            # The monitor tallies vectored transmissions by constituent
            # (n logical frames per wire frame); the segment counts wire
            # transmissions.  Subtract the recorded surplus so the same
            # arithmetic holds whether or not the reactor coalesced.
            frames_extra = self.world.monitor.coalesced_extra_per_segment.get(
                segment.name, 0
            )
            drops_extra = self.world.monitor.coalesced_dropped_extra_per_segment.get(
                segment.name, 0
            )
            monitored_frames += seg_frames - frames_extra
            monitored_drops += seg_drops - drops_extra
            if seg_frames - frames_extra != segment.frames_sent:
                self.violations.append(
                    Violation(
                        "conservation",
                        f"{segment.name}: monitor saw {seg_frames} frames "
                        f"({frames_extra} from coalescing) but segment sent "
                        f"{segment.frames_sent}",
                    )
                )
        claimed = report.total_observed("frames_dropped")
        if monitored_drops != claimed:
            self.violations.append(
                Violation(
                    "conservation",
                    f"monitor counted {monitored_drops} dropped frames but the "
                    f"fault report claims {claimed} — "
                    f"{'unaccounted losses' if monitored_drops > claimed else 'phantom losses'}",
                )
            )
