"""One-seed end-to-end runs: generate scripts, replay, judge.

``check(seed)`` is the whole harness in one call::

    result = check(seed=7)
    assert result.ok, result.render_repro()

Everything between the seed and the verdict is deterministic: generation
is pure data (``generate``), and ``replay`` rebuilds a fresh world for the
scripts — which is also what lets the shrinker replay arbitrary subsets.

``inject_bug`` plants one of a fixed set of deliberate defects (test-only)
so the suite can prove each oracle actually fires; see ``INJECTABLE_BUGS``.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FaultAction,
    FaultPlan,
    FaultReport,
    GatewayPause,
    LatencySpike,
    LinkLoss,
    NodeCrash,
    Partition,
)
from repro.net.simkernel import SimFuture
from repro.obs.trace import render_trace_tree
from repro.soap.http import InterchangeConfig
from repro.testkit.oracles import InvariantSuite, Violation
from repro.testkit.topology import TopologyGen, TopologySpec, World, build_world
from repro.testkit.workload import WorkloadGen, WorkloadOp, WorkloadRunner

#: Virtual seconds the world keeps running after the last scripted event,
#: with the framework shut down: long enough for every in-flight deadline
#: (≤ 15s x 3 attempts), connect timeout (30s) and idle pool timer (30s)
#: to fire, so "still pending" after this really means "leaked".
QUIESCE_MARGIN = 120.0

CONNECT_TIMEOUT = 600.0

INJECTABLE_BUGS = (
    "swallow-call",      # gateway drops get() futures -> call-completion
    "illegal-breaker",   # forces closed -> half-open    -> breaker-transitions
    "phantom-island",    # directory doc from nowhere   -> vsr-islands
    "leak-connection",   # pooled conns that never idle out -> pool-leak
    "unfinished-span",   # span started, never finished -> span-hygiene
    "uncounted-drop",    # drops frames outside any loss window -> conservation
)


class _EveryNthDrop:
    """Test-only loss model dropping every Nth frame *without* reporting
    to any fault record — exactly the accounting hole the conservation
    oracle exists to catch.  Chains like the injector's models so fault
    windows stacked on top still unwind cleanly."""

    def __init__(self, n: int, previous: Callable | None) -> None:
        self.n = n
        self.previous = previous
        self.seen = 0

    def __call__(self, frame: Any) -> bool:
        if self.previous is not None and self.previous(frame):
            return True
        self.seen += 1
        return self.seen % self.n == 0


# ---------------------------------------------------------------------------
# Fault-script generation (pure data)
# ---------------------------------------------------------------------------


class FaultPlanGen:
    """Draws a fault script — ``[(time, action), ...]`` relative to
    workload start — from the seed.  Pure data; the injector and plan are
    built fresh at replay time."""

    MAX_FAULTS = 4

    def generate(
        self,
        spec: TopologySpec,
        ops: list[WorkloadOp],
        seed: int,
        profile: str = "default",
    ) -> list[tuple[float, FaultAction]]:
        rng = random.Random(f"testkit:faults:{seed}")
        horizon = max((op.time for op in ops), default=10.0)
        segments = spec.segment_names
        nodes = spec.node_names
        faults: list[tuple[float, FaultAction]] = []
        for _ in range(rng.randint(0, self.MAX_FAULTS)):
            at = rng.uniform(0.0, horizon)
            duration = 0.0 if rng.random() < 0.1 else rng.uniform(0.5, 8.0)
            kind = rng.choices(
                ("link-loss", "latency-spike", "partition", "node-crash", "gateway-pause"),
                weights=(30, 20, 20, 15, 15),
            )[0]
            if kind == "link-loss":
                action: FaultAction = LinkLoss(
                    segment=rng.choice(segments),
                    rate=rng.uniform(0.05, 0.9),
                    duration=duration,
                )
            elif kind == "latency-spike":
                action = LatencySpike(
                    segment=rng.choice(segments),
                    extra_delay=rng.uniform(0.05, 0.4),
                    duration=duration,
                )
            elif kind == "partition":
                # Split the backbone: a random non-empty strict subset of
                # nodes on one side, everyone else implicitly together.
                cut = rng.sample(nodes, rng.randint(1, len(nodes) - 1))
                action = Partition(
                    segment="backbone",
                    groups=(frozenset(cut),),
                    duration=duration,
                )
            elif kind == "node-crash":
                restart = None if rng.random() < 0.15 else rng.uniform(0.5, 6.0)
                action = NodeCrash(node=rng.choice(nodes), restart_after=restart)
            else:
                action = GatewayPause(
                    island=rng.choice(spec.island_names), duration=duration
                )
            faults.append((at, action))
        if profile == "persistence":
            # The restart-torture band guarantees crash→restart cycles on
            # gateway nodes (drawn *after* the base script so the shared
            # prefix of the RNG stream stays identical to other bands'
            # draws for the same seed).  Every crash restarts: permanent
            # deaths are covered by the base draws; the band exists to
            # exercise recovery.
            gateways = [name for name in nodes if name.startswith("gw-")]
            for _ in range(rng.randint(1, 3)):
                at = rng.uniform(0.0, horizon)
                faults.append(
                    (
                        at,
                        NodeCrash(
                            node=rng.choice(gateways),
                            restart_after=rng.uniform(2.0, 8.0),
                        ),
                    )
                )
        faults.sort(key=lambda entry: entry[0])
        return faults


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------


@dataclass
class RunResult:
    seed: int
    spec: TopologySpec
    ops: list[WorkloadOp]
    faults: list[tuple[float, FaultAction]]
    violations: list[Violation]
    report: FaultReport
    world: World
    runner: WorkloadRunner
    start_time: float
    end_time: float
    error: str = ""
    _metrics: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.error

    def workload_json(self) -> str:
        return self.runner.log_json()

    def flight_dumps_json(self) -> str:
        """Deterministic JSON of every flight-recorder dump this run
        triggered (empty ``{}`` when nothing crashed or failed)."""
        from repro.obs.flight import dumps_json

        return dumps_json(self.world.flight)

    def metrics_json(self) -> str:
        """Canonical end-of-run counters; identical seeds must match bytes."""
        return json.dumps(self._metrics, sort_keys=True, separators=(",", ":"))

    def wal_dumps_json(self) -> str:
        """Deterministic JSON of every WAL journal's diagnostic dump
        (empty ``{}`` off the persistence band).  A store a crash left
        closed is reopened read-side first — the sweep ships these next
        to shrunk repros on oracle failures."""
        dumps: dict[str, Any] = {}
        journals = dict(self.world.journals)
        if self.world.directory_journal is not None:
            journals["uddi-directory"] = self.world.directory_journal
        for label, journal in sorted(journals.items()):
            if journal.store.closed:
                journal.store.reopen()
            dumps[label] = journal.dump()
        return json.dumps(dumps, sort_keys=True, separators=(",", ":"))

    def render_repro(self) -> str:
        lines = [
            f"=== testkit repro (seed={self.seed}) ===",
            self.spec.describe(),
            "",
            f"workload ({len(self.ops)} ops):",
        ]
        for op in self.ops:
            lines.append(f"  t={op.time:8.3f}  {op.describe()}")
        lines.append(f"faults ({len(self.faults)}):")
        for at, action in self.faults:
            lines.append(f"  t={at:8.3f}  {action.describe()}")
        lines.append("")
        if self.error:
            lines.append(f"run error: {self.error}")
        lines.append(f"violations ({len(self.violations)}):")
        for violation in self.violations:
            lines.append(f"  {violation.render()}")
        lines.append("")
        lines.append(self.report.render())
        if self.world.obs is not None and self.world.obs.tracer.trace_ids():
            lines.append("")
            lines.append("last trace:")
            lines.append(
                render_trace_tree(
                    self.world.obs.tracer, self.world.obs.tracer.trace_ids()[-1]
                )
            )
        return "\n".join(lines)


#: Seeds in [PUSH_SEED_BASE, PUSH_SEED_BASE + PUSH_SEED_SPAN) draw the
#: "push" profile: push-capable interchanges mixed with legacy ones and a
#: publish-heavy workload, so streamed event channels (and their polling
#: fallback under faults) get seeded coverage.  The band sits above the
#: historical corpus (0-29) and below the nightly sweep (10_000+), so
#: every previously pinned seed keeps its exact scripts.
PUSH_SEED_BASE = 100
PUSH_SEED_SPAN = 100

#: Seeds in [RULES_SEED_BASE, RULES_SEED_BASE + RULES_SEED_SPAN) draw the
#: "rules" profile: a push-leaning interchange mix, a publish-heavy
#: workload, and — replay-side — deterministic rule engines installed on
#: a couple of islands (see ``repro.testkit.rules_profile``) so the
#: no-duplicate-firing and schedule-determinism oracles get seeded
#: coverage under the same fault schedules as everything else.
RULES_SEED_BASE = 200
RULES_SEED_SPAN = 100

#: Seeds in [REACTOR_SEED_BASE, REACTOR_SEED_BASE + REACTOR_SEED_SPAN)
#: draw the "reactor" profile: a reactor-leaning interchange mix
#: (vectored writes, zero-copy reads, pipelining) against legacy/fast/
#: push peers, with a call-heavy workload so deep RPC pipelines and
#: coalesced event bursts run under the same fault schedules as the
#: older bands.  Corpus seeds 300-304 are pinned in tests/testkit.
REACTOR_SEED_BASE = 300
REACTOR_SEED_SPAN = 100

#: Seeds in [TELEMETRY_SEED_BASE, TELEMETRY_SEED_BASE +
#: TELEMETRY_SEED_SPAN) draw the "telemetry" profile: observability
#: forced on, a heartbeat floor, a push-leaning interchange mix, and —
#: replay-side — a TelemetryAgent per island streaming delta reports to
#: one drawn TelemetryCollector (see ``repro.testkit.telemetry_profile``)
#: audited by the telemetry-soundness oracle under the same fault
#: schedules as every other band.  Corpus seeds 400-404 are pinned.
TELEMETRY_SEED_BASE = 400
TELEMETRY_SEED_SPAN = 100

#: Seeds in [PERSISTENCE_SEED_BASE, PERSISTENCE_SEED_BASE +
#: PERSISTENCE_SEED_SPAN) draw the "persistence" profile — the
#: restart-torture band.  Replay-side, every gateway and the directory
#: carry a WAL journal (``repro.testkit.persistence_profile``), the
#: fault script is guaranteed 1-3 crash→restart cycles on gateway nodes
#: on top of the usual draws, and the workload is publish-heavy so the
#: crashes land amid queued/retained event traffic.  Judged by the
#: no-lost-acked-event and replay-idempotence oracles.  Corpus seeds
#: 500-504 are pinned in tests/testkit.
PERSISTENCE_SEED_BASE = 500
PERSISTENCE_SEED_SPAN = 100

#: Extra virtual seconds appended to the run window on persistence-band
#: seeds before shutdown: a cold restart late in the script still needs
#: its restart delay (≤ 8s), a channel watchdog round (~35s) and a poll
#: interval (≤ 5s) to land retained redeliveries the durability oracle
#: will demand.
PERSISTENCE_SETTLE = 90.0

#: Seeds in [SCALE_SEED_BASE, SCALE_SEED_BASE + SCALE_SEED_SPAN) draw the
#: "scale" profile — the federation band.  Topologies carry a sharded,
#: replicated directory plane (``repro.core.shard``: 4-16 shards, 2-3
#: replicas each) plus a 1k-4k-island stub catalogue installed replay-side
#: as pure directory data (``repro.testkit.scale_profile``) — no gateway
#: stacks, no wire traffic.  The workload is lookup-heavy with half the
#: lookups aimed at stub names so every shard sees cache-cold traffic,
#: and the ring-placement and replica-convergence oracles judge the run
#: alongside every historical invariant.  Corpus seeds 600-604 are
#: pinned in tests/testkit.
SCALE_SEED_BASE = 600
SCALE_SEED_SPAN = 100

#: Extra virtual seconds appended to the run window on scale-band seeds
#: before shutdown: anti-entropy rounds fire every ~2s per replica and a
#: fault landing on a replica late in the script still needs a few digest
#: →pull cycles for the convergence oracle's state comparison to settle.
SCALE_SETTLE = 30.0


def _profile_for(seed: int) -> str:
    if PUSH_SEED_BASE <= seed < PUSH_SEED_BASE + PUSH_SEED_SPAN:
        return "push"
    if RULES_SEED_BASE <= seed < RULES_SEED_BASE + RULES_SEED_SPAN:
        return "rules"
    if REACTOR_SEED_BASE <= seed < REACTOR_SEED_BASE + REACTOR_SEED_SPAN:
        return "reactor"
    if TELEMETRY_SEED_BASE <= seed < TELEMETRY_SEED_BASE + TELEMETRY_SEED_SPAN:
        return "telemetry"
    if PERSISTENCE_SEED_BASE <= seed < PERSISTENCE_SEED_BASE + PERSISTENCE_SEED_SPAN:
        return "persistence"
    if SCALE_SEED_BASE <= seed < SCALE_SEED_BASE + SCALE_SEED_SPAN:
        return "scale"
    return "default"


def generate(
    seed: int, steps: int = 40
) -> tuple[TopologySpec, list[WorkloadOp], list[tuple[float, FaultAction]]]:
    """All three scripts for a seed — pure data, no simulation."""
    profile = _profile_for(seed)
    spec = TopologyGen().generate(seed, profile=profile)
    ops = WorkloadGen().generate(spec, steps, profile=profile)
    faults = FaultPlanGen().generate(spec, ops, seed, profile=profile)
    return spec, ops, faults


def replay(
    spec: TopologySpec,
    ops: list[WorkloadOp],
    faults: list[tuple[float, FaultAction]],
    inject_bug: str | None = None,
    persist: bool | None = None,
) -> RunResult:
    """Run the scripts against a fresh world and judge every invariant.

    ``persist`` forces WAL journals on (True) or off (False) regardless
    of the seed band; the default (None) attaches them exactly on
    persistence-profile seeds.  With journals off every call site is
    inert, so non-persistence bands stay byte-identical to their pinned
    baselines.
    """
    if inject_bug is not None and inject_bug not in INJECTABLE_BUGS:
        raise ValueError(f"unknown bug {inject_bug!r}; pick from {INJECTABLE_BUGS}")
    world = build_world(spec, force_obs=(inject_bug == "unfinished-span"))
    suite = InvariantSuite(world)
    runner = WorkloadRunner(world)

    profile = _profile_for(spec.seed)
    do_persist = persist if persist is not None else (profile == "persistence")
    if do_persist:
        # Before connect: the registrations and exports connect performs
        # are exactly what a recovering gateway must replay.
        from repro.testkit.persistence_profile import install_persistence

        install_persistence(world)

    if inject_bug == "leak-connection":
        # Pooled connections whose idle timer never fires: with
        # idle_timeout=0 the pool keeps every connection warm forever.
        immortal = InterchangeConfig(keep_alive=True, idle_timeout=0.0)
        for _, http in world.http_clients():
            http.config = immortal

    error = ""
    try:
        world.sim.run_until_complete(world.mm.connect(), timeout=CONNECT_TIMEOUT)
    except Exception as exc:  # noqa: BLE001 - report, don't mask
        error = f"connect failed: {type(exc).__name__}: {exc}"

    if profile == "telemetry" and not error:
        # Mount the collector's cross-gateway subscription before the
        # workload clock starts, so report channels are open from t=0 of
        # the script (its announcement traffic is part of the band's
        # pinned wire behaviour).
        from repro.testkit.telemetry_profile import install_telemetry

        collector = install_telemetry(world)
        try:
            world.sim.run_until_complete(collector.mount(), timeout=CONNECT_TIMEOUT)
        except Exception as exc:  # noqa: BLE001 - report, don't mask
            error = f"telemetry mount failed: {type(exc).__name__}: {exc}"

    if profile == "scale" and not error:
        # Seed the stub catalogue straight into the shard primaries (pure
        # data, no wire) before the workload clock starts, so lookups at
        # t=0 already face a directory holding thousands of islands and
        # anti-entropy has the whole catalogue to replicate.
        from repro.testkit.scale_profile import install_scale

        install_scale(world)

    start = world.sim.now
    _plant_bug(inject_bug, world, start)
    if profile == "rules":
        from repro.testkit.rules_profile import install_rule_engines

        install_rule_engines(world)
        for host, engine in sorted(world.rule_engines.items()):
            journal = world.journals.get(host)
            if journal is not None:
                engine.attach_journal(journal)
            engine.start()
    # Every band flies black boxes: recorders are passive (no wire/clock
    # effects), so the historical determinism pins hold unchanged.
    from repro.testkit.blackbox import install_flight_recorders

    install_flight_recorders(world)
    for _, agent in sorted(world.telemetry_agents.items()):
        agent.start()
    runner.schedule(ops, start)

    plan = FaultPlan(seed=spec.seed)
    fault_end = start
    for at, action in faults:
        plan.at(start + at, action)
        window = getattr(action, "duration", 0.0) or 0.0
        restart = getattr(action, "restart_after", None) or 0.0
        fault_end = max(fault_end, start + at + max(window, restart))
    injector = FaultInjector(world.network, plan, mm=world.mm).arm()

    def on_fault(action: FaultAction, record: Any) -> None:
        if isinstance(action, NodeCrash) and action.node.startswith("gw-"):
            recorder = world.flight.get(action.node[3:])
            if recorder is not None:
                recorder.record("fault", description=record.description)
                recorder.trigger("node-crash")

    injector.on_fault = on_fault

    last_op = max((op.time for op in ops), default=0.0)
    end = max(start + last_op, fault_end) + 1.0
    if do_persist:
        end += PERSISTENCE_SETTLE
    if profile == "scale":
        end += SCALE_SETTLE
    world.sim.run(until=end)
    for _, engine in sorted(world.rule_engines.items()):
        engine.stop()
    for _, agent in sorted(world.telemetry_agents.items()):
        agent.stop()
    world.mm.shutdown()
    world.sim.run(until=end + QUIESCE_MARGIN)

    violations = suite.finish(runner, injector.report())
    if violations:
        # Every oracle failure ships its black boxes: the shrinker and
        # sweep attach these dumps next to the minimized repro.
        for _, recorder in sorted(world.flight.items()):
            recorder.trigger("oracle-failure")
    result = RunResult(
        seed=spec.seed,
        spec=spec,
        ops=ops,
        faults=faults,
        violations=violations,
        report=injector.report(),
        world=world,
        runner=runner,
        start_time=start,
        end_time=world.sim.now,
        error=error,
    )
    result._metrics = _snapshot_metrics(world)
    return result


def _plant_bug(inject_bug: str | None, world: World, start: float) -> None:
    if inject_bug is None:
        return
    sim = world.sim
    first = world.mm.islands[world.spec.island_names[0]].gateway
    if inject_bug == "swallow-call":
        for island in world.mm.islands.values():
            gateway = island.gateway
            original = gateway.invoke

            def swallowing(
                service: str, operation: str, args: list, _orig=original
            ) -> SimFuture:
                if operation == "get":
                    return SimFuture()  # accepted, then silently dropped
                return _orig(service, operation, args)

            gateway.invoke = swallowing  # type: ignore[method-assign]
    elif inject_bug == "illegal-breaker":
        sim.at(
            start,
            lambda: first.resilience.breaker_for("testkit-phantom")._set_state(
                "half-open"
            ),
        )
    elif inject_bug == "phantom-island":
        from repro.soap.wsdl import WsdlDocument

        sim.at(
            start,
            lambda: world.mm.uddi.directory.publish(
                WsdlDocument(
                    service="Svc_phantom",
                    location="soap://0.0.0.0:1/Svc_phantom",
                    context={"island": "atlantis", "middleware": "ghost"},
                )
            ),
        )
    elif inject_bug == "unfinished-span":
        assert world.obs is not None
        sim.at(start, lambda: world.obs.tracer.start_span("testkit.leaked"))
    elif inject_bug == "uncounted-drop":
        # Installed at workload start (not during connect, which has no
        # fault tolerance) and spliced under whatever the injector stacks.
        def install() -> None:
            world.backbone.loss_model = _EveryNthDrop(7, world.backbone.loss_model)

        sim.at(start, install)
    # "leak-connection" is planted before connect in replay().


def _snapshot_metrics(world: World) -> dict[str, Any]:
    traffic = {
        protocol: {
            "frames": stats.frames,
            "bytes": stats.bytes,
            "dropped_frames": stats.dropped_frames,
        }
        for protocol, stats in sorted(world.monitor.stats.items())
    }
    segments = {
        segment.name: {
            "frames_sent": segment.frames_sent,
            "bytes_sent": segment.bytes_sent,
            "frames_delivered": segment.frames_delivered,
            "frames_blocked": segment.frames_blocked,
            "delivery_opportunities": segment.delivery_opportunities,
        }
        for segment in world.segments()
    }
    events = {
        name: {
            "published": island.gateway.events.events_published,
            "delivered": island.gateway.events.events_delivered,
            "polls": island.gateway.events.polls_performed,
            "pushed": island.gateway.events.events_pushed,
            "waits": island.gateway.events.waits_handled,
            "channels_opened": island.gateway.events.channels_opened,
            "channel_deaths": island.gateway.events.channel_deaths,
            "log_dropped": island.gateway.events.delivery_log_dropped,
        }
        for name, island in sorted(world.mm.islands.items())
    }
    snapshot: dict[str, Any] = {
        "resilience": world.mm.resilience_report(),
        "traffic": traffic,
        "segments": segments,
        "events": events,
    }
    if world.rule_engines:
        snapshot["rules"] = {
            name: {
                "fired": engine.fired_count,
                "suppressed": engine.suppressed_count,
                "actions_failed": engine.actions_failed_count,
                "firings": len(engine.firings),
                "schedule_occurrences": len(engine.schedule_log),
            }
            for name, engine in sorted(world.rule_engines.items())
        }
    if world.telemetry_collector is not None:
        snapshot["telemetry"] = {
            "federation": world.telemetry_collector.federation_snapshot(),
            "delivery": world.telemetry_collector.delivery_stats(),
            "agents": {
                name: {"seq": agent.seq, "reports": agent.reports_emitted}
                for name, agent in sorted(world.telemetry_agents.items())
            },
        }
    if world.journals or world.directory_journal is not None:
        persistence: dict[str, Any] = {}
        for name, journal in sorted(world.journals.items()):
            gateway = world.mm.islands[name].gateway
            persistence[name] = {
                "records": journal.store.records_appended,
                "bytes": journal.store.bytes_appended,
                "checkpoints": journal.checkpoints,
                "replays": journal.replays,
                "truncations": journal.truncations_detected,
                "cold_crashes": gateway.cold_crashes,
                "recoveries": gateway.recoveries,
            }
        if world.directory_journal is not None:
            directory = world.mm.uddi.directory
            persistence["uddi-directory"] = {
                "records": world.directory_journal.store.records_appended,
                "bytes": world.directory_journal.store.bytes_appended,
                "checkpoints": world.directory_journal.checkpoints,
                "replays": world.directory_journal.replays,
                "truncations": world.directory_journal.truncations_detected,
                "cold_crashes": directory.cold_crashes,
                "recoveries": directory.recoveries,
            }
        snapshot["persistence"] = persistence
    if world.federation is not None:
        snapshot["federation"] = world.federation.stats()
    if world.obs is not None:
        snapshot["metrics"] = world.obs.metrics.snapshot()
        snapshot["spans"] = len(world.obs.tracer.spans)
    return snapshot


def check(
    seed: int,
    steps: int = 40,
    inject_bug: str | None = None,
    persist: bool | None = None,
) -> RunResult:
    """Generate + replay + judge one seed."""
    spec, ops, faults = generate(seed, steps)
    return replay(spec, ops, faults, inject_bug=inject_bug, persist=persist)


def sweep(
    seeds: list[int],
    steps: int = 40,
    inject_bug: str | None = None,
    persist: bool | None = None,
) -> list[RunResult]:
    """Run many seeds; return only the failing results."""
    failures = []
    for seed in seeds:
        result = check(seed, steps=steps, inject_bug=inject_bug, persist=persist)
        if not result.ok:
            failures.append(result)
    return failures
