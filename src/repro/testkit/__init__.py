"""Deterministic simulation-testing harness (FoundationDB-style).

One integer seed fully determines a run: the topology (``TopologyGen``),
the workload script (``WorkloadGen``), and the fault schedule
(``FaultPlanGen``) are all pure data derived from the seed before the
simulation starts.  ``runner.check`` replays the scripts against a fresh
world and evaluates system-wide invariants (``oracles.InvariantSuite``);
``shrink.shrink_failure`` minimises a failing script to a small repro.

Reproduce any failure with::

    PYTHONPATH=src python -m repro.testkit --seed <seed> --shrink
"""

from repro.testkit.topology import IslandSpec, ServiceSpec, TopologyGen, TopologySpec, World, build_world
from repro.testkit.workload import WorkloadGen, WorkloadOp, WorkloadRunner
from repro.testkit.oracles import InvariantSuite, Violation
from repro.testkit.runner import FaultPlanGen, RunResult, check, generate, replay, sweep
from repro.testkit.shrink import ShrinkResult, shrink_failure

__all__ = [
    "FaultPlanGen",
    "InvariantSuite",
    "IslandSpec",
    "RunResult",
    "ServiceSpec",
    "ShrinkResult",
    "TopologyGen",
    "TopologySpec",
    "Violation",
    "WorkloadGen",
    "WorkloadOp",
    "WorkloadRunner",
    "World",
    "build_world",
    "check",
    "generate",
    "replay",
    "shrink_failure",
    "sweep",
]
