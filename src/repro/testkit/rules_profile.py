"""Deterministic rule-engine installation for the ``rules`` seed band.

Seeds in [200, 300) (see :mod:`repro.testkit.runner`) host automation
rules over the generated world: a couple of islands each run a
:class:`~repro.rules.engine.RuleEngine` whose rules trigger on the
workload's own publish topics (including prefix patterns) and on
sim-clock schedules, and whose actions invoke the generated ``Svc_*``
services over the ordinary bridged call path.

Like every other testkit script, the rule set is **pure data drawn from
the seed** (``generate_rules(spec)`` never looks at a live world), so a
replayed seed installs byte-identical rules and the schedule-determinism
oracle can recompute every due instant from closed form.
"""

from __future__ import annotations

import random

from repro.rules import dsl
from repro.rules.engine import Rule, RuleEngine
from repro.testkit.topology import TopologySpec, World
from repro.testkit.workload import TOPICS

#: Schedule intervals are drawn from primes-ish gaps so several rules'
#: occurrences interleave rather than stacking on one instant.
_INTERVALS = (3.0, 5.0, 8.0, 13.0)

#: Rule actions publish here — a topic outside the workload's ``TOPICS``
#: and outside every generated trigger, so rules can never feed rules
#: (no event loops regardless of the draw).
OUT_TOPIC = "rules.out"

_ACTION_OPS = ("get", "add", "echo", "fail")
_ACTION_OP_WEIGHTS = (35, 35, 20, 10)


def generate_rules(spec: TopologySpec) -> dict[str, list[Rule]]:
    """Draw the per-island rule sets for a spec (pure data)."""
    rng = random.Random(f"testkit:rules:{spec.seed}")
    hosts = sorted(rng.sample(spec.island_names, min(len(spec.island_names), 2)))
    services = list(spec.service_names)
    plan: dict[str, list[Rule]] = {}
    for host in hosts:
        rules = []
        for slot in range(rng.randint(2, 4)):
            name = f"rule-{host}-{slot}"
            builder = dsl.rule(name)
            if rng.random() < 0.6:
                topic = rng.choice(TOPICS)
                if rng.random() < 0.3:
                    topic = topic[: rng.randint(1, 2)] + "*"
                builder.when(dsl.on_event(topic))
                if rng.random() < 0.4:
                    # Workload payloads are ints in [0, 999]; gate on them.
                    builder.only_if(dsl.payload("").ge(rng.randint(100, 800)))
                builder.cooldown(rng.choice((0.0, 0.0, 1.5, 4.0)))
            else:
                builder.when(
                    dsl.every(
                        rng.choice(_INTERVALS),
                        offset=round(rng.uniform(0.0, 4.0), 3),
                    )
                )
            for _ in range(rng.randint(1, 2)):
                if rng.random() < 0.15:
                    builder.then(dsl.publish(OUT_TOPIC, rule=name))
                    continue
                operation = rng.choices(_ACTION_OPS, weights=_ACTION_OP_WEIGHTS)[0]
                args: tuple = ()
                if operation == "add":
                    args = (rng.randint(1, 9),)
                elif operation == "echo":
                    args = (name,)
                builder.then(dsl.invoke(rng.choice(services), operation, *args))
            rules.append(builder.build())
        plan[host] = rules
    return plan


def install_rule_engines(world: World) -> dict[str, RuleEngine]:
    """Build (but do not start) one engine per drawn host island."""
    for host, rules in sorted(generate_rules(world.spec).items()):
        engine = RuleEngine(world.mm.islands[host].gateway)
        for rule in rules:
            engine.add_rule(rule)
        world.rule_engines[host] = engine
    return world.rule_engines
