"""Flight-recorder installation for testkit runs.

Every replay (all seed bands) gets one :class:`~repro.obs.flight.
FlightRecorder` per gateway node, fed from the passive observability
seams — span finishes, monitored frames, breaker transitions, heartbeat
flips, watchdog reaps, rule firings.  Recording never touches the wire
or the clock, so the determinism pins (workload/metrics byte-identity)
hold with recorders installed.

Dumps are triggered by the runner on three signals (the ISSUE-8
contract): a crash injection landing on a gateway node, an HTTP watchdog
reaping a wedged exchange (wired here via ``HttpClient.flight``), and an
oracle failure at the end of the run — so every minimized repro ships
its black box.
"""

from __future__ import annotations

from repro.obs.flight import FlightRecorder
from repro.testkit.topology import World


def install_flight_recorders(world: World) -> dict[str, FlightRecorder]:
    """One recorder per gateway node, wired to every passive seam."""
    recorders: dict[str, FlightRecorder] = {}
    for ispec in world.spec.islands:
        island = ispec.name
        gateway = world.mm.islands[island].gateway
        recorder = FlightRecorder(world.sim, node=f"gw-{island}")
        if world.obs is not None:
            recorder.watch_tracer(world.obs.tracer, island=island)
        recorder.watch_breakers(gateway.resilience, home=island)
        recorder.watch_heartbeat(gateway.heartbeat, home=island)
        gateway.protocol.client.http.flight = recorder
        gateway.vsr.soap.http.flight = recorder
        recorders[island] = recorder
    for host, engine in sorted(world.rule_engines.items()):
        recorders[host].watch_engine(engine)

    # Frame feed: each island's own segment goes to its recorder; a
    # *dropped* backbone frame is everyone's problem (the shared wire is
    # dying), so it lands in every black box.
    segment_island = {
        ispec.segment_name: ispec.name
        for ispec in world.spec.islands
        if ispec.segment_name
    }

    def on_frame(segment: str, protocol: str, size: int, dropped: bool) -> None:
        island = segment_island.get(segment)
        if island is not None:
            recorders[island].record(
                "frame", segment=segment, protocol=protocol, size=size,
                dropped=dropped,
            )
        elif dropped:
            for recorder in recorders.values():
                recorder.record(
                    "frame", segment=segment, protocol=protocol, size=size,
                    dropped=dropped,
                )

    world.monitor.frame_listeners.append(on_frame)
    world.flight.update(recorders)
    return recorders
