"""Reproduce a testkit failure from its printed seed.

    PYTHONPATH=src python -m repro.testkit --seed 1234            # one run
    PYTHONPATH=src python -m repro.testkit --seed 1234 --shrink   # minimise
    PYTHONPATH=src python -m repro.testkit --sweep 200            # hunt
"""

from __future__ import annotations

import argparse
import sys

from repro.testkit.runner import INJECTABLE_BUGS, check
from repro.testkit.shrink import shrink_failure


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.testkit", description=__doc__)
    parser.add_argument("--seed", type=int, default=None, help="seed to replay")
    parser.add_argument("--steps", type=int, default=40, help="workload length")
    parser.add_argument(
        "--sweep", type=int, default=0, metavar="N",
        help="run seeds 0..N-1 and report the first failure",
    )
    parser.add_argument(
        "--shrink", action="store_true", help="minimise the failure before printing"
    )
    parser.add_argument(
        "--inject-bug", choices=INJECTABLE_BUGS, default=None,
        help="plant a known defect (oracle liveness checks)",
    )
    args = parser.parse_args(argv)

    if args.sweep:
        for seed in range(args.sweep):
            result = check(seed, steps=args.steps, inject_bug=args.inject_bug)
            status = "ok" if result.ok else "FAIL"
            print(f"seed {seed}: {status}")
            if not result.ok:
                args.seed = seed
                break
        else:
            print(f"all {args.sweep} seeds green")
            return 0

    if args.seed is None:
        parser.error("--seed (or a failing --sweep) is required")

    if args.shrink:
        shrunk = shrink_failure(args.seed, steps=args.steps, inject_bug=args.inject_bug)
        print(shrunk.render())
        return 1
    result = check(args.seed, steps=args.steps, inject_bug=args.inject_bug)
    if result.ok:
        print(f"seed {args.seed}: every invariant held")
        return 0
    print(result.render_repro())
    return 1


if __name__ == "__main__":
    sys.exit(main())
