"""Seeded random topologies: a whole simulated home from one integer.

``TopologyGen.generate(seed)`` draws a :class:`TopologySpec` — pure frozen
data — and ``build_world(spec)`` assembles the live world from it.  The
split matters: specs are comparable, printable and replayable, and the
shrinker can rebuild the identical world for every candidate subset.

RNG streams are namespaced (``testkit:topology:<seed>``) with string seeds
so results do not depend on ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.core.framework import Island, MetaMiddleware
from repro.core.interface import ServiceInterface, simple_interface
from repro.core.pcm import ProtocolConversionManager
from repro.core.resilience import CallPolicy
from repro.net.monitor import TrafficMonitor
from repro.net.network import Network
from repro.net.segment import EthernetSegment, IEEE1394Segment, Segment
from repro.net.simkernel import SimFuture, Simulator
from repro.obs import Observability
from repro.soap.http import (
    FAST_INTERCHANGE,
    PUSH_INTERCHANGE,
    REACTOR_INTERCHANGE,
    InterchangeConfig,
)

#: Middleware kinds islands are drawn from; x10 and mail are bus-less
#: (their native medium carries no SOAP, so the gateway is backbone-only).
ISLAND_KINDS = ("jini", "havi", "upnp", "x10", "mail")

_SEGMENT_SUFFIX = {"jini": "-lan", "upnp": "-lan", "havi": "-bus"}

#: Every generated service speaks the same small interface; behavioural
#: variety comes from the workload, not from per-service schemas.
SERVICE_OPS = {
    "get": ("->int",),
    "add": ("int", "->int"),
    "echo": ("string", "->string"),
    "fail": (),
}


def service_interface(name: str) -> ServiceInterface:
    return simple_interface(name, dict(SERVICE_OPS))


# ---------------------------------------------------------------------------
# Specs (pure data)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ServiceSpec:
    name: str


@dataclass(frozen=True)
class IslandSpec:
    name: str
    kind: str
    services: tuple[str, ...]
    #: "legacy" | "keepalive" | "fast" | "push" — wire behaviour of this
    #: island's SOAP client/protocol (mixed-format worlds exercise
    #: negotiation; "push" adds streamed event channels).
    interchange: str
    poll_interval: float

    @property
    def segment_name(self) -> str | None:
        suffix = _SEGMENT_SUFFIX.get(self.kind)
        return f"{self.name}{suffix}" if suffix else None


@dataclass(frozen=True)
class TopologySpec:
    seed: int
    islands: tuple[IslandSpec, ...]
    obs_enabled: bool
    deadline: float
    max_retries: int
    breaker_threshold: int
    heartbeat_interval: float
    #: Directory federation (scale band): 0 = the legacy single
    #: directory; >=1 builds a sharded, replicated plane
    #: (``repro.core.shard``) with this many shards...
    federation_shards: int = 0
    #: ...each replicated this many ways.
    federation_replicas: int = 1
    #: Pure-data island stubs seeded straight into the shard primaries
    #: after connect (no gateway stacks — see testkit.scale_profile).
    stub_islands: int = 0

    @property
    def service_names(self) -> list[str]:
        return [name for island in self.islands for name in island.services]

    @property
    def island_names(self) -> list[str]:
        return [island.name for island in self.islands]

    @property
    def directory_node_names(self) -> list[str]:
        """The directory plane's backbone node names (one for the legacy
        or trivial-federation shape, N*R replicas otherwise)."""
        if self.federation_shards <= 0 or (
            self.federation_shards == 1 and self.federation_replicas == 1
        ):
            return ["uddi-directory"]
        return [
            f"vsr-s{shard}r{replica}"
            for shard in range(self.federation_shards)
            for replica in range(self.federation_replicas)
        ]

    @property
    def node_names(self) -> list[str]:
        """Every backbone node a fault can target."""
        return self.directory_node_names + [
            f"gw-{island.name}" for island in self.islands
        ]

    @property
    def segment_names(self) -> list[str]:
        names = ["backbone"]
        for island in self.islands:
            if island.segment_name:
                names.append(island.segment_name)
        return names

    def describe(self) -> str:
        lines = [
            f"topology seed={self.seed}: {len(self.islands)} islands, "
            f"{len(self.service_names)} services, "
            f"deadline={self.deadline:g}s retries={self.max_retries} "
            f"breaker={self.breaker_threshold} "
            f"heartbeat={self.heartbeat_interval:g}s "
            f"obs={'on' if self.obs_enabled else 'off'}"
        ]
        if self.federation_shards:
            lines.append(
                f"  federation: {self.federation_shards} shards x "
                f"{self.federation_replicas} replicas, "
                f"{self.stub_islands} stub islands"
            )
        for island in self.islands:
            lines.append(
                f"  {island.name} ({island.kind}, {island.interchange}, "
                f"poll={island.poll_interval:g}s): "
                f"{len(island.services)} services"
            )
        return "\n".join(lines)


class TopologyGen:
    """Draws a random :class:`TopologySpec` from a seed.

    ``profile`` selects the interchange mix: the ``"default"`` profile
    keeps the historical draw (so every pinned corpus and sweep seed
    replays byte-identically), while ``"push"`` mixes push-capable
    islands in with legacy ones so seeds in that band exercise streamed
    event channels *and* their polling fallback against mixed peers.
    """

    MIN_ISLANDS = 2
    MAX_ISLANDS = 6
    MIN_SERVICES = 1
    MAX_SERVICES = 20

    _INTERCHANGE_DRAWS = {
        "default": (("legacy", "keepalive", "fast"), (40, 25, 35)),
        "push": (("legacy", "keepalive", "fast", "push"), (25, 10, 20, 45)),
        # Rules seeds lean even harder on push so trigger events mostly
        # ride streamed channels, but keep legacy islands in the mix so
        # redelivered (at-least-once) events hit the engines' dedup.
        "rules": (("legacy", "fast", "push"), (20, 20, 60)),
        # Reactor seeds lean on the vectored/pipelined substrate while
        # keeping every older wire shape in the mix, so coalesced
        # transmissions interoperate with legacy peers under faults.
        "reactor": (("legacy", "fast", "push", "reactor"), (15, 15, 20, 50)),
        # Telemetry seeds favour push (reports stream over channels) but
        # keep legacy/fast islands so delta reports also ride the polling
        # fallback and its redelivery duplicates hit the collector dedup.
        "telemetry": (("legacy", "fast", "push", "reactor"), (15, 20, 45, 20)),
        # Persistence seeds favour push so crashes hit retained unacked
        # batches and channel re-establishment, but keep legacy/fast/
        # reactor islands so WAL recovery also rides plain polling and
        # vectored wires (the restart matrix in miniature, seeded).
        "persistence": (("legacy", "fast", "push", "reactor"), (20, 15, 45, 20)),
        # Scale seeds (federated directory, thousands of stub islands)
        # lean on fast/reactor wires — lookup throughput is the point —
        # with legacy islands kept in so the ring-aware client also rides
        # the one-shot wire.  No push weight: event channels add nothing
        # to directory scaling and the subscribe weight is zero anyway.
        "scale": (("legacy", "fast", "reactor"), (25, 40, 35)),
    }

    def generate(self, seed: int, profile: str = "default") -> TopologySpec:
        choices, weights = self._INTERCHANGE_DRAWS[profile]
        rng = random.Random(f"testkit:topology:{seed}")
        islands = []
        for index in range(rng.randint(self.MIN_ISLANDS, self.MAX_ISLANDS)):
            kind = rng.choice(ISLAND_KINDS)
            name = f"{kind}{index}"
            services = tuple(
                f"Svc_{name}_{slot}"
                for slot in range(rng.randint(self.MIN_SERVICES, self.MAX_SERVICES))
            )
            interchange = rng.choices(choices, weights=weights)[0]
            islands.append(
                IslandSpec(
                    name=name,
                    kind=kind,
                    services=services,
                    interchange=interchange,
                    poll_interval=rng.choice((1.0, 2.0, 5.0)),
                )
            )
        # Draw everything first (preserving the historical draw order so
        # non-telemetry bands replay byte-identically), then apply the
        # telemetry profile's floors: agents need a live registry to
        # snapshot and a heartbeat for the collector's staleness scoring.
        obs_draw = rng.random() < 0.5
        deadline = rng.choice((5.0, 10.0, 15.0))
        max_retries = rng.choice((0, 1, 2))
        breaker_threshold = rng.choice((0, 3, 5))
        heartbeat_interval = rng.choice((0.0, 0.0, 5.0, 10.0))
        if profile == "telemetry":
            obs_draw = True
            if heartbeat_interval == 0.0:
                heartbeat_interval = 5.0
        # Scale-band draws come *after* every base draw so the shared RNG
        # prefix (and with it, every other band's scripts for the same
        # seed) stays byte-identical.
        federation_shards = 0
        federation_replicas = 1
        stub_islands = 0
        if profile == "scale":
            federation_shards = rng.choice((4, 8, 16))
            federation_replicas = rng.choice((2, 3))
            stub_islands = rng.choices((1000, 2000, 4000), weights=(50, 35, 15))[0]
            # Thousands of stub registrations sit in the gateway registry:
            # heartbeating them all would drown the band in ping traffic.
            heartbeat_interval = 0.0
        return TopologySpec(
            seed=seed,
            islands=tuple(islands),
            obs_enabled=obs_draw,
            deadline=deadline,
            max_retries=max_retries,
            breaker_threshold=breaker_threshold,
            heartbeat_interval=heartbeat_interval,
            federation_shards=federation_shards,
            federation_replicas=federation_replicas,
            stub_islands=stub_islands,
        )


# ---------------------------------------------------------------------------
# Live world
# ---------------------------------------------------------------------------


class SimService:
    """The one service implementation every generated island hosts."""

    def __init__(self) -> None:
        self.value = 0
        self.calls = 0

    def get(self) -> int:
        self.calls += 1
        return self.value

    def add(self, amount: int) -> int:
        self.calls += 1
        self.value += amount
        return self.value

    def echo(self, message: str) -> str:
        self.calls += 1
        return message

    def fail(self) -> None:
        self.calls += 1
        raise RuntimeError("SimService.fail always fails")


class SimServicePcm(ProtocolConversionManager):
    """PCM hosting :class:`SimService` instances for one generated island.

    ``middleware_name`` is per-instance (the island's kind) so exported
    WSDL context looks like a heterogeneous home, not five clones.
    """

    def __init__(
        self,
        vsg: Any,
        kind: str,
        services: dict[str, SimService],
    ) -> None:
        super().__init__(vsg)
        self.middleware_name = kind
        self.services = services
        self.facades: dict[str, Any] = {}

    def _discover_local_services(self) -> SimFuture:
        discovered = []
        for name, service in self.services.items():
            def handler(operation: str, args: list, _svc: SimService = service) -> Any:
                return getattr(_svc, operation)(*args)

            discovered.append(
                (name, service_interface(name), handler, {"kind": self.middleware_name})
            )
        return SimFuture.completed(discovered)

    def _materialise(self, document: Any, interface: ServiceInterface) -> SimFuture:
        self.facades[document.service] = self.remote_proxy(document)
        return SimFuture.completed(True)


_INTERCHANGE = {
    "legacy": None,  # framework default = legacy wire behaviour
    "keepalive": InterchangeConfig(keep_alive=True),
    "fast": FAST_INTERCHANGE,
    "push": PUSH_INTERCHANGE,
    "reactor": REACTOR_INTERCHANGE,
}


@dataclass
class World:
    """Everything a run (and its oracles) needs a handle on."""

    spec: TopologySpec
    sim: Simulator
    network: Network
    backbone: Segment
    mm: MetaMiddleware
    monitor: TrafficMonitor
    obs: Observability | None
    services: dict[str, SimService]
    service_island: dict[str, str]
    pcms: dict[str, SimServicePcm] = field(default_factory=dict)
    #: Rule engines installed by the "rules" profile, keyed by host
    #: island (empty on every other profile); see testkit.rules_profile.
    rule_engines: dict[str, Any] = field(default_factory=dict)
    #: Flight recorders, one per gateway node (installed for every
    #: profile by the runner); see testkit.blackbox.
    flight: dict[str, Any] = field(default_factory=dict)
    #: Telemetry agents keyed by island + the single collector, installed
    #: by the "telemetry" profile; see testkit.telemetry_profile.
    telemetry_agents: dict[str, Any] = field(default_factory=dict)
    telemetry_collector: Any = None
    #: WAL journals installed by the "persistence" profile: one
    #: GatewayJournal per island (keyed by island name) plus the
    #: directory's DirectoryJournal; empty/None on every other profile.
    #: The journals' MemWalStores are the durable medium — owned here,
    #: outside any node, so crashes cannot touch them.
    journals: dict[str, Any] = field(default_factory=dict)
    directory_journal: Any = None
    #: The sharded directory plane (``repro.core.shard.VsrFederation``)
    #: on scale-profile seeds; None everywhere else.
    federation: Any = None
    #: Names of the pure-data stub islands the scale profile seeded into
    #: the shard primaries (empty off the scale band); the vsr-islands
    #: oracle treats them as known.
    scale_stubs: tuple[str, ...] = ()

    @property
    def islands(self) -> dict[str, Island]:
        return self.mm.islands

    def segments(self) -> list[Segment]:
        return [self.network.segments[name] for name in self.spec.segment_names]

    def http_clients(self) -> list[tuple[str, Any]]:
        """Every pooled HTTP client the pool-leak oracle must audit.

        Event channels own a dedicated keep-alive client per remote
        gateway; ``channel_clients`` retains even dead ones, so a channel
        that leaked its connection past shutdown is still caught here.
        """
        clients = []
        for name, island in self.mm.islands.items():
            clients.append((f"{name}.protocol", island.gateway.protocol.client.http))
            clients.append((f"{name}.vsr", island.gateway.vsr.soap.http))
            for index, channel in enumerate(island.gateway.events.channel_clients):
                clients.append((f"{name}.events[{index}]", channel.http))
        return clients


def build_world(spec: TopologySpec, force_obs: bool = False) -> World:
    """Assemble the live world a spec describes (nothing has run yet)."""
    sim = Simulator()
    network = Network(sim)
    backbone = network.create_segment(EthernetSegment, "backbone")
    obs = Observability(sim) if (spec.obs_enabled or force_obs) else None
    policy = CallPolicy(
        deadline=spec.deadline,
        max_retries=spec.max_retries,
        breaker_threshold=spec.breaker_threshold,
        heartbeat_interval=spec.heartbeat_interval,
        # Directory round trips must be bounded too: an unanswerable
        # publish/withdraw would otherwise hang a workload future forever
        # and fail the call-completion oracle on a healthy world.
        directory_deadline=spec.deadline,
        seed=spec.seed,
    )
    federation_config = None
    if spec.federation_shards > 0:
        from repro.core.shard import FederationConfig

        federation_config = FederationConfig(
            shards=spec.federation_shards,
            replicas=spec.federation_replicas,
            ring_seed=f"testkit:ring:{spec.seed}",
            sync_interval=2.0,
            find_deadline=spec.deadline,
        )
    mm = MetaMiddleware(
        network, backbone, policy=policy, obs=obs, federation=federation_config
    )
    monitor = TrafficMonitor()
    monitor.watch(backbone)

    world = World(
        spec=spec,
        sim=sim,
        network=network,
        backbone=backbone,
        mm=mm,
        monitor=monitor,
        obs=obs,
        services={},
        service_island={},
        federation=mm.federation,
    )

    for ispec in spec.islands:
        segment: Segment | None = None
        if ispec.segment_name:
            cls = IEEE1394Segment if ispec.kind == "havi" else EthernetSegment
            segment = network.create_segment(cls, ispec.segment_name)
            monitor.watch(segment)
        services = {name: SimService() for name in ispec.services}
        world.services.update(services)
        for name in ispec.services:
            world.service_island[name] = ispec.name

        def pcm_factory(
            island: Island,
            _kind: str = ispec.kind,
            _services: dict[str, SimService] = services,
        ) -> SimServicePcm:
            return SimServicePcm(island.gateway, _kind, _services)

        mm.add_island(
            ispec.name,
            segment,
            pcm_factory=pcm_factory,
            poll_interval=ispec.poll_interval,
            interchange=_INTERCHANGE[ispec.interchange],
        )
        world.pcms[ispec.name] = mm.islands[ispec.name].pcm  # type: ignore[assignment]

    return world
