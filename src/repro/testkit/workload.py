"""Seeded workload scripts and their deterministic executor.

``WorkloadGen.generate(spec, steps)`` draws a list of :class:`WorkloadOp`
— pure data, derived only from the seed, never from run outcomes — so any
subset of the list replays meaningfully (the shrinker depends on this).

``WorkloadRunner`` schedules the ops on the sim clock, records every
intent the moment it is issued and every outcome the moment its future
settles, and keeps each issued future for the call-completion oracle:
an accepted call must end in exactly one reply or one declared failure.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Any

from repro.errors import GatewayError
from repro.net.simkernel import SimFuture
from repro.testkit.topology import SimService, TopologySpec, World, service_interface

TOPICS = ("alerts", "telemetry", "scene", "motion", "status")

_KINDS = ("call", "publish", "subscribe", "lookup", "join", "leave")
_WEIGHTS = (50, 15, 10, 10, 8, 7)
#: Publish-heavy mix for the push-profile seed band: event channels only
#: carry traffic when publishes land, and early subscribes open them.
_PUSH_WEIGHTS = (20, 45, 20, 5, 5, 5)
#: Rules-profile mix: publishes dominate (they are what trigger rules)
#: but calls stay frequent enough that rule actions contend with
#: ordinary workload traffic on the same services.
_RULES_WEIGHTS = (25, 45, 10, 5, 8, 7)
#: Reactor-profile mix: call-heavy with a strong publish side, so the
#: vectored/pipelined substrate sees both deep RPC pipelines and
#: coalesced event-frame bursts under the same fault schedules.
_REACTOR_WEIGHTS = (45, 30, 10, 5, 5, 5)
#: Telemetry-profile mix: call-heavy so the collector's success-rate
#: windows always have samples, with enough publishes that telemetry
#: reports share the event plane with real traffic.
_TELEMETRY_WEIGHTS = (45, 25, 12, 6, 6, 6)
#: Persistence-profile mix: publish-heavy (the crashes must land in the
#: middle of queued/retained event traffic for the no-lost-acked-event
#: oracle to bite) with early subscribes opening the delivery paths.
_PERSISTENCE_WEIGHTS = (20, 45, 20, 5, 5, 5)
#: Scale-profile mix: lookup-heavy (directory throughput is what the
#: federation exists for), zero subscribes — opening poll loops against
#: a registry holding thousands of stub islands would turn the band into
#: an announce storm that has nothing to do with directory scaling.
_SCALE_WEIGHTS = (35, 15, 0, 35, 7, 8)
_OPERATIONS = ("get", "add", "echo", "fail")
_OP_WEIGHTS = (40, 30, 20, 10)


@dataclass(frozen=True)
class WorkloadOp:
    """One scripted client action (pure data)."""

    index: int
    time: float
    kind: str
    island: str  # the island acting as the client
    service: str = ""
    operation: str = ""
    args: tuple[Any, ...] = ()
    topics: tuple[str, ...] = ()
    payload: Any = None

    def describe(self) -> str:
        if self.kind == "call":
            rendered = ", ".join(repr(a) for a in self.args)
            return f"[{self.island}] call {self.service}.{self.operation}({rendered})"
        if self.kind == "publish":
            return f"[{self.island}] publish {self.topics[0]} payload={self.payload!r}"
        if self.kind == "subscribe":
            return f"[{self.island}] subscribe {','.join(self.topics)}"
        if self.kind == "lookup":
            return f"[{self.island}] lookup {self.service}"
        if self.kind == "join":
            return f"[{self.island}] join {self.service}"
        if self.kind == "leave":
            return f"[{self.island}] leave {self.service}"
        return f"[{self.island}] {self.kind}"

    def as_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "time": self.time,
            "kind": self.kind,
            "detail": self.describe(),
        }


class WorkloadGen:
    """Draws a workload script from a topology spec's seed.

    ``profile="push"`` shifts the kind weights toward publish/subscribe
    (see ``_PUSH_WEIGHTS``); ``"default"`` keeps the historical draw so
    pinned seeds replay byte-identically.
    """

    def generate(
        self, spec: TopologySpec, steps: int, profile: str = "default"
    ) -> list[WorkloadOp]:
        if profile == "push":
            weights = _PUSH_WEIGHTS
        elif profile == "rules":
            weights = _RULES_WEIGHTS
        elif profile == "reactor":
            weights = _REACTOR_WEIGHTS
        elif profile == "telemetry":
            weights = _TELEMETRY_WEIGHTS
        elif profile == "persistence":
            weights = _PERSISTENCE_WEIGHTS
        elif profile == "scale":
            weights = _SCALE_WEIGHTS
        else:
            weights = _WEIGHTS
        rng = random.Random(f"testkit:workload:{spec.seed}")
        islands = spec.island_names
        # Track the catalog the script *intends* to exist so later ops can
        # target joined services; runtime failures (a leave racing a call)
        # surface as declared errors, which every oracle tolerates.
        alive: dict[str, list[str]] = {
            island.name: list(island.services) for island in spec.islands
        }
        all_services = list(spec.service_names)
        joined: dict[str, int] = {name: 0 for name in islands}
        ops: list[WorkloadOp] = []
        t = 0.0
        for index in range(steps):
            t += rng.uniform(0.05, 1.5)
            kind = rng.choices(_KINDS, weights=weights)[0]
            island = rng.choice(islands)
            if kind == "leave" and not alive[island]:
                kind = "publish"  # nothing left to withdraw; stay deterministic
            if kind == "call":
                service = rng.choice(all_services)
                operation = rng.choices(_OPERATIONS, weights=_OP_WEIGHTS)[0]
                args: tuple[Any, ...] = ()
                if operation == "add":
                    args = (rng.randint(1, 100),)
                elif operation == "echo":
                    args = (f"msg-{index}",)
                ops.append(WorkloadOp(index, t, kind, island,
                                      service=service, operation=operation, args=args))
            elif kind == "publish":
                ops.append(WorkloadOp(index, t, kind, island,
                                      topics=(rng.choice(TOPICS),),
                                      payload=rng.randint(0, 999)))
            elif kind == "subscribe":
                topics = tuple(rng.sample(TOPICS, rng.randint(1, 3)))
                ops.append(WorkloadOp(index, t, kind, island, topics=topics))
            elif kind == "lookup":
                if (
                    profile == "scale"
                    and spec.stub_islands
                    and rng.random() < 0.5
                ):
                    # Half the scale band's lookups target the seeded stub
                    # catalogue: names spread across every shard, mostly
                    # cache-cold, exactly the traffic sharding exists for.
                    service = f"Svc_stub{rng.randrange(spec.stub_islands)}"
                else:
                    service = rng.choice(all_services + ["Svc_ghost"])
                ops.append(WorkloadOp(index, t, kind, island, service=service))
            elif kind == "join":
                service = f"Svc_{island}_J{joined[island]}"
                joined[island] += 1
                alive[island].append(service)
                all_services.append(service)
                ops.append(WorkloadOp(index, t, kind, island, service=service))
            else:  # leave
                service = rng.choice(alive[island])
                alive[island].remove(service)
                ops.append(WorkloadOp(index, t, kind, island, service=service))
        return ops


class WorkloadRunner:
    """Executes a script against a world, logging intents and outcomes."""

    def __init__(self, world: World) -> None:
        self.world = world
        self.entries: list[dict[str, Any]] = []
        #: (op, future, log entry) for every async op — the call-completion
        #: oracle walks this after quiesce.
        self.pending: list[tuple[WorkloadOp, SimFuture, dict[str, Any]]] = []
        #: (op index, island a VSR lookup resolved to) for the VSR oracle.
        self.lookup_results: list[tuple[int, str]] = []
        self.events_received = 0

    # -- scheduling ----------------------------------------------------------

    def schedule(self, ops: list[WorkloadOp], start: float) -> None:
        for op in ops:
            self.world.sim.at(start + op.time, self._run, op)

    # -- execution -----------------------------------------------------------

    def _run(self, op: WorkloadOp) -> None:
        entry = op.as_dict()
        entry["outcome"] = None
        entry["completed_at"] = None
        self.entries.append(entry)
        gateway = self.world.mm.islands[op.island].gateway
        if op.kind == "publish":
            gateway.publish_event(op.topics[0], op.payload)
            self._complete(entry, "ok:published")
            return
        try:
            future = self._issue(op, gateway)
        except Exception as exc:  # synchronous refusal is a declared failure
            future = SimFuture.failed(exc)
        self.pending.append((op, future, entry))
        future.add_done_callback(lambda done: self._record(op, entry, done))

    def _issue(self, op: WorkloadOp, gateway: Any) -> SimFuture:
        if op.kind == "call":
            return gateway.invoke(op.service, op.operation, list(op.args))
        if op.kind == "subscribe":
            def on_event(topic: str, payload: Any, source: str) -> None:
                self.events_received += 1

            return gateway.subscribe_many(list(op.topics), on_event)
        if op.kind == "lookup":
            return gateway.vsr.find_by_name(op.service)
        if op.kind == "join":
            service = SimService()
            self.world.services[op.service] = service
            self.world.service_island[op.service] = op.island

            def handler(operation: str, args: list) -> Any:
                return getattr(service, operation)(*args)

            try:
                return gateway.export_service(
                    op.service, service_interface(op.service), handler,
                    {"middleware": "testkit"},
                )
            except GatewayError as exc:
                return SimFuture.failed(exc)
        if op.kind == "leave":
            return gateway.withdraw_service(op.service)
        raise ValueError(f"unknown op kind {op.kind!r}")

    # -- recording -----------------------------------------------------------

    def _record(self, op: WorkloadOp, entry: dict[str, Any], done: SimFuture) -> None:
        exc = done.exception()
        if exc is not None:
            self._complete(entry, f"err:{type(exc).__name__}")
            return
        result = done.result()
        if op.kind == "lookup":
            island = getattr(result, "context", {}).get("island", "")
            self.lookup_results.append((op.index, island))
            self._complete(entry, f"ok:doc@{island}")
            return
        self._complete(entry, f"ok:{result!r}")

    def _complete(self, entry: dict[str, Any], outcome: str) -> None:
        entry["outcome"] = outcome
        entry["completed_at"] = self.world.sim.now

    # -- oracle/report surface ----------------------------------------------

    def unresolved(self) -> list[tuple[WorkloadOp, dict[str, Any]]]:
        return [(op, entry) for op, future, entry in self.pending if not future.done()]

    def log_json(self) -> str:
        """Canonical workload log: identical seeds must yield identical bytes."""
        return json.dumps(self.entries, sort_keys=True, separators=(",", ":"))
