"""Durable-state installation for the ``persistence`` seed band.

Seeds in [500, 600) (see :mod:`repro.testkit.runner`) run with a WAL
journal attached to every gateway and to the VSR directory, and with
guaranteed crash→restart faults mixed into a publish-heavy workload —
the restart-torture band.  The fault injector turns ``NodeCrash`` into a
*cold* crash for journaled components: in-memory state is wiped, the
store closes where the WAL tail stands, and recovery must rebuild
everything from replay (see :meth:`VirtualServiceGateway.recover`).

Two oracles judge the band (see :mod:`repro.testkit.oracles`):

- **no-lost-acked-event** — every event a journaled publisher queued for
  a live subscriber is eventually delivered there (or handed over in a
  fetch reply, the one declared at-most-once window), across any number
  of restarts on either side;
- **replay-idempotence** — replaying any WAL twice yields byte-identical
  canonical state snapshots.

The journals ride :class:`~repro.store.wal.MemWalStore`: the byte buffer
is owned by the ``World`` (outside every node), so it survives simulated
crashes exactly like a disk — and stays fully deterministic.
"""

from __future__ import annotations

from repro.store import DirectoryJournal, GatewayJournal, MemWalStore
from repro.testkit.topology import World

#: Low enough that band runs actually exercise checkpoint compaction
#: (a 40-step publish-heavy workload journals a few hundred records),
#: high enough that replay still folds multi-record tails.
CHECKPOINT_EVERY = 64


def install_persistence(world: World) -> dict[str, GatewayJournal]:
    """Attach a WAL journal to every gateway and to the directory.

    Call **before** ``mm.connect()`` so directory registrations and
    service exports land in the journals — they are exactly what a
    recovering gateway must be able to re-announce.
    """
    for name, island in sorted(world.mm.islands.items()):
        journal = GatewayJournal(
            MemWalStore(),
            name,
            obs=island.gateway.obs,
            checkpoint_every=CHECKPOINT_EVERY,
        )
        island.gateway.attach_journal(journal)
        world.journals[name] = journal
    directory = world.mm.uddi.directory
    world.directory_journal = DirectoryJournal(
        MemWalStore(),
        "uddi-directory",
        obs=world.obs,
        checkpoint_every=CHECKPOINT_EVERY,
    )
    directory.attach_journal(world.directory_journal)
    return world.journals
