"""Greedy delta-debugging of failing testkit runs.

Because workload and fault scripts are pure data whose generation never
consults run outcomes, any subset replays meaningfully: ``shrink_failure``
minimises the fault list first (faults usually carry the blame), then the
op list, with a classic ddmin halving schedule, preserving the *original*
violated oracle so the shrink cannot wander onto a different failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.faults.plan import FaultAction
from repro.testkit.runner import RunResult, generate, replay
from repro.testkit.topology import TopologySpec
from repro.testkit.workload import WorkloadOp

T = TypeVar("T")

#: Safety valve: a shrink never replays more than this many candidates.
MAX_REPLAYS = 300


@dataclass
class ShrinkResult:
    seed: int
    oracle: str
    spec: TopologySpec
    ops: list[WorkloadOp]
    faults: list[tuple[float, FaultAction]]
    result: RunResult
    replays: int

    def render(self) -> str:
        lines = [
            f"=== shrunk repro: seed={self.seed} oracle={self.oracle} "
            f"({self.replays} replays, {len(self.ops)} ops + "
            f"{len(self.faults)} faults survive) ===",
            "",
        ]
        lines.append(self.result.render_repro())
        lines.append("")
        lines.append(
            f"reproduce: PYTHONPATH=src python -m repro.testkit --seed {self.seed}"
        )
        return "\n".join(lines)


class _Budget:
    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.used = 0

    def spend(self) -> bool:
        if self.used >= self.limit:
            return False
        self.used += 1
        return True


def _minimize(
    items: list[T], still_fails: Callable[[list[T]], bool], budget: _Budget
) -> list[T]:
    """ddmin-lite: try dropping halves, then quarters, ... then singles."""
    current = list(items)
    chunk = max(1, len(current) // 2)
    while current:
        shrunk = False
        index = 0
        while index < len(current):
            candidate = current[:index] + current[index + chunk:]
            if not budget.spend():
                return current
            if still_fails(candidate):
                current = candidate
                shrunk = True  # retry same index: the list shifted left
            else:
                index += chunk
        if chunk > 1:
            chunk //= 2
        elif not shrunk:
            break  # singles reached a fixpoint
    return current


def shrink_failure(
    seed: int, steps: int = 40, inject_bug: str | None = None
) -> ShrinkResult:
    """Minimise the failing scripts for ``seed`` to a small repro."""
    spec, ops, faults = generate(seed, steps)
    base = replay(spec, ops, faults, inject_bug=inject_bug)
    if base.ok:
        raise ValueError(f"seed {seed} is green; nothing to shrink")
    target = base.violations[0].oracle if base.violations else "run-error"
    budget = _Budget(MAX_REPLAYS)

    def fails(
        candidate_ops: list[WorkloadOp],
        candidate_faults: list[tuple[float, FaultAction]],
    ) -> bool:
        run = replay(spec, candidate_ops, candidate_faults, inject_bug=inject_bug)
        if target == "run-error":
            return bool(run.error)
        return any(violation.oracle == target for violation in run.violations)

    small_faults = _minimize(faults, lambda f: fails(ops, f), budget)
    small_ops = _minimize(ops, lambda o: fails(o, small_faults), budget)
    final = replay(spec, small_ops, small_faults, inject_bug=inject_bug)
    return ShrinkResult(
        seed=seed,
        oracle=target,
        spec=spec,
        ops=small_ops,
        faults=small_faults,
        result=final,
        replays=budget.used + 3,  # + base + final + the last probe
    )
