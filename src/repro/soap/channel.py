"""Subscriber side of the push event channel.

The channel inverts the HTTP event path: instead of polling
``fetch_events`` every interval, the subscriber POSTs a *wait*
(:func:`repro.soap.envelope.build_event_wait`) to the publisher's
``/events`` route and the publisher holds the exchange open until an
event fires — then answers with one batched frame and the subscriber
immediately re-arms.  Notification latency collapses to the network
round trip and the idle wire carries nothing but an occasional keepalive
(an empty frame after ``event_max_hold`` seconds of silence).

:class:`EventChannelClient` owns a dedicated :class:`~repro.soap.http.
HttpClient` rather than sharing the gateway's RPC pool: the pool runs one
exchange in flight per destination, so a parked wait would head-of-line
block every bridged call to that gateway.  The dedicated client derives
its config from the gateway's (:func:`channel_http_config`) with
keep-alive forced on and the exchange watchdog stretched past the
publisher's hold so a healthy idle channel is never reaped as wedged.

Death — transport failure, non-2xx, unparseable frame, watchdog reap,
or an external :meth:`EventChannelClient.kill` from the breaker — fires
``on_dead`` exactly once; the event router reacts by falling back to the
poll loop and scheduling a re-establishment with the resilience layer's
backoff.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable

from repro.errors import TransportError
from repro.net.addressing import NodeAddress
from repro.net.simkernel import SimFuture
from repro.net.transport import TransportStack
from repro.obs import NOOP_OBS
from repro.soap import envelope
from repro.soap.http import HttpClient, InterchangeConfig

#: HTTP path publishers register for channel waits.
EVENTS_PATH = "/events"
#: Media type of channel messages (wait requests and event frames).
EVENTS_CONTENT_TYPE = "application/x-events"


def channel_http_config(config: InterchangeConfig) -> InterchangeConfig:
    """Derive the channel client's HTTP config from the gateway's.

    Keep-alive is forced on (the whole point is one persistent
    connection), compression and terse negotiation are dropped (frames
    are already terse-shaped and small; waits must not trigger feature
    echo churn), and the exchange watchdog is stretched past the
    publisher's maximum hold so an idle-but-healthy channel is never
    reaped as wedged.

    The reactor knobs (``vectored``, ``pipeline_depth``) carry over
    unchanged: a gateway on the reactor wire streams its event frames
    coalesced, while a PUSH-configured gateway keeps the pinned PR 5
    wire byte for byte.
    """
    timeout = config.exchange_timeout
    if timeout:
        timeout = max(timeout, config.event_max_hold + 10.0)
    return replace(
        config,
        keep_alive=True,
        compress=False,
        terse=False,
        events_push=False,
        exchange_timeout=timeout,
    )


class EventChannelClient:
    """One held-exchange loop against one remote publisher gateway.

    ``on_batch(batch_id, events)`` delivers each freshly received batch;
    ``on_dead(exc)`` fires once when the channel dies for any reason
    other than a deliberate :meth:`stop`.
    """

    def __init__(
        self,
        stack: TransportStack,
        dst: NodeAddress,
        port: int,
        island: str,
        config: InterchangeConfig,
        on_batch: Callable[[int, list[Any]], None],
        on_dead: Callable[[BaseException], None],
        initial_ack: int = 0,
        obs=NOOP_OBS,
        label: str = "",
    ) -> None:
        self.dst = dst
        self.port = port
        self.island = island
        self.hold = config.event_max_hold
        self.on_batch = on_batch
        self.on_dead = on_dead
        #: Highest batch id fully delivered to local subscribers; sent
        #: with every wait so the publisher can release (or redeliver)
        #: its retained unacked batch.
        self.acked = initial_ack
        self.closed = False
        self.frames_received = 0
        self.http = HttpClient(stack, channel_http_config(config))
        if label:
            self.http.observe(obs, label)

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Arm the first wait."""
        self._arm()

    def stop(self) -> None:
        """Deliberate teardown: no ``on_dead``."""
        if self.closed:
            return
        self.closed = True
        self.http.close()

    def kill(self, exc: BaseException) -> None:
        """External death (breaker open, island unreachable): tear down
        and report through ``on_dead`` so the router falls back."""
        self._die(exc)

    # -- internals ------------------------------------------------------------

    def _arm(self) -> None:
        if self.closed:
            return
        body = envelope.build_event_wait(self.island, self.acked, self.hold)
        future = self.http.post(
            self.dst,
            self.port,
            EVENTS_PATH,
            body,
            headers={"Content-Type": EVENTS_CONTENT_TYPE},
        )
        future.add_done_callback(self._on_response)

    def _on_response(self, future: SimFuture) -> None:
        if self.closed:
            return
        exc = future.exception()
        if exc is not None:
            self._die(exc)
            return
        response = future.result()
        if not response.ok:
            self._die(
                TransportError(
                    f"event channel wait refused: HTTP {response.status} "
                    f"{response.reason}"
                )
            )
            return
        try:
            batch, events = envelope.parse_event_frame(response.body)
        except Exception as parse_exc:
            self._die(TransportError(f"bad event frame: {parse_exc}"))
            return
        self.frames_received += 1
        if events and batch > self.acked:
            self.on_batch(batch, events)
        self.acked = max(self.acked, batch)
        # on_batch may have stopped us (router shutdown mid-delivery).
        self._arm()

    def _die(self, exc: BaseException) -> None:
        if self.closed:
            return
        self.closed = True
        self.http.close()
        self.on_dead(exc)
