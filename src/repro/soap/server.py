"""SOAP RPC server endpoint.

Services register a dispatcher; the endpoint URL space is
``/soap/<service-name>``.  Application exceptions become SOAP Faults with
``faultcode SOAP-ENV:Server``; malformed envelopes yield
``SOAP-ENV:Client`` faults, mirroring Apache SOAP's behaviour.

The server answers in the encoding the request arrived in: a terse-envelope
request (negotiated interchange fast path) gets a terse response, anything
else gets the verbose 2002 format — so legacy clients never see a byte they
would not have seen from the seed implementation.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import ReproError, SoapError
from repro.net.simkernel import SimFuture
from repro.net.transport import TransportStack
from repro.obs import NOOP_OBS, NULL_SPAN
from repro.obs.trace import TRACE_HEADER, TraceContext
from repro.soap import envelope
from repro.soap.http import HttpRequest, HttpResponse, HttpServer

#: A service dispatcher: (operation, args) -> return value (may raise).
Dispatcher = Callable[[str, list[Any]], Any]

SOAP_PATH_PREFIX = "/soap/"
DEFAULT_SOAP_PORT = 8080

#: Content-Type announcing a terse envelope body.
TERSE_CONTENT_TYPE = "application/x-soap-terse"
VERBOSE_CONTENT_TYPE = "text/xml"


class SoapServer:
    """Hosts any number of named SOAP services on one HTTP port."""

    def __init__(self, stack: TransportStack, port: int = DEFAULT_SOAP_PORT) -> None:
        self.stack = stack
        self.port = port
        self.http = HttpServer(stack, port)
        self.http.register_prefix(SOAP_PATH_PREFIX, self._handle)
        self._services: dict[str, Dispatcher] = {}
        self.calls_handled = 0
        self.faults_returned = 0
        self.terse_calls_handled = 0
        self.obs = NOOP_OBS
        self.island = ""

    def observe(self, obs: Any, island: str = "") -> "SoapServer":
        """Attach an observability bundle; ``island`` tags the server-side
        spans with where the call executed."""
        self.obs = obs
        self.island = island
        return self

    def register_service(self, name: str, dispatcher: Dispatcher) -> None:
        if name in self._services:
            raise SoapError(f"SOAP service {name!r} already registered")
        self._services[name] = dispatcher

    def unregister_service(self, name: str) -> None:
        self._services.pop(name, None)

    @property
    def service_names(self) -> list[str]:
        return sorted(self._services)

    def path_for(self, service: str) -> str:
        return SOAP_PATH_PREFIX + service

    def close(self) -> None:
        self.http.close()

    # -- internals ------------------------------------------------------------

    def _handle(self, request: HttpRequest) -> HttpResponse:
        if request.method != "POST":
            return HttpResponse(405, body=b"SOAP endpoints accept POST only")
        service_name = request.path[len(SOAP_PATH_PREFIX) :]
        tracer = self.obs.tracer
        span = NULL_SPAN
        if tracer.enabled:
            # Re-attach the caller's trace from the X-Trace header: this is
            # where a bridged call's trace crosses onto the serving island.
            # Requests without the header (polls, heartbeats, legacy
            # clients) stay untraced.
            context = TraceContext.from_header(request.header(TRACE_HEADER))
            if context is not None:
                span = tracer.start_span(
                    f"soap.serve {service_name}",
                    island=self.island,
                    kind="server",
                    parent=context,
                )
        dispatcher = self._services.get(service_name)
        if dispatcher is None:
            span.finish()
            return self._fault_response(
                404, "SOAP-ENV:Client", f"no such service {service_name!r}"
            )
        decode = (
            tracer.start_span("soap.decode", island=self.island, parent=span)
            if span.recording
            else NULL_SPAN
        )
        try:
            message = envelope.parse_envelope(request.body)
        except SoapError as exc:
            decode.finish(exc)
            span.finish(exc)
            return self._fault_response(400, "SOAP-ENV:Client", str(exc))
        decode.set_attribute("wire_format", message.wire_format)
        decode.finish()
        terse = message.wire_format == "terse"
        if terse:
            self.terse_calls_handled += 1
        if message.kind != "request":
            span.finish()
            return self._fault_response(
                400,
                "SOAP-ENV:Client",
                f"expected request envelope, got {message.kind}",
                terse=terse,
            )
        try:
            # The server span is ambient while the dispatcher runs, so the
            # gateway's dispatch span (and anything below it) nests here.
            with tracer.activate(span):
                result = dispatcher(message.operation, message.args)
        except ReproError as exc:
            span.finish(exc)
            return self._fault_response(
                500, "SOAP-ENV:Server", str(exc), detail=type(exc).__name__, terse=terse
            )
        except Exception as exc:  # dispatcher bug: still answer with a Fault
            span.finish(exc)
            return self._fault_response(
                500,
                "SOAP-ENV:Server",
                f"internal error: {exc}",
                detail=type(exc).__name__,
                terse=terse,
            )
        if isinstance(result, SimFuture):
            # Asynchronous dispatcher (e.g. a gateway bridging to another
            # island): resolve to the HTTP response when the value arrives.
            pending: SimFuture = SimFuture()

            def on_done(future: SimFuture) -> None:
                exc = future.exception()
                span.finish(exc)
                if exc is not None:
                    pending.set_result(
                        self._fault_response(
                            500,
                            "SOAP-ENV:Server",
                            str(exc),
                            detail=type(exc).__name__,
                            terse=terse,
                        )
                    )
                    return
                try:
                    response = self._ok_response(message.operation, future.result(), terse)
                except ReproError as encode_exc:
                    pending.set_result(
                        self._fault_response(
                            500, "SOAP-ENV:Server", str(encode_exc), terse=terse
                        )
                    )
                    return
                self.calls_handled += 1
                pending.set_result(response)

            result.add_done_callback(on_done)
            return pending
        self.calls_handled += 1
        span.finish()
        return self._ok_response(message.operation, result, terse)

    def _ok_response(self, operation: str, result, terse: bool = False) -> HttpResponse:
        if terse:
            body = envelope.build_response_terse(operation, result)
            content_type = TERSE_CONTENT_TYPE
        else:
            body = envelope.build_response(operation, result)
            content_type = VERBOSE_CONTENT_TYPE
        return HttpResponse(200, headers={"Content-Type": content_type}, body=body)

    def _fault_response(
        self,
        status: int,
        faultcode: str,
        faultstring: str,
        detail: str = "",
        terse: bool = False,
    ) -> HttpResponse:
        self.faults_returned += 1
        if terse:
            body = envelope.build_fault_terse(faultcode, faultstring, detail)
            content_type = TERSE_CONTENT_TYPE
        else:
            body = envelope.build_fault(faultcode, faultstring, detail)
            content_type = VERBOSE_CONTENT_TYPE
        return HttpResponse(status, headers={"Content-Type": content_type}, body=body)
