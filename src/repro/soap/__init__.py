"""SOAP 1.1-style protocol substrate — the prototype's VSG interchange
protocol (paper Section 4.1).

The paper chose SOAP because it is "simple ... easy for implementation and
light-weight for network", rides on HTTP, and depends on no vendor.  This
package reproduces that stack over the simulated network:

- :mod:`repro.soap.xmlutil` — deterministic XML writer + namespace-aware
  parser helpers (built on the stdlib ``xml.etree``).
- :mod:`repro.soap.envelope` — SOAP envelopes: typed value encoding
  (Section-5 style ``xsi:type`` attributes), requests, responses, Faults.
- :mod:`repro.soap.http` — HTTP/1.0-style request/response transport with
  one TCP-like connection per exchange (``Connection: close``), which is
  exactly the behaviour whose cost the paper's Section 4.2 laments.
- :mod:`repro.soap.client` / :mod:`repro.soap.server` — RPC endpoints.
- :mod:`repro.soap.wsdl` — WSDL-like service description documents used by
  the Virtual Service Repository.
"""

from repro.soap.client import SoapClient
from repro.soap.envelope import (
    SoapMessage,
    build_fault,
    build_request,
    build_response,
    parse_envelope,
)
from repro.soap.http import (
    HttpClient,
    HttpRequest,
    HttpResponse,
    HttpServer,
)
from repro.soap.server import SoapServer
from repro.soap.wsdl import WsdlDocument, WsdlOperation, WsdlPart

__all__ = [
    "HttpClient",
    "HttpRequest",
    "HttpResponse",
    "HttpServer",
    "SoapClient",
    "SoapMessage",
    "SoapServer",
    "WsdlDocument",
    "WsdlOperation",
    "WsdlPart",
    "build_fault",
    "build_request",
    "build_response",
    "parse_envelope",
]
