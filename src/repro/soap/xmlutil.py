"""Small XML toolkit: a deterministic writer and parsing helpers.

The writer produces the prefixed, namespace-declared markup a 2002-era SOAP
stack would emit, so envelope byte counts in the payload benchmarks are
realistic.  Parsing uses the stdlib ``xml.etree.ElementTree`` with explicit
``{uri}local`` qualified names.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Iterable, Mapping

from repro.errors import SoapError

SOAP_ENV_NS = "http://schemas.xmlsoap.org/soap/envelope/"
SOAP_ENC_NS = "http://schemas.xmlsoap.org/soap/encoding/"
XSI_NS = "http://www.w3.org/2001/XMLSchema-instance"
XSD_NS = "http://www.w3.org/2001/XMLSchema"
WSDL_NS = "http://schemas.xmlsoap.org/wsdl/"

#: prefix -> namespace URI used by the writer (and expected by tests).
STANDARD_PREFIXES = {
    "SOAP-ENV": SOAP_ENV_NS,
    "SOAP-ENC": SOAP_ENC_NS,
    "xsi": XSI_NS,
    "xsd": XSD_NS,
    "wsdl": WSDL_NS,
}


def escape_text(text: str) -> str:
    """Escape character data."""
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )


def escape_attr(text: str) -> str:
    """Escape an attribute value (double-quoted)."""
    return escape_text(text).replace('"', "&quot;").replace("\n", "&#10;")


_ASCII_LETTERS = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ")
_ASCII_NAME_CHARS = _ASCII_LETTERS | frozenset("0123456789_-.")


def is_xml_name(name: str) -> bool:
    """Conservative check for names we are willing to use as element names
    (struct member keys cross this check before marshalling).

    Deliberately ASCII-only: Python's ``str.isalpha`` accepts Unicode
    letters that XML 1.0 name rules reject, so we stay well inside the
    intersection.
    """
    if not name:
        return False
    first = name[0]
    if first not in _ASCII_LETTERS and first != "_":
        return False
    return all(ch in _ASCII_NAME_CHARS for ch in name)


class XmlWriter:
    """Builds an XML document as text, tracking open elements.

    >>> writer = XmlWriter()
    >>> writer.open("root", {"a": "1"})
    >>> writer.leaf("child", text="hi")
    >>> writer.close()
    >>> writer.tostring()
    '<?xml version="1.0" encoding="UTF-8"?>\\n<root a="1"><child>hi</child></root>'
    """

    def __init__(self, declaration: bool = True) -> None:
        self._parts: list[str] = []
        if declaration:
            self._parts.append('<?xml version="1.0" encoding="UTF-8"?>\n')
        self._stack: list[str] = []

    def reset(self, declaration: bool = True) -> None:
        """Return the writer to its just-constructed state, keeping the
        allocated lists.  The envelope builders pool writers on the hot
        path (one envelope per bridged call) and reset between borrows;
        output bytes are identical to a fresh writer's."""
        self._parts.clear()
        if declaration:
            self._parts.append('<?xml version="1.0" encoding="UTF-8"?>\n')
        self._stack.clear()

    def open(self, tag: str, attrs: Mapping[str, str] | None = None) -> None:
        self._parts.append(f"<{tag}{self._render_attrs(attrs)}>")
        self._stack.append(tag)

    def close(self) -> None:
        if not self._stack:
            raise SoapError("XmlWriter.close with no open element")
        tag = self._stack.pop()
        self._parts.append(f"</{tag}>")

    def leaf(self, tag: str, attrs: Mapping[str, str] | None = None, text: str | None = None) -> None:
        """A complete element in one call: ``<tag attrs>text</tag>`` or
        ``<tag attrs/>`` when ``text`` is None."""
        rendered = self._render_attrs(attrs)
        if text is None:
            self._parts.append(f"<{tag}{rendered}/>")
        else:
            self._parts.append(f"<{tag}{rendered}>{escape_text(text)}</{tag}>")

    def raw(self, markup: str) -> None:
        """Append pre-rendered markup (caller guarantees well-formedness)."""
        self._parts.append(markup)

    def tostring(self) -> str:
        if self._stack:
            raise SoapError(f"unclosed elements: {self._stack}")
        return "".join(self._parts)

    def tobytes(self) -> bytes:
        return self.tostring().encode("utf-8")

    @staticmethod
    def _render_attrs(attrs: Mapping[str, str] | None) -> str:
        if not attrs:
            return ""
        return "".join(f' {key}="{escape_attr(value)}"' for key, value in attrs.items())


def qname(ns: str, local: str) -> str:
    """ElementTree qualified name."""
    return f"{{{ns}}}{local}"


def parse_document(data: bytes | str) -> ET.Element:
    """Parse a document, converting parse errors into :class:`SoapError`."""
    try:
        if isinstance(data, bytes):
            return ET.fromstring(data)
        return ET.fromstring(data)
    except ET.ParseError as exc:
        raise SoapError(f"malformed XML: {exc}") from exc


def local_name(element: ET.Element) -> str:
    """Tag name with any ``{uri}`` prefix stripped."""
    tag = element.tag
    if tag.startswith("{"):
        return tag.rpartition("}")[2]
    return tag


def attr(element: ET.Element, ns: str, local: str) -> str | None:
    """Namespaced attribute lookup."""
    return element.get(qname(ns, local))


def children(element: ET.Element) -> Iterable[ET.Element]:
    """Child elements as a list."""
    return list(element)


def find_child(element: ET.Element, ns: str, local: str) -> ET.Element | None:
    """First child named ``{ns}local``, or None."""
    return element.find(qname(ns, local))


def require_child(element: ET.Element, ns: str, local: str) -> ET.Element:
    """Like :func:`find_child` but raises :class:`SoapError` when absent."""
    child = find_child(element, ns, local)
    if child is None:
        raise SoapError(f"missing required element {local!r} in {local_name(element)!r}")
    return child
