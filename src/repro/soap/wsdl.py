"""WSDL-like service description documents.

The prototype's Virtual Service Repository "has been implemented by WSDL
... and UDDI" (paper Section 4.1).  A :class:`WsdlDocument` is the unit the
repository stores: the service name, its gateway location, its typed
operations, and free-form context attributes (island, device class, room,
...) used for context-aware queries.

Types use XSD names: ``int``, ``double``, ``string``, ``boolean``,
``base64``, ``anyType`` (lists/structs/any) and ``void`` for no return.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field

from repro.errors import SoapError
from repro.net.addressing import NodeAddress
from repro.soap import xmlutil
from repro.soap.xmlutil import WSDL_NS, XmlWriter, local_name

XSD_TYPES = frozenset(
    {"int", "double", "string", "boolean", "base64", "anyType", "void"}
)


def make_location(address: NodeAddress, port: int, service: str) -> str:
    """Render a gateway endpoint locator, e.g. ``soap://backbone/2:8080/soap/TV``."""
    return f"soap://{address}:{port}/soap/{service}"


def parse_location(location: str) -> tuple[NodeAddress, int, str]:
    """Inverse of :func:`make_location` → (address, port, service name)."""
    scheme, sep, rest = location.partition("://")
    if not sep or scheme != "soap":
        raise SoapError(f"unsupported location {location!r}")
    hostpart, sep, path = rest.partition("/soap/")
    if not sep:
        raise SoapError(f"location {location!r} has no /soap/ path")
    addr_text, sep, port_text = hostpart.rpartition(":")
    if not sep or not port_text.isdigit():
        raise SoapError(f"location {location!r} has no port")
    try:
        address = NodeAddress.parse(addr_text)
    except ValueError as exc:
        raise SoapError(str(exc)) from exc
    return address, int(port_text), path


@dataclass(frozen=True)
class WsdlPart:
    """One message part: a named, typed parameter."""

    name: str
    type: str  # an XSD type name from :data:`XSD_TYPES`

    def __post_init__(self) -> None:
        if self.type not in XSD_TYPES:
            raise SoapError(f"unknown XSD type {self.type!r} for part {self.name!r}")


@dataclass(frozen=True)
class WsdlOperation:
    """One operation of a port type."""

    name: str
    inputs: tuple[WsdlPart, ...] = ()
    output: str = "void"
    oneway: bool = False

    def __post_init__(self) -> None:
        if self.output not in XSD_TYPES:
            raise SoapError(f"unknown return type {self.output!r} on {self.name!r}")


@dataclass
class WsdlDocument:
    """A complete service description."""

    service: str
    location: str
    operations: tuple[WsdlOperation, ...] = ()
    context: dict[str, str] = field(default_factory=dict)

    def operation(self, name: str) -> WsdlOperation:
        for op in self.operations:
            if op.name == name:
                return op
        raise SoapError(f"service {self.service!r} has no operation {name!r}")

    def has_operation(self, name: str) -> bool:
        return any(op.name == name for op in self.operations)

    # -- serialisation ----------------------------------------------------------

    def to_xml(self) -> bytes:
        writer = XmlWriter()
        writer.open(
            "wsdl:definitions",
            {"xmlns:wsdl": WSDL_NS, "name": self.service},
        )
        writer.open("wsdl:service", {"name": self.service})
        writer.leaf("wsdl:port", {"location": self.location})
        writer.close()
        writer.open("wsdl:portType", {"name": f"{self.service}PortType"})
        for op in self.operations:
            attrs = {"name": op.name, "output": op.output}
            if op.oneway:
                attrs["oneway"] = "true"
            writer.open("wsdl:operation", attrs)
            for part in op.inputs:
                writer.leaf("wsdl:part", {"name": part.name, "type": part.type})
            writer.close()
        writer.close()
        if self.context:
            writer.open("wsdl:context")
            for key in sorted(self.context):
                writer.leaf("wsdl:attribute", {"name": key, "value": self.context[key]})
            writer.close()
        writer.close()
        return writer.tobytes()

    @staticmethod
    def from_xml(data: bytes) -> "WsdlDocument":
        root = xmlutil.parse_document(data)
        if local_name(root) != "definitions":
            raise SoapError(f"not a WSDL document (root {local_name(root)!r})")
        service_el = xmlutil.require_child(root, WSDL_NS, "service")
        name = service_el.get("name") or ""
        port_el = xmlutil.require_child(service_el, WSDL_NS, "port")
        location = port_el.get("location") or ""
        if not name or not location:
            raise SoapError("WSDL service/port missing name or location")

        operations: list[WsdlOperation] = []
        port_type = xmlutil.find_child(root, WSDL_NS, "portType")
        if port_type is not None:
            for op_el in port_type:
                parts = tuple(
                    WsdlPart(part.get("name") or "", part.get("type") or "anyType")
                    for part in op_el
                )
                operations.append(
                    WsdlOperation(
                        name=op_el.get("name") or "",
                        inputs=parts,
                        output=op_el.get("output") or "void",
                        oneway=op_el.get("oneway") == "true",
                    )
                )

        context: dict[str, str] = {}
        context_el = xmlutil.find_child(root, WSDL_NS, "context")
        if context_el is not None:
            for attr_el in context_el:
                context[attr_el.get("name") or ""] = attr_el.get("value") or ""

        return WsdlDocument(
            service=name,
            location=location,
            operations=tuple(operations),
            context=context,
        )
