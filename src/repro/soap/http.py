"""HTTP/1.0-style transport over the simulated TCP.

Faithful to the era the paper describes: one connection per exchange
(``Connection: close``), textual headers, ``Content-Length`` framing.  The
deliberate costs — handshake round trips, header bytes, per-connection
state — are what experiments C3/C4 measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import HttpError, ProtocolError, TransportError
from repro.net.addressing import NodeAddress
from repro.net.simkernel import SimFuture
from repro.net.transport import Connection, TransportStack

_CRLF = b"\r\n"
_HEADER_END = b"\r\n\r\n"

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
}


def reason_for(status: int) -> str:
    """Default reason phrase for a status code."""
    return _REASONS.get(status, "Unknown")


@dataclass
class HttpRequest:
    """One HTTP request message."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def header(self, name: str, default: str = "") -> str:
        for key, value in self.headers.items():
            if key.lower() == name.lower():
                return value
        return default

    def to_bytes(self) -> bytes:
        headers = dict(self.headers)
        headers.setdefault("Content-Length", str(len(self.body)))
        headers.setdefault("Connection", "close")
        lines = [f"{self.method} {self.path} HTTP/1.0".encode("ascii")]
        lines += [f"{key}: {value}".encode("latin-1") for key, value in headers.items()]
        return _CRLF.join(lines) + _HEADER_END + self.body


@dataclass
class HttpResponse:
    """One HTTP response message."""

    status: int
    reason: str = ""
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def __post_init__(self) -> None:
        if not self.reason:
            self.reason = reason_for(self.status)

    def header(self, name: str, default: str = "") -> str:
        for key, value in self.headers.items():
            if key.lower() == name.lower():
                return value
        return default

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def to_bytes(self) -> bytes:
        headers = dict(self.headers)
        headers.setdefault("Content-Length", str(len(self.body)))
        headers.setdefault("Connection", "close")
        lines = [f"HTTP/1.0 {self.status} {self.reason}".encode("ascii")]
        lines += [f"{key}: {value}".encode("latin-1") for key, value in headers.items()]
        return _CRLF.join(lines) + _HEADER_END + self.body


def _parse_head(raw: bytes) -> tuple[list[str], dict[str, str]]:
    """Split the header block into (start-line parts, headers)."""
    text = raw.decode("latin-1")
    lines = text.split("\r\n")
    start = lines[0].split(" ", 2)
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line {line!r}")
        headers[name.strip()] = value.strip()
    return start, headers


class _MessageAssembler:
    """Accumulates stream bytes until one complete HTTP message arrives."""

    def __init__(self) -> None:
        self._buffer = b""
        self._head: tuple[list[str], dict[str, str]] | None = None
        self._body_needed = 0

    def feed(self, data: bytes) -> tuple[list[str], dict[str, str], bytes] | None:
        """Returns (start-line parts, headers, body) once complete."""
        self._buffer += data
        if self._head is None:
            end = self._buffer.find(_HEADER_END)
            if end < 0:
                return None
            self._head = _parse_head(self._buffer[:end])
            self._buffer = self._buffer[end + len(_HEADER_END) :]
            headers = self._head[1]
            try:
                self._body_needed = int(headers.get("Content-Length", "0"))
            except ValueError as exc:
                raise ProtocolError("bad Content-Length") from exc
        if len(self._buffer) < self._body_needed:
            return None
        start, headers = self._head
        body = self._buffer[: self._body_needed]
        return start, headers, body


#: Server handler signature.
Handler = Callable[[HttpRequest], HttpResponse]


class HttpServer:
    """Routes requests by exact path, with optional prefix routes."""

    def __init__(self, stack: TransportStack, port: int = 80) -> None:
        self.stack = stack
        self.port = port
        self._routes: dict[str, Handler] = {}
        self._prefix_routes: list[tuple[str, Handler]] = []
        self._listener = stack.listen(port, self._on_connection)
        self.requests_served = 0

    def register(self, path: str, handler: Handler) -> None:
        self._routes[path] = handler

    def register_prefix(self, prefix: str, handler: Handler) -> None:
        self._prefix_routes.append((prefix, handler))

    def close(self) -> None:
        self._listener.close()

    # -- internals ------------------------------------------------------------

    def _on_connection(self, conn: Connection) -> None:
        assembler = _MessageAssembler()

        def on_data(connection: Connection, data: bytes) -> None:
            try:
                complete = assembler.feed(data)
            except ProtocolError:
                self._finish(connection, HttpResponse(400, body=b"malformed request"))
                return
            if complete is None:
                return
            start, headers, body = complete
            if len(start) != 3:
                self._finish(connection, HttpResponse(400, body=b"bad request line"))
                return
            request = HttpRequest(method=start[0], path=start[1], headers=headers, body=body)
            self._dispatch(connection, request)

        conn.set_receiver(on_data)

    def _dispatch(self, conn: Connection, request: HttpRequest) -> None:
        handler = self._routes.get(request.path)
        if handler is None:
            for prefix, prefix_handler in self._prefix_routes:
                if request.path.startswith(prefix):
                    handler = prefix_handler
                    break
        if handler is None:
            self._finish(conn, HttpResponse(404, body=b"no such path"))
            return
        try:
            response = handler(request)
        except Exception as exc:  # a handler bug must not kill the server
            response = HttpResponse(500, body=str(exc).encode("utf-8"))
        self.requests_served += 1
        if isinstance(response, SimFuture):
            # Asynchronous handler: hold the connection until it resolves.
            def on_done(future: SimFuture) -> None:
                exc = future.exception()
                if exc is not None:
                    self._finish(conn, HttpResponse(500, body=str(exc).encode("utf-8")))
                else:
                    self._finish(conn, future.result())

            response.add_done_callback(on_done)
        else:
            self._finish(conn, response)

    @staticmethod
    def _finish(conn: Connection, response: HttpResponse) -> None:
        if conn.state != Connection.ESTABLISHED:
            return  # client gave up while an async handler was running
        conn.send(response.to_bytes())
        conn.close()


class HttpClient:
    """Issues one-shot HTTP exchanges; each opens and closes a connection."""

    def __init__(self, stack: TransportStack) -> None:
        self.stack = stack
        self.requests_sent = 0

    def request(
        self,
        dst: NodeAddress,
        port: int,
        method: str,
        path: str,
        body: bytes = b"",
        headers: dict[str, str] | None = None,
    ) -> SimFuture:
        """Returns a future resolving to :class:`HttpResponse` (any status);
        transport failures resolve to :class:`TransportError`."""
        future: SimFuture = SimFuture()
        request = HttpRequest(method=method, path=path, headers=dict(headers or {}), body=body)
        self.requests_sent += 1

        def on_connected(conn_future: SimFuture) -> None:
            exc = conn_future.exception()
            if exc is not None:
                future.set_exception(exc)
                return
            conn: Connection = conn_future.result()
            assembler = _MessageAssembler()

            def on_data(connection: Connection, data: bytes) -> None:
                try:
                    complete = assembler.feed(data)
                except ProtocolError as parse_exc:
                    if not future.done():
                        future.set_exception(parse_exc)
                    connection.close()
                    return
                if complete is None:
                    return
                start, resp_headers, resp_body = complete
                if len(start) < 2 or not start[1].isdigit():
                    if not future.done():
                        future.set_exception(ProtocolError("bad status line"))
                    connection.close()
                    return
                reason = start[2] if len(start) > 2 else ""
                response = HttpResponse(
                    status=int(start[1]), reason=reason, headers=resp_headers, body=resp_body
                )
                connection.close()
                if not future.done():
                    future.set_result(response)

            def on_closed(connection: Connection) -> None:
                if not future.done():
                    future.set_exception(TransportError("connection closed mid-response"))

            conn.set_receiver(on_data)
            conn.on_close(on_closed)
            conn.send(request.to_bytes())

        self.stack.connect(dst, port).add_done_callback(on_connected)
        return future

    def get(self, dst: NodeAddress, port: int, path: str) -> SimFuture:
        return self.request(dst, port, "GET", path)

    def post(
        self,
        dst: NodeAddress,
        port: int,
        path: str,
        body: bytes,
        headers: dict[str, str] | None = None,
    ) -> SimFuture:
        return self.request(dst, port, "POST", path, body=body, headers=headers)


def expect_ok(response: HttpResponse) -> HttpResponse:
    """Raise :class:`HttpError` unless the status is 2xx."""
    if not response.ok:
        raise HttpError(response.status, response.reason, response.body)
    return response
