"""HTTP transport over the simulated TCP: legacy one-shot and fast keep-alive.

Faithful to the era the paper describes: by default, one connection per
exchange (``Connection: close``), textual headers, ``Content-Length``
framing.  The deliberate costs — handshake round trips, header bytes,
per-connection state — are what experiments C3/C4 measure.

The F2 experiment showed those costs dominate the bridged path (~13× the
latency, ~14× the bytes of native RMI, almost all TCP handshakes plus XML),
so this module also implements an *opt-in* fast path, configured through
:class:`InterchangeConfig`:

- **keep-alive** — HTTP/1.1-style persistent connections with a
  per-destination pool (:class:`HttpClient`), an idle timeout, an LRU cap
  on pooled destinations, and :meth:`HttpClient.invalidate` so the
  resilience layer can evict a pooled connection into a partitioned or
  crashed peer instead of reusing it;
- **compression** — ``Accept-Encoding: gzip`` negotiation; bodies above a
  size floor travel gzip-compressed (deterministically: fixed level,
  zeroed mtime);
- **feature negotiation** — a fast client advertises what it accepts in an
  ``X-Interchange`` header; servers echo their own capabilities only when
  asked, so a legacy exchange is byte-identical to the seed wire format.

Everything stays off unless a client is constructed with a fast config, and
a fast client talking to a legacy server degrades transparently: the first
exchange is always legacy-shaped, and upgrades happen only after the peer
has proven it understands them.
"""

from __future__ import annotations

import gzip
import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import HttpError, ProtocolError, TransportError
from repro.net.addressing import NodeAddress
from repro.net.simkernel import Event, SimFuture
from repro.net.transport import Connection, TransportStack
from repro.obs import NOOP_OBS, NULL_SPAN

_CRLF = b"\r\n"
_HEADER_END = b"\r\n\r\n"

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Capability-negotiation header (client advert / server echo).
FEATURES_HEADER = "X-Interchange"
#: What this implementation's server side can do.
SERVER_FEATURES = "terse gzip"
#: Server-side floor below which response bodies are never compressed.
COMPRESS_MIN_BYTES = 200


@dataclass(frozen=True)
class InterchangeConfig:
    """Knobs for the interchange fast path.

    The default instance is the legacy wire behaviour (one connection per
    exchange, verbose XML, no compression) so the F2/C-series baselines
    stay measurable; :data:`FAST_INTERCHANGE` turns everything on.
    """

    #: Reuse one pooled connection per destination (HTTP/1.1 keep-alive).
    keep_alive: bool = False
    #: LRU cap on pooled destinations; the least-recently-used idle
    #: destination is closed when the cap is exceeded.
    pool_destinations: int = 8
    #: Virtual seconds an idle pooled connection survives before closing.
    idle_timeout: float = 30.0
    #: Negotiate ``Accept-Encoding: gzip`` with peers.
    compress: bool = False
    #: Request bodies below this size are sent uncompressed.
    compress_min_bytes: int = COMPRESS_MIN_BYTES
    #: Negotiate the terse envelope encoding (see ``repro.soap.envelope``).
    terse: bool = False
    #: Virtual seconds before a started exchange is declared wedged: the
    #: request future fails with :class:`TransportError` and the underlying
    #: connection is torn down.  Without this a reply lost to a crashed or
    #: partitioned peer parks the exchange (and its pooled connection, and
    #: its trace spans) forever — there is no transport retransmission.
    #: 0 disables the watchdog.
    exchange_timeout: float = 60.0
    #: Offer/accept streamed push event channels (``events-push`` token).
    #: When both peers advertise it, the event router replaces its HTTP
    #: poll loop with a held exchange the publisher answers the moment an
    #: event fires (see ``repro.soap.channel``).
    events_push: bool = False
    #: Virtual seconds the publisher coalesces a burst of events before
    #: flushing one batched frame down the channel.  0 still coalesces
    #: same-instant bursts (the flush fires after the current instant's
    #: callbacks) while adding no latency.
    event_flush_window: float = 0.0
    #: Longest the publisher may park a channel wait before answering with
    #: an empty keepalive frame.  Must stay comfortably below
    #: ``exchange_timeout`` or the subscriber's watchdog reaps idle
    #: channels as wedged.
    event_max_hold: float = 25.0
    #: Route pooled connections through the node's reactor: outbound
    #: frames coalesce into vectored segment transmissions and inbound
    #: data arrives as zero-copy slices.  Advertised as the ``vectored``
    #: X-Interchange token so the server flips its side of the connection
    #: too; connections to non-advertising clients keep the legacy wire.
    vectored: bool = False
    #: Concurrent exchanges allowed on one pooled connection (HTTP
    #: pipelining).  Effective only once the peer has proven keep-alive —
    #: the first exchange on a fresh connection is always one-in-flight,
    #: so a legacy server never sees pipelined requests.  1 = the old
    #: strictly-serial behaviour.
    pipeline_depth: int = 1

    @property
    def fast(self) -> bool:
        """True when any fast-path feature is enabled."""
        return (
            self.keep_alive
            or self.compress
            or self.terse
            or self.events_push
            or self.vectored
            or self.pipeline_depth > 1
        )

    @property
    def advertised_features(self) -> str:
        """The ``X-Interchange`` advert this config sends to peers."""
        parts = []
        if self.terse:
            parts.append("terse")
        if self.compress:
            parts.append("gzip")
        if self.events_push:
            parts.append("events-push")
        if self.vectored:
            parts.append("vectored")
        return " ".join(parts)


#: The seed wire behaviour: HTTP/1.0, connection per exchange, verbose XML.
LEGACY_INTERCHANGE = InterchangeConfig()
#: Everything on: keep-alive pool + gzip + terse envelopes.
FAST_INTERCHANGE = InterchangeConfig(keep_alive=True, compress=True, terse=True)
#: The fast path plus streamed push event channels.
PUSH_INTERCHANGE = InterchangeConfig(
    keep_alive=True, compress=True, terse=True, events_push=True
)
#: The push fast path on the reactor substrate: vectored (coalesced)
#: writes, zero-copy reads, and deep pipelining — many concurrent
#: exchanges multiplexed over one pooled connection per destination.
REACTOR_INTERCHANGE = InterchangeConfig(
    keep_alive=True,
    compress=True,
    terse=True,
    events_push=True,
    vectored=True,
    pipeline_depth=32,
)


def gzip_bytes(data: bytes) -> bytes:
    """Deterministic gzip (fixed level, zeroed mtime) so identical runs
    put identical bytes on the wire."""
    return gzip.compress(data, compresslevel=6, mtime=0)


def gunzip_bytes(data: bytes) -> bytes:
    try:
        return gzip.decompress(data)
    except Exception as exc:
        raise ProtocolError(f"bad gzip body: {exc}") from exc


def reason_for(status: int) -> str:
    """Default reason phrase for a status code."""
    return _REASONS.get(status, "Unknown")


class _HeaderIndexMixin:
    """Case-folded header lookup built once instead of an O(n) scan per
    :meth:`header` call.  The index rebuilds itself if headers are added
    after construction (detected by a length change)."""

    headers: dict[str, str]

    def _build_index(self) -> None:
        self._index = {key.lower(): value for key, value in self.headers.items()}

    def header(self, name: str, default: str = "") -> str:
        if len(self._index) != len(self.headers):
            self._build_index()
        return self._index.get(name.lower(), default)


@dataclass
class HttpRequest(_HeaderIndexMixin):
    """One HTTP request message."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.0"

    def __post_init__(self) -> None:
        self._build_index()

    def to_bytes(self) -> bytes:
        headers = dict(self.headers)
        headers.setdefault("Content-Length", str(len(self.body)))
        headers.setdefault("Connection", "close")
        lines = [f"{self.method} {self.path} {self.version}".encode("ascii")]
        lines += [f"{key}: {value}".encode("latin-1") for key, value in headers.items()]
        return _CRLF.join(lines) + _HEADER_END + self.body


@dataclass
class HttpResponse(_HeaderIndexMixin):
    """One HTTP response message."""

    status: int
    reason: str = ""
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.0"

    def __post_init__(self) -> None:
        if not self.reason:
            self.reason = reason_for(self.status)
        self._build_index()

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def to_bytes(self) -> bytes:
        headers = dict(self.headers)
        headers.setdefault("Content-Length", str(len(self.body)))
        headers.setdefault("Connection", "close")
        lines = [f"{self.version} {self.status} {self.reason}".encode("ascii")]
        lines += [f"{key}: {value}".encode("latin-1") for key, value in headers.items()]
        return _CRLF.join(lines) + _HEADER_END + self.body


def _parse_head(raw: bytes) -> tuple[list[str], dict[str, str]]:
    """Split the header block into (start-line parts, headers).

    Repeated header lines fold into one comma-joined value (RFC 2616
    §4.2) instead of the last occurrence silently winning; the fold is
    case-insensitive, keeping the first spelling of the name.
    """
    text = raw.decode("latin-1")
    lines = text.split("\r\n")
    start = lines[0].split(" ", 2)
    headers: dict[str, str] = {}
    canonical: dict[str, str] = {}  # folded name -> first-seen spelling
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line {line!r}")
        name = name.strip()
        value = value.strip()
        folded = name.lower()
        seen = canonical.get(folded)
        if seen is None:
            canonical[folded] = name
            headers[name] = value
        else:
            headers[seen] = f"{headers[seen]}, {value}"
    return start, headers


class _MessageAssembler:
    """Accumulates stream bytes until one complete HTTP message arrives.

    Reusable across messages on one keep-alive connection: returning a
    complete message consumes it from the buffer and resets the head
    state, so the next ``feed`` starts parsing the next message (any
    already-buffered surplus bytes are kept).

    The buffer is one reused ``bytearray``, and ``feed`` accepts zero-copy
    ``memoryview`` slices from the reactor transport as readily as
    ``bytes``: stream bytes are copied exactly once, into the buffer.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._head: tuple[list[str], dict[str, str]] | None = None
        self._body_needed = 0

    @property
    def has_buffered(self) -> bool:
        """True when bytes of a further message are already buffered."""
        return bool(self._buffer)

    def feed(
        self, data: bytes | memoryview
    ) -> tuple[list[str], dict[str, str], bytes] | None:
        """Returns (start-line parts, headers, body) once complete."""
        self._buffer += data
        if self._head is None:
            end = self._buffer.find(_HEADER_END)
            if end < 0:
                return None
            self._head = _parse_head(bytes(self._buffer[:end]))
            del self._buffer[: end + len(_HEADER_END)]
            headers = self._head[1]
            try:
                self._body_needed = int(headers.get("Content-Length", "0"))
            except ValueError as exc:
                raise ProtocolError("bad Content-Length") from exc
        if len(self._buffer) < self._body_needed:
            return None
        start, headers = self._head
        body = bytes(self._buffer[: self._body_needed])
        del self._buffer[: self._body_needed]
        self._head = None
        self._body_needed = 0
        return start, headers, body


def _build_response(start: list[str], headers: dict[str, str], body: bytes) -> HttpResponse:
    """Turn an assembled message into an :class:`HttpResponse`, raising
    :class:`ProtocolError` on a bad status line or undecodable body."""
    if len(start) < 2 or not start[1].isdigit():
        raise ProtocolError("bad status line")
    reason = start[2] if len(start) > 2 else ""
    response = HttpResponse(
        status=int(start[1]), reason=reason, headers=headers, body=body,
        version=start[0],
    )
    if response.header("Content-Encoding").lower() == "gzip":
        response.body = gunzip_bytes(response.body)
    return response


#: Server handler signature.
Handler = Callable[[HttpRequest], HttpResponse]


class HttpServer:
    """Routes requests by exact path, with optional prefix routes.

    The server side of the fast path is reactive and always on, because it
    only ever activates when a request asks for it (so legacy exchanges
    stay byte-identical): gzip request bodies are decompressed, responses
    to ``Accept-Encoding: gzip`` requests are compressed past a size
    floor, capabilities are echoed only to clients that advertised theirs,
    and connections are kept open only for ``Connection: keep-alive``
    requests.
    """

    def __init__(self, stack: TransportStack, port: int = 80) -> None:
        self.stack = stack
        self.port = port
        #: Capabilities echoed to clients that advertise theirs.  Instance
        #: state (not the module constant) so a gateway that accepts push
        #: event channels can append ``events-push`` without every other
        #: server on the simulation advertising it too.
        self.features = SERVER_FEATURES
        self._routes: dict[str, Handler] = {}
        self._prefix_routes: list[tuple[str, Handler]] = []
        self._listener = stack.listen(port, self._on_connection)
        self.requests_served = 0
        self.keepalive_reuses = 0

    def register(self, path: str, handler: Handler) -> None:
        self._routes[path] = handler

    def register_prefix(self, prefix: str, handler: Handler) -> None:
        self._prefix_routes.append((prefix, handler))

    def close(self) -> None:
        self._listener.close()
        # Cancel every held exchange still parked on the reactor: each
        # continuation answers its slot with 503 so no connection is left
        # waiting on a server that no longer exists.
        self.stack.reactor.cancel_key(self)

    # -- internals ------------------------------------------------------------

    def _on_connection(self, conn: Connection) -> None:
        # The assembler copies stream bytes exactly once, so the server
        # can always take the transport's zero-copy inbound slices.
        conn.zero_copy = True
        assembler = _MessageAssembler()
        served = {"count": 0}
        # Pipelined responses must leave in request order even when async
        # handlers resolve out of order: each request claims a slot here
        # and completed slots flush strictly from the head.
        slots: list[dict] = []

        def flush() -> None:
            while slots and slots[0]["response"] is not None:
                slot = slots.pop(0)
                self._respond(conn, slot["request"], slot["response"], slot["keep"])

        def on_data(connection: Connection, data: bytes) -> None:
            while True:
                try:
                    complete = assembler.feed(data)
                except ProtocolError:
                    self._respond(
                        connection, None, HttpResponse(400, body=b"malformed request"),
                        keep=False,
                    )
                    return
                if complete is None:
                    return
                start, headers, body = complete
                if len(start) != 3:
                    self._respond(
                        connection, None, HttpResponse(400, body=b"bad request line"),
                        keep=False,
                    )
                    return
                request = HttpRequest(
                    method=start[0], path=start[1], headers=headers, body=body,
                    version=start[2],
                )
                if request.header("Content-Encoding").lower() == "gzip":
                    try:
                        request.body = gunzip_bytes(request.body)
                    except ProtocolError:
                        self._respond(
                            connection, None, HttpResponse(400, body=b"bad gzip body"),
                            keep=False,
                        )
                        return
                if served["count"]:
                    self.keepalive_reuses += 1
                served["count"] += 1
                self._dispatch(connection, request, slots, flush)
                # Loop in case a further pipelined request is buffered.
                data = b""
                if not assembler.has_buffered:
                    return

        conn.set_receiver(on_data)

    def _dispatch(
        self,
        conn: Connection,
        request: HttpRequest,
        slots: list[dict],
        flush: Callable[[], None],
    ) -> None:
        keep = "keep-alive" in request.header("Connection").lower()
        if "vectored" in request.header(FEATURES_HEADER).split():
            # The client runs the reactor wire; coalesce our side too.
            conn.vectored = True
        slot: dict = {"request": request, "keep": keep, "response": None}
        slots.append(slot)
        handler = self._routes.get(request.path)
        if handler is None:
            for prefix, prefix_handler in self._prefix_routes:
                if request.path.startswith(prefix):
                    handler = prefix_handler
                    break
        if handler is None:
            slot["response"] = HttpResponse(404, body=b"no such path")
            flush()
            return
        try:
            response = handler(request)
        except Exception as exc:  # a handler bug must not kill the server
            response = HttpResponse(500, body=str(exc).encode("utf-8"))
        self.requests_served += 1
        if isinstance(response, SimFuture):
            # Asynchronous handler: the held exchange parks as a reactor
            # continuation until the handler resolves (or the server is
            # closed, which cancels the continuation and answers 503).
            continuation = self.stack.reactor.park(
                self, on_cancel=lambda: self._abandon_slot(slot, flush)
            )

            def on_done(future: SimFuture) -> None:
                if slot["response"] is not None:
                    return  # already answered by shutdown cancellation
                continuation.finish()
                exc = future.exception()
                if exc is not None:
                    slot["response"] = HttpResponse(
                        500, body=str(exc).encode("utf-8")
                    )
                else:
                    slot["response"] = future.result()
                flush()

            response.add_done_callback(on_done)
        else:
            slot["response"] = response
            flush()

    def _abandon_slot(self, slot: dict, flush: Callable[[], None]) -> None:
        """Continuation cancelled (server closed) before the handler
        resolved: answer the held exchange so the client is not left
        parked, and close the connection behind it."""
        if slot["response"] is not None:
            return
        slot["keep"] = False
        slot["response"] = HttpResponse(503, body=b"server shutting down")
        flush()

    def _respond(
        self,
        conn: Connection,
        request: HttpRequest | None,
        response: HttpResponse,
        keep: bool,
    ) -> None:
        if conn.state != Connection.ESTABLISHED:
            return  # client gave up while an async handler was running
        if request is not None:
            if request.header(FEATURES_HEADER):
                response.headers.setdefault(FEATURES_HEADER, self.features)
            if (
                "gzip" in request.header("Accept-Encoding").lower()
                and len(response.body) >= COMPRESS_MIN_BYTES
                and "content-encoding" not in (k.lower() for k in response.headers)
            ):
                response.body = gzip_bytes(response.body)
                response.headers["Content-Encoding"] = "gzip"
        if keep:
            response.version = "HTTP/1.1"
            response.headers.setdefault("Connection", "keep-alive")
        conn.send(response.to_bytes())
        if not keep:
            conn.close()


class _PooledConnection:
    """One destination's persistent connection: a FIFO of pending
    exchanges, up to ``pipeline_depth`` in flight at a time (responses
    match requests in order), an idle-close timer, and enough bookkeeping
    to die cleanly when the path does."""

    def __init__(self, client: "HttpClient", key: tuple[NodeAddress, int]) -> None:
        self.client = client
        self.key = key
        self.conn: Connection | None = None
        self.assembler = _MessageAssembler()
        self.queue: list[tuple[HttpRequest, SimFuture]] = []
        #: Futures of requests already written, in request order.
        self.inflight: deque[SimFuture] = deque()
        self.idle_timer: Event | None = None
        #: Invalidates this entry's records in the client's idle heap
        #: whenever it leaves the idle state (lazy deletion).
        self.idle_gen = 0
        #: The peer answered with keep-alive at least once on the current
        #: connection; pipelining past depth 1 waits for this proof so a
        #: legacy server never sees overlapped requests.
        self.peer_keeps_alive = False
        self.connecting = False
        self.dead = False
        self.exchanges = 0

    # -- public (driven by HttpClient) ---------------------------------------

    def enqueue(self, request: HttpRequest, future: SimFuture) -> None:
        self._cancel_idle_timer()
        self.queue.append((request, future))
        if self.conn is not None and self.conn.state == Connection.ESTABLISHED:
            self._pump()
        elif not self.connecting:
            self._connect()

    def abort(self, exc: BaseException) -> None:
        """Evict: kill the transport connection and fail every pending
        exchange with ``exc`` so callers retry on a fresh connection."""
        if self.dead:
            return
        self.dead = True
        self._cancel_idle_timer()
        conn, self.conn = self.conn, None
        if conn is not None:
            conn.abort()
        inflight, self.inflight = list(self.inflight), deque()
        for future in inflight:
            if not future.done():
                future.set_exception(exc)
        queue, self.queue = self.queue, []
        for _request, future in queue:
            if not future.done():
                future.set_exception(exc)

    # -- internals ------------------------------------------------------------

    def _connect(self) -> None:
        self.connecting = True
        dst, port = self.key

        def on_connected(conn_future: SimFuture) -> None:
            self.connecting = False
            if self.dead:
                if conn_future.exception() is None:
                    conn_future.result().abort()
                return
            exc = conn_future.exception()
            if exc is not None:
                self.client._drop_entry(self)
                self.abort(exc)
                return
            self.conn = conn_future.result()
            config = self.client.config
            if config.vectored:
                # Reactor wire: coalesce our writes, take zero-copy reads
                # (the bytearray assembler accepts memoryview slices).
                self.conn.vectored = True
                self.conn.zero_copy = True
            self.assembler = _MessageAssembler()
            # Pipelining proof is per transport connection: a reconnect
            # starts one-in-flight again until the peer re-proves itself.
            self.peer_keeps_alive = False
            self.conn.set_receiver(self._on_data)
            self.conn.on_close(self._on_closed)
            self._pump()

        self.client.stack.connect(dst, port).add_done_callback(on_connected)

    def _pump(self) -> None:
        if not self.queue:
            return
        if self.conn is None or self.conn.state != Connection.ESTABLISHED:
            if not self.connecting:
                self._connect()
            return
        depth = (
            max(1, self.client.config.pipeline_depth)
            if self.peer_keeps_alive
            else 1
        )
        while self.queue and len(self.inflight) < depth:
            request, future = self.queue.pop(0)
            self.inflight.append(future)
            try:
                self.conn.send(request.to_bytes())
            except Exception as exc:
                self.inflight.pop()
                self.client._drop_entry(self)
                if not future.done():
                    future.set_exception(TransportError(f"pooled send failed: {exc}"))
                self.abort(TransportError(f"pooled connection unusable: {exc}"))
                return

    def _on_data(self, connection: Connection, data: bytes) -> None:
        # Loop: one delivery may complete several pipelined responses
        # (a vectored peer coalesces them into one transmission).
        while True:
            try:
                complete = self.assembler.feed(data)
                if complete is None:
                    return
                response = _build_response(*complete)
            except ProtocolError as exc:
                future = self.inflight.popleft() if self.inflight else None
                if future is not None and not future.done():
                    future.set_exception(exc)
                self.client._drop_entry(self)
                self.abort(TransportError("pooled connection desynchronised"))
                return
            self.exchanges += 1
            future = self.inflight.popleft() if self.inflight else None
            self.client._note_response(self.key, response)
            keep = "keep-alive" in response.header("Connection").lower()
            if keep:
                self.peer_keeps_alive = True
            if future is not None and not future.done():
                future.set_result(response)
            if not keep:
                # Peer is closing after this exchange (legacy server):
                # anything pipelined behind it will never be answered;
                # queued-but-unsent requests reconnect fresh.
                conn, self.conn = self.conn, None
                if conn is not None:
                    conn.close()
                stranded, self.inflight = list(self.inflight), deque()
                for pending in stranded:
                    if not pending.done():
                        pending.set_exception(
                            TransportError("peer closed before pipelined response")
                        )
                if self.queue:
                    self._connect()
                elif not self.dead:
                    self.client._drop_entry(self)
                    self.dead = True
                return
            if self.queue:
                self._pump()
            if not self.inflight and not self.queue:
                self._start_idle_timer()
            data = b""
            if not self.assembler.has_buffered:
                return

    def _on_closed(self, connection: Connection) -> None:
        if self.dead or connection is not self.conn:
            return
        self.conn = None
        inflight, self.inflight = list(self.inflight), deque()
        for future in inflight:
            if not future.done():
                future.set_exception(TransportError("connection closed mid-response"))
        if self.queue:
            # Requests never sent are safe to replay on a new connection.
            self._connect()
        else:
            self.client._drop_entry(self)
            self.dead = True

    def _start_idle_timer(self) -> None:
        self._cancel_idle_timer()
        timeout = self.client.config.idle_timeout
        if timeout <= 0:
            # No idle reaping (the legacy leak shape) — but the entry is
            # still idle, so it stays reachable for LRU cap eviction.
            self.client._note_idle(self, self.client.stack.sim.now)
            return
        deadline = self.client.stack.sim.now + timeout
        self.idle_timer = self.client.stack.sim.schedule(timeout, self._idle_close)
        self.client._note_idle(self, deadline)

    def _idle_close(self) -> None:
        self.idle_timer = None
        if self.inflight or self.queue:
            return
        self.client._m_idle_closes.inc()
        self.client._drop_entry(self)
        self.abort(TransportError("pooled connection idle-closed"))

    def _cancel_idle_timer(self) -> None:
        # Leaving the idle state: stale idle-heap records for this entry
        # are invalidated by the generation bump (lazy deletion).
        self.idle_gen += 1
        if self.idle_timer is not None:
            self.idle_timer.cancel()
            self.idle_timer = None

    @property
    def idle(self) -> bool:
        return not self.inflight and not self.queue


class HttpClient:
    """HTTP exchanges: one-shot by default, pooled keep-alive when the
    config asks for it."""

    def __init__(self, stack: TransportStack, config: InterchangeConfig | None = None) -> None:
        self.stack = stack
        self.config = config or LEGACY_INTERCHANGE
        self.requests_sent = 0
        self.pooled_exchanges = 0
        self.pooled_evictions = 0
        self.compressed_requests = 0
        #: destination -> pooled entry, in LRU order (oldest first).
        self._pool: dict[tuple[NodeAddress, int], _PooledConnection] = {}
        #: Idle entries indexed by expiry deadline: a heap of
        #: ``(deadline, seq, entry, generation)`` records.  Records go
        #: stale (lazy deletion) when the entry leaves the idle state and
        #: bumps its ``idle_gen``; eviction pops from the head, so finding
        #: the next idle victim is O(evicted + stale) instead of a linear
        #: scan of the whole pool on every acquire.
        self._idle_heap: list[tuple[float, int, _PooledConnection, int]] = []
        self._idle_seq = 0
        #: destination -> features the peer has proven it understands.
        self._peer_features: dict[tuple[NodeAddress, int], frozenset[str]] = {}
        #: Optional :class:`repro.obs.flight.FlightRecorder`: watchdog reaps
        #: record a ``watchdog_reap`` entry and trigger a dump.
        self.flight = None
        self._set_obs(NOOP_OBS, "")

    def observe(self, obs, label: str = "") -> "HttpClient":
        """Attach an observability bundle; ``label`` namespaces the pool
        and request metrics (e.g. the owning island's name)."""
        self._set_obs(obs, label)
        return self

    def _set_obs(self, obs, label: str) -> None:
        self.obs = obs
        self.label = label
        metrics = obs.metrics
        prefix = f"http.{label}" if label else "http.client"
        self._m_requests = metrics.counter(f"{prefix}.requests")
        self._m_pool_hits = metrics.counter(f"{prefix}.pool_hits")
        self._m_pool_misses = metrics.counter(f"{prefix}.pool_misses")
        self._m_evictions = metrics.counter(f"{prefix}.evictions")
        self._m_idle_closes = metrics.counter(f"{prefix}.idle_closes")
        self._m_compressed = metrics.counter(f"{prefix}.compressed_requests")

    # -- negotiation ------------------------------------------------------------

    def peer_features(self, dst: NodeAddress, port: int) -> frozenset[str]:
        """Capabilities learned from the peer's ``X-Interchange`` echo."""
        return self._peer_features.get((dst, port), frozenset())

    def _note_response(self, key: tuple[NodeAddress, int], response: HttpResponse) -> None:
        advertised = response.header(FEATURES_HEADER)
        if advertised:
            self._peer_features[key] = frozenset(advertised.split())

    # -- pool management --------------------------------------------------------

    def invalidate(self, dst: NodeAddress, port: int | None = None) -> None:
        """Evict pooled connections to ``dst`` (any port unless given).

        The resilience layer calls this when a circuit breaker opens or a
        call into ``dst`` fails with a connectivity error: a partitioned
        or crashed peer must not be reached through a stale pooled
        connection, and failing the pending exchanges here lets retries
        run on a fresh connection immediately.
        """
        for key in list(self._pool):
            if key[0] == dst and (port is None or key[1] == port):
                entry = self._pool.pop(key)
                self.pooled_evictions += 1
                self._m_evictions.inc()
                entry.abort(TransportError(f"pooled connection to {dst} invalidated"))

    def _drop_entry(self, entry: _PooledConnection) -> None:
        current = self._pool.get(entry.key)
        if current is entry:
            del self._pool[entry.key]

    def _entry_for(self, key: tuple[NodeAddress, int]) -> _PooledConnection:
        entry = self._pool.pop(key, None)
        if entry is None:
            entry = _PooledConnection(self, key)
            self._evict_lru_idle()
        self._pool[key] = entry  # (re-)append: most recently used last
        return entry

    def _note_idle(self, entry: _PooledConnection, deadline: float) -> None:
        """Index an entry that just went idle by its expiry deadline."""
        self._idle_seq += 1
        heapq.heappush(
            self._idle_heap, (deadline, self._idle_seq, entry, entry.idle_gen)
        )

    def _evict_lru_idle(self) -> None:
        if len(self._pool) < self.config.pool_destinations:
            return
        while self._idle_heap:
            _deadline, _seq, entry, gen = heapq.heappop(self._idle_heap)
            if gen != entry.idle_gen or entry.dead or not entry.idle:
                continue  # stale record: the entry got busy again or died
            if self._pool.get(entry.key) is not entry:
                continue
            del self._pool[entry.key]
            self.pooled_evictions += 1
            self._m_evictions.inc()
            entry.abort(TransportError("pooled connection LRU-evicted"))
            return

    @property
    def pooled_destinations(self) -> int:
        return len(self._pool)

    def open_connections(self) -> list["_PooledConnection"]:
        """Pool entries whose transport connection is still live (or still
        being established).  A quiesced client — nothing in flight, idle
        timers allowed to run — must report none; the testkit's pool-leak
        oracle asserts exactly that after shutdown."""
        return [
            entry
            for entry in self._pool.values()
            if not entry.dead
            and (
                entry.connecting
                or entry.inflight
                or entry.queue
                or (
                    entry.conn is not None
                    and entry.conn.state != Connection.CLOSED
                )
            )
        ]

    def close(self) -> None:
        """Abort every pooled connection immediately (final teardown, not
        quiesce: pending exchanges fail with :class:`TransportError`)."""
        for key in list(self._pool):
            entry = self._pool.pop(key, None)
            if entry is not None:
                entry.abort(TransportError("HTTP client closed"))

    # -- requests ------------------------------------------------------------

    def request(
        self,
        dst: NodeAddress,
        port: int,
        method: str,
        path: str,
        body: bytes = b"",
        headers: dict[str, str] | None = None,
    ) -> SimFuture:
        """Returns a future resolving to :class:`HttpResponse` (any status);
        transport failures resolve to :class:`TransportError`."""
        self.requests_sent += 1
        self._m_requests.inc()
        tracer = self.obs.tracer
        span = NULL_SPAN
        if tracer.enabled and tracer.current() is not None:
            # Transport spans join the ambient trace only — an untraced
            # request (heartbeat, poll) must not start a root trace.
            span = tracer.start_span(
                f"http.exchange {method} {path}", island=self.label, kind="transport"
            )
        if span.recording:

            def finish_span(done: SimFuture) -> None:
                if done.exception() is None:
                    span.set_attribute("status", done.result().status)
                span.finish(done.exception())

        headers = dict(headers or {})
        if not self.config.fast:
            request = HttpRequest(method=method, path=path, headers=headers, body=body)
            result = self._oneshot(dst, port, request, span)
            if span.recording:
                result.add_done_callback(finish_span)
            return result
        key = (dst, port)
        advert = self.config.advertised_features
        if advert:
            headers.setdefault(FEATURES_HEADER, advert)
        if self.config.compress:
            headers.setdefault("Accept-Encoding", "gzip")
            if (
                "gzip" in self._peer_features.get(key, frozenset())
                and len(body) >= self.config.compress_min_bytes
            ):
                body = gzip_bytes(body)
                headers["Content-Encoding"] = "gzip"
                self.compressed_requests += 1
                self._m_compressed.inc()
        if not self.config.keep_alive:
            request = HttpRequest(method=method, path=path, headers=headers, body=body)
            result = self._oneshot(dst, port, request, span)
            if span.recording:
                result.add_done_callback(finish_span)
            return result
        headers.setdefault("Connection", "keep-alive")
        request = HttpRequest(
            method=method, path=path, headers=headers, body=body, version="HTTP/1.1"
        )
        future: SimFuture = SimFuture()
        self.pooled_exchanges += 1
        entry = self._entry_for(key)
        reused = entry.conn is not None and entry.conn.state == Connection.ESTABLISHED
        if reused:
            self._m_pool_hits.inc()
        else:
            self._m_pool_misses.inc()
        if span.recording:
            span.set_attribute("pool", "reused" if reused else "fresh")
            future.add_done_callback(finish_span)
        entry.enqueue(request, future)
        timeout = self.config.exchange_timeout
        if timeout:

            def give_up() -> None:
                if future.done():
                    return
                # The connection is wedged mid-exchange; everything queued
                # behind the stuck request is doomed with it.
                self._drop_entry(entry)
                entry.abort(
                    TransportError(
                        f"pooled exchange with {dst}:{port} timed out "
                        f"after {timeout:g}s"
                    )
                )
                if self.flight is not None:
                    self.flight.record(
                        "watchdog_reap",
                        mode="pooled",
                        dst=str(dst),
                        port=port,
                        timeout=timeout,
                    )
                    self.flight.trigger("watchdog-reap")

            timer = self.stack.sim.schedule(timeout, give_up)
            future.add_done_callback(lambda _done: timer.cancel())
        return future

    def _oneshot(
        self, dst: NodeAddress, port: int, request: HttpRequest, span=NULL_SPAN
    ) -> SimFuture:
        """The legacy path: open, exchange once, close."""
        future: SimFuture = SimFuture()
        live: dict[str, Connection] = {}
        connect_span = (
            self.obs.tracer.start_span(
                "http.connect", island=self.label, kind="transport", parent=span
            )
            if span.recording
            else NULL_SPAN
        )

        def on_connected(conn_future: SimFuture) -> None:
            connect_span.finish(conn_future.exception())
            exc = conn_future.exception()
            if exc is not None:
                future.set_exception(exc)
                return
            conn: Connection = conn_future.result()
            assembler = _MessageAssembler()

            def on_data(connection: Connection, data: bytes) -> None:
                try:
                    complete = assembler.feed(data)
                    if complete is None:
                        return
                    response = _build_response(*complete)
                except ProtocolError as parse_exc:
                    if not future.done():
                        future.set_exception(parse_exc)
                    connection.close()
                    return
                self._note_response((dst, port), response)
                connection.close()
                if not future.done():
                    future.set_result(response)

            def on_closed(connection: Connection) -> None:
                if not future.done():
                    future.set_exception(TransportError("connection closed mid-response"))

            conn.set_receiver(on_data)
            conn.on_close(on_closed)
            live["conn"] = conn
            conn.send(request.to_bytes())

        timeout = self.config.exchange_timeout
        if timeout:

            def give_up() -> None:
                if future.done():
                    return
                future.set_exception(
                    TransportError(
                        f"HTTP exchange with {dst}:{port} timed out "
                        f"after {timeout:g}s"
                    )
                )
                conn = live.get("conn")
                if conn is not None and conn.state != Connection.CLOSED:
                    conn.close()
                if self.flight is not None:
                    self.flight.record(
                        "watchdog_reap",
                        mode="oneshot",
                        dst=str(dst),
                        port=port,
                        timeout=timeout,
                    )
                    self.flight.trigger("watchdog-reap")

            timer = self.stack.sim.schedule(timeout, give_up)
            future.add_done_callback(lambda _done: timer.cancel())
        self.stack.connect(dst, port).add_done_callback(on_connected)
        return future

    def get(self, dst: NodeAddress, port: int, path: str) -> SimFuture:
        return self.request(dst, port, "GET", path)

    def post(
        self,
        dst: NodeAddress,
        port: int,
        path: str,
        body: bytes,
        headers: dict[str, str] | None = None,
    ) -> SimFuture:
        return self.request(dst, port, "POST", path, body=body, headers=headers)


def expect_ok(response: HttpResponse) -> HttpResponse:
    """Raise :class:`HttpError` unless the status is 2xx."""
    if not response.ok:
        raise HttpError(response.status, response.reason, response.body)
    return response
