"""SOAP RPC client."""

from __future__ import annotations

from typing import Any

from repro.errors import SoapError, SoapFault
from repro.net.addressing import NodeAddress
from repro.net.simkernel import SimFuture
from repro.net.transport import TransportStack
from repro.soap import envelope
from repro.soap.http import HttpClient, HttpResponse, InterchangeConfig
from repro.soap.server import (
    DEFAULT_SOAP_PORT,
    SOAP_PATH_PREFIX,
    TERSE_CONTENT_TYPE,
    VERBOSE_CONTENT_TYPE,
)


class SoapClient:
    """Calls named SOAP services hosted by a :class:`SoapServer`.

    With a fast :class:`InterchangeConfig` the underlying
    :class:`HttpClient` pools keep-alive connections and negotiates gzip,
    and this layer switches to terse envelopes for peers that have echoed
    ``terse`` in their capability header.  The first exchange with any peer
    is always verbose, so talking to a legacy server works unchanged.
    """

    def __init__(
        self, stack: TransportStack, config: InterchangeConfig | None = None
    ) -> None:
        self.stack = stack
        self.config = config or InterchangeConfig()
        self.http = HttpClient(stack, self.config)
        self.calls_sent = 0
        self.terse_calls_sent = 0

    def invalidate_peer(self, dst: NodeAddress, port: int | None = None) -> None:
        """Evict any pooled keep-alive connections to ``dst``."""
        self.http.invalidate(dst, port)

    def call(
        self,
        dst: NodeAddress,
        service: str,
        operation: str,
        args: list[Any],
        port: int = DEFAULT_SOAP_PORT,
    ) -> SimFuture:
        """Invoke ``service.operation(*args)`` at ``dst``.

        The returned future resolves to the decoded return value, or fails
        with :class:`SoapFault` (remote fault) / transport errors.
        """
        self.calls_sent += 1
        terse = self.config.terse and "terse" in self.http.peer_features(dst, port)
        if terse:
            self.terse_calls_sent += 1
            body = envelope.build_request_terse(operation, args)
            content_type = TERSE_CONTENT_TYPE
        else:
            body = envelope.build_request(operation, args)
            content_type = VERBOSE_CONTENT_TYPE + "; charset=utf-8"
        headers = {
            "Content-Type": content_type,
            "SOAPAction": f'"{service}#{operation}"',
        }
        response_future = self.http.post(
            dst, port, SOAP_PATH_PREFIX + service, body, headers=headers
        )
        result: SimFuture = SimFuture()

        def on_response(future: SimFuture) -> None:
            exc = future.exception()
            if exc is not None:
                result.set_exception(exc)
                return
            response: HttpResponse = future.result()
            try:
                message = envelope.parse_envelope(response.body)
            except SoapError as parse_exc:
                result.set_exception(parse_exc)
                return
            if message.kind == "fault":
                result.set_exception(
                    SoapFault(message.faultcode, message.faultstring, message.detail)
                )
            elif message.kind == "response":
                result.set_result(message.value)
            else:
                result.set_exception(
                    SoapError(f"expected response envelope, got {message.kind}")
                )

        response_future.add_done_callback(on_response)
        return result
