"""SOAP RPC client."""

from __future__ import annotations

from typing import Any

from repro.errors import SoapError, SoapFault
from repro.net.addressing import NodeAddress
from repro.net.simkernel import SimFuture
from repro.net.transport import TransportStack
from repro.obs import NOOP_OBS, NULL_SPAN
from repro.obs.trace import TRACE_HEADER, TraceContext
from repro.soap import envelope
from repro.soap.http import HttpClient, HttpResponse, InterchangeConfig
from repro.soap.server import (
    DEFAULT_SOAP_PORT,
    SOAP_PATH_PREFIX,
    TERSE_CONTENT_TYPE,
    VERBOSE_CONTENT_TYPE,
)


class SoapClient:
    """Calls named SOAP services hosted by a :class:`SoapServer`.

    With a fast :class:`InterchangeConfig` the underlying
    :class:`HttpClient` pools keep-alive connections and negotiates gzip,
    and this layer switches to terse envelopes for peers that have echoed
    ``terse`` in their capability header.  The first exchange with any peer
    is always verbose, so talking to a legacy server works unchanged.
    """

    def __init__(
        self, stack: TransportStack, config: InterchangeConfig | None = None
    ) -> None:
        self.stack = stack
        self.config = config or InterchangeConfig()
        self.http = HttpClient(stack, self.config)
        self.calls_sent = 0
        self.terse_calls_sent = 0
        self.obs = NOOP_OBS
        self.label = ""

    def observe(self, obs: Any, label: str = "") -> "SoapClient":
        """Attach an observability bundle; ``label`` (normally the owning
        island) namespaces the metrics and tags the spans."""
        self.obs = obs
        self.label = label
        self.http.observe(obs, label)
        return self

    def invalidate_peer(self, dst: NodeAddress, port: int | None = None) -> None:
        """Evict any pooled keep-alive connections to ``dst``."""
        self.http.invalidate(dst, port)

    def call(
        self,
        dst: NodeAddress,
        service: str,
        operation: str,
        args: list[Any],
        port: int = DEFAULT_SOAP_PORT,
        trace: TraceContext | None = None,
    ) -> SimFuture:
        """Invoke ``service.operation(*args)`` at ``dst``.

        The returned future resolves to the decoded return value, or fails
        with :class:`SoapFault` (remote fault) / transport errors.

        ``trace`` joins the call to an existing trace; without it the
        ambient active span (if any) is used.  Traced calls carry the
        context to the peer in the ``X-Trace`` header — untraced calls add
        no header, leaving the wire byte-identical to the seed format.
        """
        self.calls_sent += 1
        tracer = self.obs.tracer
        span = NULL_SPAN
        if tracer.enabled:
            parent = trace if trace is not None else tracer.current()
            if parent is not None:
                span = tracer.start_span(
                    f"soap.call {service}.{operation}",
                    island=self.label,
                    kind="client",
                    parent=parent,
                )
        terse = self.config.terse and "terse" in self.http.peer_features(dst, port)
        encode = (
            tracer.start_span("soap.encode", island=self.label, parent=span)
            if span.recording
            else NULL_SPAN
        )
        if terse:
            self.terse_calls_sent += 1
            body = envelope.build_request_terse(operation, args)
            content_type = TERSE_CONTENT_TYPE
        else:
            body = envelope.build_request(operation, args)
            content_type = VERBOSE_CONTENT_TYPE + "; charset=utf-8"
        encode.set_attribute("wire_format", "terse" if terse else "verbose")
        encode.set_attribute("bytes", len(body))
        encode.finish()
        headers = {
            "Content-Type": content_type,
            "SOAPAction": f'"{service}#{operation}"',
        }
        if span.recording:
            headers[TRACE_HEADER] = span.context.to_header()
        with tracer.activate(span):
            response_future = self.http.post(
                dst, port, SOAP_PATH_PREFIX + service, body, headers=headers
            )
        result: SimFuture = SimFuture()

        def on_response(future: SimFuture) -> None:
            exc = future.exception()
            if exc is not None:
                span.finish(exc)
                result.set_exception(exc)
                return
            response: HttpResponse = future.result()
            decode = (
                tracer.start_span("soap.decode", island=self.label, parent=span)
                if span.recording
                else NULL_SPAN
            )
            try:
                message = envelope.parse_envelope(response.body)
            except SoapError as parse_exc:
                decode.finish(parse_exc)
                span.finish(parse_exc)
                result.set_exception(parse_exc)
                return
            decode.set_attribute("wire_format", message.wire_format)
            decode.finish()
            if message.kind == "fault":
                fault = SoapFault(message.faultcode, message.faultstring, message.detail)
                span.finish(fault)
                result.set_exception(fault)
            elif message.kind == "response":
                span.finish()
                result.set_result(message.value)
            else:
                bad = SoapError(f"expected response envelope, got {message.kind}")
                span.finish(bad)
                result.set_exception(bad)

        response_future.add_done_callback(on_response)
        return result
