"""SOAP 1.1-style envelopes with Section-5 typed encoding.

Supported value types (the neutral value model of the framework maps onto
exactly these): ``int``, ``float``, ``str``, ``bool``, ``bytes`` (base64),
``None`` (``xsi:nil``), ``list`` (SOAP-ENC Array) and ``dict`` with
identifier-like string keys (struct).  Everything round-trips:
``decode(encode(v)) == v``, which the hypothesis tests verify.

Two wire encodings produce the same :class:`SoapMessage` model:

- **verbose** — the faithful 2002 format above (namespaces, ``xsi:type``
  attributes, XML declaration).  Always the default; the F2/C-series
  baselines measure it.
- **terse** — a negotiated compact XML dialect for the interchange fast
  path: root ``<E>``, request ``<Q n="op">``, response ``<R n="op">``,
  fault ``<F c=... s=... d=...>``, and single-letter typed values
  ``<v t="i|d|s|b|x|z|a|r">`` (struct members carry ``n="key"``).  Same
  value model, same round-trip guarantee, a fraction of the bytes.

:func:`parse_envelope` accepts either and records which arrived in
``SoapMessage.wire_format`` so servers can answer in kind.
"""

from __future__ import annotations

import base64
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Any

from repro.errors import MarshallingError, SoapError
from repro.soap import xmlutil
from repro.soap.xmlutil import (
    SOAP_ENC_NS,
    SOAP_ENV_NS,
    XSD_NS,
    XSI_NS,
    XmlWriter,
    is_xml_name,
    local_name,
)

#: Default namespace for application payload elements.
DEFAULT_SERVICE_NS = "urn:repro-vsg"

_ENVELOPE_ATTRS = {
    "xmlns:SOAP-ENV": SOAP_ENV_NS,
    "xmlns:SOAP-ENC": SOAP_ENC_NS,
    "xmlns:xsi": XSI_NS,
    "xmlns:xsd": XSD_NS,
    "SOAP-ENV:encodingStyle": SOAP_ENC_NS,
}

# Envelope building runs once per bridged call and once per event frame —
# the encode hot path — so builders borrow a pooled writer (reusing its
# allocated part lists) instead of constructing one per envelope.  A
# writer released after a failed build may hold partial markup; reset()
# at borrow time clears it.  Output bytes are identical either way.
_WRITER_POOL: list[XmlWriter] = []
_WRITER_POOL_MAX = 8


def _borrow_writer(declaration: bool = True) -> XmlWriter:
    if _WRITER_POOL:
        writer = _WRITER_POOL.pop()
        writer.reset(declaration)
        return writer
    return XmlWriter(declaration=declaration)


def _release_writer(writer: XmlWriter) -> None:
    if len(_WRITER_POOL) < _WRITER_POOL_MAX:
        _WRITER_POOL.append(writer)


@dataclass
class SoapMessage:
    """Parsed envelope content.

    ``kind`` is ``"request"``, ``"response"`` or ``"fault"``.  Requests carry
    ``operation`` and positional ``args``; responses carry ``value``; faults
    carry ``faultcode`` / ``faultstring`` / ``detail``.
    """

    kind: str
    operation: str = ""
    args: list[Any] = field(default_factory=list)
    value: Any = None
    faultcode: str = ""
    faultstring: str = ""
    detail: str = ""
    #: Which encoding the message arrived in: ``"verbose"`` or ``"terse"``.
    wire_format: str = "verbose"

    def raise_if_fault(self) -> "SoapMessage":
        if self.kind == "fault":
            from repro.errors import SoapFault

            raise SoapFault(self.faultcode, self.faultstring, self.detail)
        return self


# ---------------------------------------------------------------------------
# Value encoding
# ---------------------------------------------------------------------------


def encode_value(writer: XmlWriter, tag: str, value: Any) -> None:
    """Append ``<tag xsi:type=...>`` markup for one value."""
    if value is None:
        writer.leaf(tag, {"xsi:nil": "true"})
    elif isinstance(value, bool):  # before int: bool is an int subclass
        writer.leaf(tag, {"xsi:type": "xsd:boolean"}, "true" if value else "false")
    elif isinstance(value, int):
        writer.leaf(tag, {"xsi:type": "xsd:int"}, str(value))
    elif isinstance(value, float):
        writer.leaf(tag, {"xsi:type": "xsd:double"}, repr(value))
    elif isinstance(value, str):
        writer.leaf(tag, {"xsi:type": "xsd:string"}, value)
    elif isinstance(value, (bytes, bytearray)):
        writer.leaf(
            tag,
            {"xsi:type": "SOAP-ENC:base64"},
            base64.b64encode(bytes(value)).decode("ascii"),
        )
    elif isinstance(value, (list, tuple)):
        writer.open(
            tag,
            {
                "xsi:type": "SOAP-ENC:Array",
                "SOAP-ENC:arrayType": f"xsd:anyType[{len(value)}]",
            },
        )
        for item in value:
            encode_value(writer, "item", item)
        writer.close()
    elif isinstance(value, dict):
        writer.open(tag, {"xsi:type": "SOAP-ENC:Struct"})
        for key, member in value.items():
            if not isinstance(key, str) or not is_xml_name(key):
                raise MarshallingError(
                    f"struct keys must be XML-name-like strings, got {key!r}"
                )
            encode_value(writer, key, member)
        writer.close()
    else:
        raise MarshallingError(f"cannot SOAP-encode value of type {type(value).__name__}")


def decode_value(element: ET.Element) -> Any:
    """Inverse of :func:`encode_value`."""
    if xmlutil.attr(element, XSI_NS, "nil") == "true":
        return None
    type_attr = xmlutil.attr(element, XSI_NS, "type") or ""
    local_type = type_attr.rpartition(":")[2]
    text = element.text or ""
    if local_type == "boolean":
        return text.strip() in ("true", "1")
    if local_type in ("int", "long", "short", "integer"):
        try:
            return int(text.strip())
        except ValueError as exc:
            raise MarshallingError(f"bad int literal {text!r}") from exc
    if local_type in ("double", "float", "decimal"):
        try:
            return float(text.strip())
        except ValueError as exc:
            raise MarshallingError(f"bad float literal {text!r}") from exc
    if local_type == "string":
        return text
    if local_type == "base64":
        try:
            return base64.b64decode(text.strip().encode("ascii"))
        except Exception as exc:
            raise MarshallingError(f"bad base64 payload: {exc}") from exc
    if local_type == "Array":
        return [decode_value(item) for item in element]
    if local_type == "Struct":
        return {local_name(member): decode_value(member) for member in element}
    raise MarshallingError(f"unknown xsi:type {type_attr!r} on {local_name(element)!r}")


# ---------------------------------------------------------------------------
# Envelope construction
# ---------------------------------------------------------------------------


def _open_envelope(writer: XmlWriter) -> None:
    writer.open("SOAP-ENV:Envelope", _ENVELOPE_ATTRS)
    writer.open("SOAP-ENV:Body")


def _close_envelope(writer: XmlWriter) -> None:
    writer.close()  # Body
    writer.close()  # Envelope


def build_request(operation: str, args: list[Any], service_ns: str = DEFAULT_SERVICE_NS) -> bytes:
    """RPC request: ``<m:operation><arg0/>...</m:operation>``."""
    if not is_xml_name(operation):
        raise SoapError(f"operation name {operation!r} is not a valid XML name")
    writer = _borrow_writer()
    try:
        _open_envelope(writer)
        writer.open(f"m:{operation}", {"xmlns:m": service_ns})
        for index, value in enumerate(args):
            encode_value(writer, f"arg{index}", value)
        writer.close()
        _close_envelope(writer)
        return writer.tobytes()
    finally:
        _release_writer(writer)


def build_response(operation: str, value: Any, service_ns: str = DEFAULT_SERVICE_NS) -> bytes:
    """RPC response: ``<m:operationResponse><return/></m:operationResponse>``."""
    if not is_xml_name(operation):
        raise SoapError(f"operation name {operation!r} is not a valid XML name")
    writer = _borrow_writer()
    try:
        _open_envelope(writer)
        writer.open(f"m:{operation}Response", {"xmlns:m": service_ns})
        encode_value(writer, "return", value)
        writer.close()
        _close_envelope(writer)
        return writer.tobytes()
    finally:
        _release_writer(writer)


def build_fault(faultcode: str, faultstring: str, detail: str = "") -> bytes:
    """SOAP Fault envelope."""
    writer = _borrow_writer()
    try:
        _open_envelope(writer)
        writer.open("SOAP-ENV:Fault")
        writer.leaf("faultcode", text=faultcode)
        writer.leaf("faultstring", text=faultstring)
        if detail:
            writer.leaf("detail", text=detail)
        writer.close()
        _close_envelope(writer)
        return writer.tobytes()
    finally:
        _release_writer(writer)


# ---------------------------------------------------------------------------
# Terse encoding (negotiated fast path)
# ---------------------------------------------------------------------------

#: Marker for the terse wire format (root element of every terse envelope).
TERSE_ROOT = "E"

_TERSE_TYPES = {"i", "d", "s", "b", "x", "z", "a", "r"}


def encode_value_terse(writer: XmlWriter, value: Any, name: str = "") -> None:
    """Append one ``<v t=...>`` element (``n=`` names struct members)."""
    attrs: dict[str, str] = {"n": name} if name else {}
    if value is None:
        attrs["t"] = "z"
        writer.leaf("v", attrs)
    elif isinstance(value, bool):  # before int: bool is an int subclass
        attrs["t"] = "b"
        writer.leaf("v", attrs, "1" if value else "0")
    elif isinstance(value, int):
        attrs["t"] = "i"
        writer.leaf("v", attrs, str(value))
    elif isinstance(value, float):
        attrs["t"] = "d"
        writer.leaf("v", attrs, repr(value))
    elif isinstance(value, str):
        attrs["t"] = "s"
        writer.leaf("v", attrs, value)
    elif isinstance(value, (bytes, bytearray)):
        attrs["t"] = "x"
        writer.leaf("v", attrs, base64.b64encode(bytes(value)).decode("ascii"))
    elif isinstance(value, (list, tuple)):
        attrs["t"] = "a"
        writer.open("v", attrs)
        for item in value:
            encode_value_terse(writer, item)
        writer.close()
    elif isinstance(value, dict):
        attrs["t"] = "r"
        writer.open("v", attrs)
        for key, member in value.items():
            if not isinstance(key, str) or not is_xml_name(key):
                raise MarshallingError(
                    f"struct keys must be XML-name-like strings, got {key!r}"
                )
            encode_value_terse(writer, member, name=key)
        writer.close()
    else:
        raise MarshallingError(f"cannot SOAP-encode value of type {type(value).__name__}")


def decode_value_terse(element: ET.Element) -> Any:
    """Inverse of :func:`encode_value_terse`."""
    kind = element.get("t", "")
    text = element.text or ""
    if kind == "z":
        return None
    if kind == "b":
        return text.strip() == "1"
    if kind == "i":
        try:
            return int(text.strip())
        except ValueError as exc:
            raise MarshallingError(f"bad int literal {text!r}") from exc
    if kind == "d":
        try:
            return float(text.strip())
        except ValueError as exc:
            raise MarshallingError(f"bad float literal {text!r}") from exc
    if kind == "s":
        return text
    if kind == "x":
        try:
            return base64.b64decode(text.strip().encode("ascii"))
        except Exception as exc:
            raise MarshallingError(f"bad base64 payload: {exc}") from exc
    if kind == "a":
        return [decode_value_terse(item) for item in element]
    if kind == "r":
        members: dict[str, Any] = {}
        for member in element:
            key = member.get("n", "")
            if not key:
                raise MarshallingError("terse struct member missing n= name")
            members[key] = decode_value_terse(member)
        return members
    raise MarshallingError(f"unknown terse type code {kind!r}")


def build_request_terse(operation: str, args: list[Any]) -> bytes:
    """Terse request: ``<E><Q n="op"><v .../>...</Q></E>``."""
    if not is_xml_name(operation):
        raise SoapError(f"operation name {operation!r} is not a valid XML name")
    writer = _borrow_writer(declaration=False)
    try:
        writer.open(TERSE_ROOT)
        writer.open("Q", {"n": operation})
        for value in args:
            encode_value_terse(writer, value)
        writer.close()
        writer.close()
        return writer.tobytes()
    finally:
        _release_writer(writer)


def build_response_terse(operation: str, value: Any) -> bytes:
    """Terse response: ``<E><R n="op"><v .../></R></E>``."""
    if not is_xml_name(operation):
        raise SoapError(f"operation name {operation!r} is not a valid XML name")
    writer = _borrow_writer(declaration=False)
    try:
        writer.open(TERSE_ROOT)
        writer.open("R", {"n": operation})
        encode_value_terse(writer, value)
        writer.close()
        writer.close()
        return writer.tobytes()
    finally:
        _release_writer(writer)


def build_fault_terse(faultcode: str, faultstring: str, detail: str = "") -> bytes:
    """Terse fault: ``<E><F c=... s=... d=.../></E>``."""
    writer = _borrow_writer(declaration=False)
    try:
        writer.open(TERSE_ROOT)
        attrs = {"c": faultcode, "s": faultstring}
        if detail:
            attrs["d"] = detail
        writer.leaf("F", attrs)
        writer.close()
        return writer.tobytes()
    finally:
        _release_writer(writer)


def _parse_terse(root: ET.Element) -> SoapMessage:
    entries = list(root)
    if not entries:
        raise SoapError("terse envelope is empty")
    entry = entries[0]
    if entry.tag == "F":
        return SoapMessage(
            kind="fault",
            faultcode=entry.get("c", "SOAP-ENV:Server"),
            faultstring=entry.get("s", ""),
            detail=entry.get("d", ""),
            wire_format="terse",
        )
    operation = entry.get("n", "")
    if not operation:
        raise SoapError("terse envelope entry missing n= operation name")
    if entry.tag == "R":
        value_elements = list(entry)
        value = decode_value_terse(value_elements[0]) if value_elements else None
        return SoapMessage(
            kind="response", operation=operation, value=value, wire_format="terse"
        )
    if entry.tag == "Q":
        args = [decode_value_terse(child) for child in entry]
        return SoapMessage(
            kind="request", operation=operation, args=args, wire_format="terse"
        )
    raise SoapError(f"unknown terse entry {entry.tag!r}")


# ---------------------------------------------------------------------------
# Event-channel grammar (push event interchange)
# ---------------------------------------------------------------------------
#
# Two message shapes ride the negotiated ``events-push`` channel, both under
# the terse root so the wire sniffer classifies them as fast-path traffic:
#
# - wait (subscriber -> publisher): ``<E><W i="island" a="ack" h="hold"/></E>``
#   — arm a held exchange.  ``a`` acknowledges the highest batch id the
#   subscriber has fully delivered; ``h`` is the longest the publisher may
#   park the exchange before answering with an empty keepalive frame.
# - frame (publisher -> subscriber): ``<E><V b="batch"><v .../>...</V></E>``
#   — one coalesced batch of events (terse-encoded structs).  ``b`` is the
#   publisher's per-subscriber batch id; an empty ``<V b="...">`` is a
#   keepalive carrying nothing new.


def build_event_wait(island: str, ack: int, hold: float) -> bytes:
    """Wait request: ``<E><W i="island" a="ack" h="hold"/></E>``."""
    writer = _borrow_writer(declaration=False)
    try:
        writer.open(TERSE_ROOT)
        writer.leaf("W", {"i": island, "a": str(int(ack)), "h": repr(float(hold))})
        writer.close()
        return writer.tobytes()
    finally:
        _release_writer(writer)


def parse_event_wait(data: bytes) -> tuple[str, int, float]:
    """Inverse of :func:`build_event_wait` -> ``(island, ack, hold)``."""
    root = xmlutil.parse_document(data)
    if root.tag != TERSE_ROOT:
        raise SoapError(f"event wait root is {root.tag!r}, not <{TERSE_ROOT}>")
    entries = list(root)
    if not entries or entries[0].tag != "W":
        raise SoapError("event wait envelope carries no <W> entry")
    entry = entries[0]
    island = entry.get("i", "")
    if not island:
        raise SoapError("event wait missing i= subscriber island")
    try:
        ack = int(entry.get("a", "0"))
        hold = float(entry.get("h", "0"))
    except ValueError as exc:
        raise SoapError(f"bad event wait attributes: {exc}") from exc
    return island, ack, hold


def build_event_frame(batch: int, events: list[Any]) -> bytes:
    """Event frame: ``<E><V b="batch">`` + one terse value per event."""
    writer = _borrow_writer(declaration=False)
    try:
        writer.open(TERSE_ROOT)
        writer.open("V", {"b": str(int(batch))})
        for event in events:
            encode_value_terse(writer, event)
        writer.close()
        writer.close()
        return writer.tobytes()
    finally:
        _release_writer(writer)


def parse_event_frame(data: bytes) -> tuple[int, list[Any]]:
    """Inverse of :func:`build_event_frame` -> ``(batch, events)``."""
    root = xmlutil.parse_document(data)
    if root.tag != TERSE_ROOT:
        raise SoapError(f"event frame root is {root.tag!r}, not <{TERSE_ROOT}>")
    entries = list(root)
    if not entries or entries[0].tag != "V":
        raise SoapError("event frame envelope carries no <V> entry")
    entry = entries[0]
    try:
        batch = int(entry.get("b", "0"))
    except ValueError as exc:
        raise SoapError(f"bad event frame batch id: {exc}") from exc
    return batch, [decode_value_terse(child) for child in entry]


# ---------------------------------------------------------------------------
# Envelope parsing
# ---------------------------------------------------------------------------


def parse_envelope(data: bytes) -> SoapMessage:
    """Parse any envelope shape produced above, verbose or terse."""
    root = xmlutil.parse_document(data)
    if root.tag == TERSE_ROOT:
        return _parse_terse(root)
    if root.tag != xmlutil.qname(SOAP_ENV_NS, "Envelope"):
        raise SoapError(f"root element is {root.tag!r}, not a SOAP Envelope")
    body = xmlutil.require_child(root, SOAP_ENV_NS, "Body")
    entries = list(body)
    if not entries:
        raise SoapError("SOAP Body is empty")
    entry = entries[0]

    if entry.tag == xmlutil.qname(SOAP_ENV_NS, "Fault"):
        fields = {local_name(child): (child.text or "") for child in entry}
        return SoapMessage(
            kind="fault",
            faultcode=fields.get("faultcode", "SOAP-ENV:Server"),
            faultstring=fields.get("faultstring", ""),
            detail=fields.get("detail", ""),
        )

    name = local_name(entry)
    if name.endswith("Response"):
        operation = name[: -len("Response")]
        value_elements = list(entry)
        value = decode_value(value_elements[0]) if value_elements else None
        return SoapMessage(kind="response", operation=operation, value=value)

    args = [decode_value(child) for child in entry]
    return SoapMessage(kind="request", operation=name, args=args)


def sniff_wire_format(data: bytes) -> str:
    """Cheaply classify an envelope as ``"terse"`` or ``"verbose"``
    without parsing it — tracing/metrics label wire bytes by format, and a
    full :func:`parse_envelope` just for a label would dwarf the payload
    cost.  Terse envelopes start directly at ``<E>`` (they never carry an
    XML declaration); everything else is treated as verbose."""
    head = data.lstrip()[:3]
    return "terse" if head == b"<%s>" % TERSE_ROOT.encode("ascii") else "verbose"
