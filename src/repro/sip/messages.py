"""SIP message grammar (RFC 2543-flavoured subset).

Requests carry a method (MESSAGE, SUBSCRIBE, NOTIFY), a request-URI like
``sip:jini@backbone/2:5060``, headers, and a body.  Responses carry a
status code and reason.  Both serialise to the textual wire format.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SipError
from repro.net.addressing import NodeAddress

_CRLF = "\r\n"
SIP_VERSION = "SIP/2.0"

METHODS = ("MESSAGE", "SUBSCRIBE", "NOTIFY", "OPTIONS")

REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    500: "Server Internal Error",
    501: "Not Implemented",
}


def make_uri(user: str, address: NodeAddress, port: int) -> str:
    """Render ``sip:user@segment/host:port``."""
    return f"sip:{user}@{address}:{port}"


def parse_uri(uri: str) -> tuple[str, NodeAddress, int]:
    """Inverse of :func:`make_uri` → (user, address, port)."""
    if not uri.startswith("sip:"):
        raise SipError(f"not a SIP URI: {uri!r}")
    rest = uri[len("sip:") :]
    user, sep, hostport = rest.partition("@")
    if not sep:
        raise SipError(f"SIP URI lacks a user part: {uri!r}")
    host, sep, port_text = hostport.rpartition(":")
    if not sep or not port_text.isdigit():
        raise SipError(f"SIP URI lacks a port: {uri!r}")
    try:
        address = NodeAddress.parse(host)
    except ValueError as exc:
        raise SipError(str(exc)) from exc
    return user, address, int(port_text)


@dataclass
class SipMessage:
    """Fields shared by requests and responses."""

    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def header(self, name: str, default: str = "") -> str:
        for key, value in self.headers.items():
            if key.lower() == name.lower():
                return value
        return default

    @property
    def cseq(self) -> int:
        value = self.header("CSeq", "0")
        number = value.split(" ", 1)[0]
        return int(number) if number.isdigit() else 0

    def _render(self, start_line: str) -> bytes:
        headers = dict(self.headers)
        headers.setdefault("Content-Length", str(len(self.body)))
        lines = [start_line]
        lines += [f"{key}: {value}" for key, value in headers.items()]
        head = _CRLF.join(lines) + _CRLF + _CRLF
        return head.encode("utf-8") + self.body


@dataclass
class SipRequest(SipMessage):
    """A SIP request (method + request-URI)."""

    method: str = "MESSAGE"
    uri: str = ""

    def __post_init__(self) -> None:
        if self.method not in METHODS:
            raise SipError(f"unsupported SIP method {self.method!r}")

    def to_bytes(self) -> bytes:
        return self._render(f"{self.method} {self.uri} {SIP_VERSION}")


@dataclass
class SipResponse(SipMessage):
    """A SIP response (status + reason)."""

    status: int = 200
    reason: str = ""

    def __post_init__(self) -> None:
        if not self.reason:
            self.reason = REASONS.get(self.status, "Unknown")

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def to_bytes(self) -> bytes:
        return self._render(f"{SIP_VERSION} {self.status} {self.reason}")


def parse_message(data: bytes) -> SipRequest | SipResponse:
    """Parse one datagram into a request or response."""
    try:
        head, _, body = data.partition(b"\r\n\r\n")
        text = head.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise SipError(f"undecodable SIP message: {exc}") from exc
    lines = text.split(_CRLF)
    if not lines or not lines[0]:
        raise SipError("empty SIP message")
    start = lines[0]
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise SipError(f"malformed SIP header {line!r}")
        headers[name.strip()] = value.strip()
    length_text = headers.get("Content-Length", str(len(body)))
    if not length_text.isdigit():
        raise SipError("bad Content-Length")
    body = body[: int(length_text)]

    if start.startswith(SIP_VERSION + " "):
        parts = start.split(" ", 2)
        if len(parts) < 3 or not parts[1].isdigit():
            raise SipError(f"malformed status line {start!r}")
        return SipResponse(
            status=int(parts[1]), reason=parts[2], headers=headers, body=body
        )
    parts = start.split(" ")
    if len(parts) != 3 or parts[2] != SIP_VERSION:
        raise SipError(f"malformed request line {start!r}")
    return SipRequest(method=parts[0], uri=parts[1], headers=headers, body=body)
