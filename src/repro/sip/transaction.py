"""SIP transaction layer over UDP.

Client transactions retransmit with doubling timers (T1 = 0.5 s, giving up
after four attempts with a local 408); server transactions absorb
retransmissions by caching the response per branch id.  This is what makes
SIP usable on plain datagrams where SOAP needed a whole TCP connection —
half of the paper's "SIP may be more suitable" argument.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SipError
from repro.net.addressing import NodeAddress
from repro.net.simkernel import Event, SimFuture
from repro.net.transport import TransportStack
from repro.sip.messages import (
    SipRequest,
    SipResponse,
    parse_message,
)

DEFAULT_SIP_PORT = 5060
T1 = 0.5
MAX_ATTEMPTS = 4
_BRANCH_MAGIC = "z9hG4bK"
_SERVER_CACHE_LIMIT = 256

#: Inbound request handler: returns a SipResponse or a SimFuture of one.
RequestHandler = Callable[[SipRequest, NodeAddress, int], "SipResponse | SimFuture"]


class SipTransactionLayer:
    """One UDP port's worth of SIP transactions."""

    def __init__(self, stack: TransportStack, port: int = DEFAULT_SIP_PORT) -> None:
        self.stack = stack
        self.sim = stack.sim
        self.port = port
        self._socket = stack.udp_socket(port)
        self._socket.on_datagram(self._on_datagram)
        self.on_request: RequestHandler | None = None
        self._branch_counter = 0
        self._cseq_counter = 0
        self._pending: dict[str, dict] = {}
        self._server_cache: dict[str, bytes] = {}
        self.requests_sent = 0
        self.responses_sent = 0
        self.retransmissions = 0

    def close(self) -> None:
        for entry in self._pending.values():
            entry["timer"].cancel()
        self._pending.clear()
        self._socket.close()

    # -- client side ------------------------------------------------------------

    def send_request(
        self, dst: NodeAddress, dst_port: int, request: SipRequest
    ) -> SimFuture:
        """Send with retransmission; resolves to the :class:`SipResponse`
        (or a locally generated 408 on timeout)."""
        self._branch_counter += 1
        self._cseq_counter += 1
        # The branch must be unique across *every* client on the network
        # (RFC 3261's magic-cookie rule): embed our address, or a peer's
        # server-transaction cache would absorb another client's first
        # request as a retransmission of ours.
        local = str(self.stack.local_address()).replace("/", ".")
        branch = f"{_BRANCH_MAGIC}-{local}-{self.port}-{self._branch_counter}"
        request.headers["Via"] = (
            f"SIP/2.0/UDP {self.stack.local_address()}:{self.port};branch={branch}"
        )
        request.headers.setdefault("CSeq", f"{self._cseq_counter} {request.method}")
        data = request.to_bytes()
        future: SimFuture = SimFuture()
        entry = {
            "future": future,
            "data": data,
            "dst": dst,
            "dst_port": dst_port,
            "attempts": 1,
            "timer": None,
        }
        self._pending[branch] = entry
        self.requests_sent += 1
        self._socket.sendto(dst, dst_port, data)
        entry["timer"] = self.sim.schedule(T1, self._retransmit, branch, T1)
        return future

    def _retransmit(self, branch: str, interval: float) -> None:
        entry = self._pending.get(branch)
        if entry is None:
            return
        if entry["attempts"] >= MAX_ATTEMPTS:
            del self._pending[branch]
            entry["future"].set_result(
                SipResponse(status=408, headers={"Branch": branch})
            )
            return
        entry["attempts"] += 1
        self.retransmissions += 1
        self._socket.sendto(entry["dst"], entry["dst_port"], entry["data"])
        entry["timer"] = self.sim.schedule(
            interval * 2, self._retransmit, branch, interval * 2
        )

    # -- datagram dispatch ----------------------------------------------------------

    def _on_datagram(self, src: NodeAddress, src_port: int, data: bytes) -> None:
        try:
            message = parse_message(data)
        except SipError:
            return  # drop garbage, like a real stack
        if isinstance(message, SipResponse):
            self._handle_response(message)
        else:
            self._handle_request(message, src, src_port)

    def _handle_response(self, response: SipResponse) -> None:
        branch = _branch_of(response.header("Via"))
        entry = self._pending.pop(branch, None)
        if entry is None:
            return  # late retransmitted response
        entry["timer"].cancel()
        entry["future"].set_result(response)

    def _handle_request(self, request: SipRequest, src: NodeAddress, src_port: int) -> None:
        branch = _branch_of(request.header("Via"))
        cached = self._server_cache.get(branch)
        if cached is not None:
            self._socket.sendto(src, src_port, cached)  # absorbed retransmission
            return
        if self.on_request is None:
            self._reply(request, src, src_port, SipResponse(status=501), branch)
            return
        try:
            outcome = self.on_request(request, src, src_port)
        except SipError as exc:
            self._reply(
                request, src, src_port, SipResponse(status=400, reason=str(exc)), branch
            )
            return
        except Exception as exc:  # handler bug must not kill the stack
            self._reply(
                request, src, src_port, SipResponse(status=500, reason=str(exc)), branch
            )
            return
        if isinstance(outcome, SimFuture):
            def on_done(future: SimFuture) -> None:
                exc = future.exception()
                if exc is not None:
                    response = SipResponse(status=500, reason=str(exc))
                else:
                    response = future.result()
                self._reply(request, src, src_port, response, branch)

            outcome.add_done_callback(on_done)
        else:
            self._reply(request, src, src_port, outcome, branch)

    def _reply(
        self,
        request: SipRequest,
        src: NodeAddress,
        src_port: int,
        response: SipResponse,
        branch: str,
    ) -> None:
        response.headers.setdefault("Via", request.header("Via"))
        response.headers.setdefault("CSeq", request.header("CSeq"))
        data = response.to_bytes()
        if branch:
            if len(self._server_cache) >= _SERVER_CACHE_LIMIT:
                self._server_cache.clear()
            self._server_cache[branch] = data
        self.responses_sent += 1
        self._socket.sendto(src, src_port, data)


def _branch_of(via: str) -> str:
    _, _, branch = via.partition("branch=")
    return branch.split(";")[0].strip()
