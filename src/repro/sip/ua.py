"""SIP user agent: MESSAGE exchanges plus SUBSCRIBE/NOTIFY eventing.

The asymmetry with HTTP is the whole point (paper Sections 4.2 and 5): a
user agent is *both* client and server on one UDP port, so a remote peer
can push a NOTIFY at any time — no polling, no connection state.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SipError
from repro.net.addressing import NodeAddress
from repro.net.simkernel import SimFuture
from repro.net.transport import TransportStack
from repro.sip.messages import SipRequest, SipResponse, make_uri, parse_uri
from repro.sip.transaction import DEFAULT_SIP_PORT, SipTransactionLayer

#: MESSAGE handler: (user part of the URI, request) -> (status, body bytes)
#: or a SimFuture of that tuple.
MessageHandler = Callable[[str, SipRequest], Any]
#: NOTIFY callback: (event name, body bytes, source address).
NotifyCallback = Callable[[str, bytes, NodeAddress], None]


class SipUserAgent:
    """One node's SIP presence."""

    def __init__(
        self,
        stack: TransportStack,
        port: int = DEFAULT_SIP_PORT,
        accept_subscriptions: bool = True,
    ) -> None:
        self.stack = stack
        self.sim = stack.sim
        self.port = port
        self.transactions = SipTransactionLayer(stack, port)
        self.transactions.on_request = self._dispatch
        self.accept_subscriptions = accept_subscriptions
        self._message_handler: MessageHandler | None = None
        self._notify_callbacks: dict[str, list[NotifyCallback]] = {}
        #: event -> {(address, port)} of remote subscribers.
        self.subscribers: dict[str, set[tuple[NodeAddress, int]]] = {}
        self.notifies_sent = 0
        self.notifies_received = 0

    @property
    def address(self) -> NodeAddress:
        return self.stack.local_address()

    def uri(self, user: str) -> str:
        return make_uri(user, self.address, self.port)

    def close(self) -> None:
        self.transactions.close()

    # -- MESSAGE ------------------------------------------------------------

    def on_message(self, handler: MessageHandler) -> None:
        self._message_handler = handler

    def send_message(
        self,
        target_uri: str,
        body: bytes,
        headers: dict[str, str] | None = None,
    ) -> SimFuture:
        """Send a MESSAGE to ``sip:user@addr:port``; resolves to the
        :class:`SipResponse`."""
        user, address, port = parse_uri(target_uri)
        request = SipRequest(
            method="MESSAGE",
            uri=target_uri,
            headers={"Content-Type": "text/xml", **(headers or {})},
            body=body,
        )
        return self.transactions.send_request(address, port, request)

    # -- SUBSCRIBE / NOTIFY -----------------------------------------------------

    def subscribe(self, target_uri: str, event: str) -> SimFuture:
        """Ask the remote UA to NOTIFY us about ``event``."""
        user, address, port = parse_uri(target_uri)
        request = SipRequest(
            method="SUBSCRIBE",
            uri=target_uri,
            headers={"Event": event, "Contact": self.uri("ua")},
        )
        return self.transactions.send_request(address, port, request)

    def on_event(self, event: str, callback: NotifyCallback) -> None:
        """Handle inbound NOTIFYs for ``event``."""
        self._notify_callbacks.setdefault(event, []).append(callback)

    def publish(self, event: str, body: bytes) -> int:
        """NOTIFY every subscriber of ``event``; returns how many."""
        targets = self.subscribers.get(event, set())
        for address, port in targets:
            self._send_notify(address, port, event, body)
        return len(targets)

    def _send_notify(self, address: NodeAddress, port: int, event: str, body: bytes) -> None:
        request = SipRequest(
            method="NOTIFY",
            uri=make_uri("ua", address, port),
            headers={"Event": event, "Content-Type": "application/octet-stream"},
            body=body,
        )
        self.notifies_sent += 1
        future = self.transactions.send_request(address, port, request)
        future.add_done_callback(lambda f: f.exception())  # fire and forget

    # -- inbound dispatch ------------------------------------------------------------

    def _dispatch(self, request: SipRequest, src: NodeAddress, src_port: int):
        if request.method == "MESSAGE":
            return self._dispatch_message(request)
        if request.method == "SUBSCRIBE":
            return self._dispatch_subscribe(request, src)
        if request.method == "NOTIFY":
            return self._dispatch_notify(request, src)
        if request.method == "OPTIONS":
            return SipResponse(status=200)
        return SipResponse(status=405)

    def _dispatch_message(self, request: SipRequest):
        if self._message_handler is None:
            return SipResponse(status=404, reason="no message handler")
        user, _, _ = parse_uri(request.uri)
        outcome = self._message_handler(user, request)
        if isinstance(outcome, SimFuture):
            pending: SimFuture = SimFuture()

            def on_done(future: SimFuture) -> None:
                exc = future.exception()
                if exc is not None:
                    pending.set_result(SipResponse(status=500, reason=str(exc)))
                    return
                status, body = future.result()
                pending.set_result(SipResponse(status=status, body=body))

            outcome.add_done_callback(on_done)
            return pending
        status, body = outcome
        return SipResponse(status=status, body=body)

    def _dispatch_subscribe(self, request: SipRequest, src: NodeAddress):
        if not self.accept_subscriptions:
            return SipResponse(status=405)
        event = request.header("Event")
        if not event:
            raise SipError("SUBSCRIBE without an Event header")
        contact = request.header("Contact")
        if contact:
            _, address, port = parse_uri(contact)
        else:
            address, port = src, DEFAULT_SIP_PORT
        self.subscribers.setdefault(event, set()).add((address, port))
        return SipResponse(status=202)

    def _dispatch_notify(self, request: SipRequest, src: NodeAddress):
        event = request.header("Event")
        self.notifies_received += 1
        for callback in self._notify_callbacks.get(event, []):
            callback(event, request.body, src)
        return SipResponse(status=200)
