"""SIP-style substrate — the alternative VSG protocol the paper discusses.

Related work (Section 5): "SIP allows abstract naming ... supports
asynchronous calls and call forwarding which is not supported by HTTP ...
SIP may be more suitable than other protocols such as HTTP for service
integration."  This package implements the subset needed to *test* that
claim: a textual request/response grammar, a UDP transaction layer with
retransmission, and a user agent offering MESSAGE (request/response) and
SUBSCRIBE/NOTIFY (asynchronous push) — then
:mod:`repro.core.gateway_sip` binds it as a gateway protocol so experiment
C3/A2 can compare SOAP-polling with SIP-push on identical workloads.
"""

from repro.sip.messages import SipMessage, SipRequest, SipResponse
from repro.sip.transaction import SipTransactionLayer
from repro.sip.ua import SipUserAgent

__all__ = [
    "SipMessage",
    "SipRequest",
    "SipResponse",
    "SipTransactionLayer",
    "SipUserAgent",
]
