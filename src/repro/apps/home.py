"""Canned smart-home topology.

Builds the home of the paper's Section 1 example: "a HAVi-based IEEE1394
network connecting a digital TV and VCR, a Jini-based Ethernet network
connecting a refrigerator and an air conditioner" — plus the X10 powerline
with lamps, sensors and the handset of Figure 5, and the Internet Mail
island of Figure 3.  Everything bridged by one MetaMiddleware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.net.network import Network
from repro.net.segment import (
    EthernetSegment,
    IEEE1394Segment,
    PowerlineSegment,
    SerialLink,
)
from repro.net.simkernel import Simulator
from repro.net.transport import TransportStack
from repro.core.framework import Island, MetaMiddleware
from repro.core.vsg import GatewayProtocol
from repro.devices.appliances import AirConditioner, Refrigerator
from repro.devices.av import Laserdisc, NetworkVcr
from repro.havi.bus1394 import Bus1394, HaviNode
from repro.havi.dcm import Dcm
from repro.havi.fcm_types import CameraFcm, DisplayFcm, TunerFcm, VcrFcm
from repro.havi.messaging import REGISTRY_LOCAL_ID, Seid
from repro.havi.registry import Registry, RegistryClient
from repro.havi.streams import StreamManager
from repro.jini.lookup import LookupService
from repro.jini.service import JiniHost, JiniService
from repro.mail.mailbox import MailServer
from repro.pcms.havi_pcm import HaviPcm
from repro.pcms.jini_pcm import JiniPcm
from repro.pcms.mail_pcm import MailPcm
from repro.pcms.x10_pcm import X10DeviceInfo, X10Pcm
from repro.x10.cm11a import Cm11aInterface
from repro.x10.codes import X10Address
from repro.x10.controller import X10Controller
from repro.x10.devices import ApplianceModule, LampModule, MotionSensor, RemoteHandset


@dataclass
class SmartHome:
    """Handles to every part of the built home."""

    sim: Simulator
    network: Network
    mm: MetaMiddleware
    islands: dict[str, Island] = field(default_factory=dict)
    # Jini island.
    lookup: LookupService | None = None
    laserdisc: Laserdisc | None = None
    vcr: NetworkVcr | None = None
    refrigerator: Refrigerator | None = None
    air_conditioner: AirConditioner | None = None
    jini_services: dict[str, JiniService] = field(default_factory=dict)
    # HAVi island.
    bus: Bus1394 | None = None
    havi_registry: Registry | None = None
    tv_display: DisplayFcm | None = None
    tv_tuner: TunerFcm | None = None
    camera: CameraFcm | None = None
    camera_vcr: VcrFcm | None = None
    stream_manager: StreamManager | None = None
    # X10 island.
    cm11a: Cm11aInterface | None = None
    controller: X10Controller | None = None
    lamps: dict[str, LampModule] = field(default_factory=dict)
    fan: ApplianceModule | None = None
    motion_sensor: MotionSensor | None = None
    handset: RemoteHandset | None = None
    # Mail island.
    mail_server: MailServer | None = None

    def connect(self) -> list:
        """Run the framework's integration sequence to completion."""
        return self.sim.run_until_complete(self.mm.connect())

    def run(self, duration: float) -> None:
        self.sim.run_for(duration)

    def island(self, name: str) -> Island:
        return self.mm.island(name)

    def invoke_from(self, island: str, service: str, operation: str, args: list[Any] | None = None):
        """Synchronously invoke a neutral call from one island's gateway."""
        future = self.island(island).gateway.invoke(service, operation, list(args or []))
        return self.sim.run_until_complete(future)

    def find_services(self, **context: str) -> list:
        """Context-aware VSR query (paper Sec. 3.3: the repository holds
        'service contexts' — room, middleware, device kind ...), e.g.
        ``home.find_services(room="living")``."""
        any_island = next(iter(self.islands.values()))
        return self.sim.run_until_complete(any_island.gateway.vsr.find(context))


def build_smart_home(
    sim: Simulator | None = None,
    with_jini: bool = True,
    with_havi: bool = True,
    with_x10: bool = True,
    with_mail: bool = True,
    poll_interval: float = 2.0,
    protocol_factory=None,
    policy=None,
    obs=None,
    interchange=None,
) -> SmartHome:
    """Assemble the full topology (not yet connected — call ``.connect()``).

    ``protocol_factory`` overrides the gateway protocol for every island
    (``TransportStack -> GatewayProtocol``); the default is the prototype's
    SOAP binding.  ``policy`` (a :class:`repro.core.resilience.CallPolicy`)
    sets every island's resilience knobs — deadlines, retries, breaker.
    ``obs`` (a :class:`repro.obs.Observability`) turns on tracing/metrics
    for every island; the default records nothing.  ``interchange`` (an
    :class:`repro.soap.http.InterchangeConfig`) sets every SOAP island's
    fast-path config — e.g. :data:`repro.soap.http.PUSH_INTERCHANGE` for
    streamed event channels.
    """
    sim = sim or Simulator()
    network = Network(sim)
    backbone = network.create_segment(EthernetSegment, "backbone")
    mm = MetaMiddleware(
        network, backbone, policy=policy, obs=obs, interchange=interchange
    )
    home = SmartHome(sim=sim, network=network, mm=mm)

    if with_jini:
        _build_jini_island(home, mm, network, poll_interval, protocol_factory)
    if with_havi:
        _build_havi_island(home, mm, network, poll_interval, protocol_factory)
    if with_x10:
        _build_x10_island(home, mm, network, poll_interval, protocol_factory)
    if with_mail:
        _build_mail_island(home, mm, network, poll_interval, protocol_factory)
    return home


def _build_jini_island(home, mm, network, poll_interval, protocol_factory) -> None:
    sim = network.sim
    segment = network.create_segment(EthernetSegment, "jini-eth")

    lus_host = JiniHost(network, "jini-lus", segment)
    home.lookup = LookupService(lus_host.runtime, segment)
    lookup_ref = home.lookup.ref

    home.laserdisc = Laserdisc()
    home.vcr = NetworkVcr()
    home.refrigerator = Refrigerator()
    home.air_conditioner = AirConditioner()
    devices = {
        "Laserdisc": (home.laserdisc, "living"),
        "Vcr": (home.vcr, "living"),
        "Refrigerator": (home.refrigerator, "kitchen"),
        "AirConditioner": (home.air_conditioner, "living"),
    }
    for name, (impl, room) in devices.items():
        host = JiniHost(network, f"jini-{name.lower()}", segment)
        service = JiniService(
            host,
            impl,
            interfaces=(impl.JINI_INTERFACE,),
            attributes={"name": name, "ops": impl.JINI_OPS, "room": room},
        )
        sim.run_until_complete(service.publish(lookup_ref, duration=120.0))
        home.jini_services[name] = service

    def pcm_factory(island: Island) -> JiniPcm:
        host = JiniHost.adopt(network, island.node, island.stack, segment)
        return JiniPcm(island.gateway, host, lookup_ref)

    home.islands["jini"] = mm.add_island(
        "jini", segment, pcm_factory,
        protocol_factory=protocol_factory, poll_interval=poll_interval,
    )


def _build_havi_island(home, mm, network, poll_interval, protocol_factory) -> None:
    sim = network.sim
    segment = network.create_segment(IEEE1394Segment, "havi-1394")
    home.bus = Bus1394(network, segment)

    tv_node = HaviNode(network, "havi-tv", home.bus)
    home.havi_registry = Registry(tv_node)
    tv_dcm = Dcm(tv_node, "Digital_TV", "display", room="living")
    home.tv_display = DisplayFcm(tv_dcm)
    home.tv_tuner = TunerFcm(tv_dcm)

    cam_node = HaviNode(network, "havi-camera", home.bus)
    cam_dcm = Dcm(cam_node, "DV_Camera", "camcorder", room="hall")
    home.camera = CameraFcm(cam_dcm)
    home.camera_vcr = VcrFcm(cam_dcm)

    home.stream_manager = StreamManager(home.bus)

    sim.run_until_complete(tv_dcm.register(RegistryClient.for_bus(tv_node, tv_node)))
    sim.run_until_complete(cam_dcm.register(RegistryClient.for_bus(cam_node, tv_node)))

    registry_guid = tv_node.guid

    def pcm_factory(island: Island) -> HaviPcm:
        havi_node = HaviNode.adopt(network, island.node, home.bus)
        registry_client = RegistryClient(
            havi_node.messaging, Seid(registry_guid, REGISTRY_LOCAL_ID)
        )
        return HaviPcm(island.gateway, havi_node, registry_client)

    home.islands["havi"] = mm.add_island(
        "havi", segment, pcm_factory,
        protocol_factory=protocol_factory, poll_interval=poll_interval,
    )


def _build_x10_island(home, mm, network, poll_interval, protocol_factory) -> None:
    powerline = network.create_segment(PowerlineSegment, "powerline")
    serial = network.create_segment(SerialLink, "serial0")

    home.cm11a = Cm11aInterface(network, "cm11a", serial, powerline)
    home.lamps["hall"] = LampModule(network, "hall-lamp", powerline, X10Address("A", 1))
    home.lamps["porch"] = LampModule(network, "porch-lamp", powerline, X10Address("A", 2))
    home.fan = ApplianceModule(network, "fan", powerline, X10Address("A", 3))
    home.motion_sensor = MotionSensor(network, "hall-pir", powerline, X10Address("A", 9))
    home.handset = RemoteHandset(network, "handset", powerline)

    device_map = [
        X10DeviceInfo(X10Address("A", 1), "hall_lamp", "lamp", room="hall"),
        X10DeviceInfo(X10Address("A", 2), "porch_lamp", "lamp", room="porch"),
        X10DeviceInfo(X10Address("A", 3), "fan", "appliance", room="living"),
        X10DeviceInfo(X10Address("A", 9), "hall_pir", "sensor", room="hall"),
    ]

    def pcm_factory(island: Island) -> X10Pcm:
        home.controller = X10Controller(network, island.node, serial)
        return X10Pcm(island.gateway, home.controller, device_map)

    home.islands["x10"] = mm.add_island(
        "x10", None, pcm_factory,
        protocol_factory=protocol_factory, poll_interval=poll_interval,
    )


def add_upnp_island(
    home: SmartHome,
    poll_interval: float = 2.0,
    protocol_factory=None,
) -> Island:
    """Join a UPnP island to an already built home — the experiment-C5
    'new middleware participates effortlessly' path.

    Creates an Ethernet segment with two stock UPnP devices (a binary
    light and a media renderer), adds the island with its one new PCM, and
    leaves calling ``home.mm.refresh()`` (or ``home.connect()``) to the
    caller so the join cost is measurable.
    """
    from repro.pcms.upnp_pcm import UpnpPcm
    from repro.upnp.device import UpnpDevice

    network = home.network
    segment = network.create_segment(EthernetSegment, "upnp-eth")

    light = UpnpDevice(
        network, "upnp-light", segment,
        friendly_name="Porchlight", device_type="urn:schemas-repro:device:BinaryLight:1",
    )
    light_state = {"on": False}

    def set_target(value: bool) -> bool:
        light_state["on"] = bool(value)
        light.notify("SwitchPower", "Status", light_state["on"])
        return light_state["on"]

    light.add_service(
        "SwitchPower",
        {
            "SetTarget": (set_target, (("NewTargetValue", "boolean"),), "boolean"),
            "GetStatus": (lambda: light_state["on"], (), "boolean"),
        },
    )

    renderer = UpnpDevice(
        network, "upnp-renderer", segment,
        friendly_name="Renderer", device_type="urn:schemas-repro:device:MediaRenderer:1",
    )
    renderer_state = {"playing": False, "volume": 50}

    def play() -> bool:
        renderer_state["playing"] = True
        return True

    def stop() -> bool:
        renderer_state["playing"] = False
        return True

    def set_volume(volume: int) -> int:
        renderer_state["volume"] = max(0, min(100, int(volume)))
        return renderer_state["volume"]

    renderer.add_service(
        "AVTransport",
        {
            "Play": (play, (), "boolean"),
            "Stop": (stop, (), "boolean"),
            "SetVolume": (set_volume, (("DesiredVolume", "i4"),), "i4"),
        },
    )

    def pcm_factory(island: Island) -> UpnpPcm:
        return UpnpPcm(island.gateway, segment)

    island = home.mm.add_island(
        "upnp", segment, pcm_factory,
        protocol_factory=protocol_factory, poll_interval=poll_interval,
    )
    home.islands["upnp"] = island
    home.upnp_devices = {"light": light, "renderer": renderer}
    home.upnp_state = {"light": light_state, "renderer": renderer_state}
    return island


def _build_mail_island(home, mm, network, poll_interval, protocol_factory) -> None:
    mail_node = network.create_node("mailhost")
    network.attach(mail_node, mm.backbone)
    mail_stack = TransportStack(mail_node, network)
    home.mail_server = MailServer(mail_stack, domain="home.sim")
    mail_address = mail_stack.local_address(mm.backbone)

    def pcm_factory(island: Island) -> MailPcm:
        return MailPcm(island.gateway, mail_address)

    home.islands["mail"] = mm.add_island(
        "mail", None, pcm_factory,
        protocol_factory=protocol_factory, poll_interval=poll_interval,
    )
