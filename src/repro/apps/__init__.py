"""The paper's applications, as library code.

- :mod:`repro.apps.home` — builds the canned smart-home topology of the
  paper's Section 1 example (Jini Ethernet + HAVi IEEE1394 + X10 powerline
  + Internet mail, all bridged), used by every example and benchmark.
- :mod:`repro.apps.universal_remote` — the Universal Remote Controller of
  Figure 5.
- :mod:`repro.apps.auto_recording` — the Section 2 automatic video
  recording integration (Internet TV-program service + VCR).
- :mod:`repro.apps.multimedia` — the Section 4.2 event-based multimedia
  system, including the negative result it reproduces.
- :mod:`repro.apps.automation` — the canned trigger→condition→action
  scenarios on the :mod:`repro.rules` engine (scenes, presence AV
  routing, mail notification, scheduled shutdown, degraded fallback).
"""

from repro.apps.auto_recording import RecordingAgent, TvProgramService
from repro.apps.automation import HomeAutomation, canned_scenarios
from repro.apps.home import SmartHome, add_upnp_island, build_smart_home
from repro.apps.multimedia import MultimediaOrchestrator
from repro.apps.scenes import SceneController
from repro.apps.universal_remote import UniversalRemote

__all__ = [
    "HomeAutomation",
    "MultimediaOrchestrator",
    "RecordingAgent",
    "SceneController",
    "SmartHome",
    "TvProgramService",
    "UniversalRemote",
    "add_upnp_island",
    "build_smart_home",
    "canned_scenarios",
]
