"""Automatic video recording (paper Section 2).

"The service integration of a VCR control service with a TV program
service on the Internet can provide an automatic video recording service
that records TV programs according to user profiles on the Internet."

Two halves:

- :class:`TvProgramService` — the Internet side: a plain SOAP web service
  on the backbone serving an electronic program guide.  Because it is
  already SOAP — the VSG's own protocol — it needs *no PCM*: it simply
  publishes its WSDL into the VSR and every island can call it (this is
  the "integration with the most important service middleware on the
  Internet" of Section 2.2).
- :class:`RecordingAgent` — matches the guide against a user profile and
  drives the Jini VCR at the right virtual times, optionally mailing the
  user on completion through the mail island.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.net.simkernel import SimFuture
from repro.net.transport import TransportStack
from repro.soap.server import SoapServer
from repro.core.framework import MetaMiddleware
from repro.core.interface import simple_interface
from repro.core.vsr import VsrClient
from repro.apps.home import SmartHome

GUIDE_SERVICE = "TvProgramGuide"

#: A small default schedule; ``start``/``end`` are virtual seconds.
DEFAULT_PROGRAMS = [
    {"title": "Morning News", "channel": 1, "start": 60.0, "end": 120.0, "genre": "news"},
    {"title": "Cooking with Microwaves", "channel": 3, "start": 90.0, "end": 150.0, "genre": "cooking"},
    {"title": "Ubiquitous Computing Tonight", "channel": 5, "start": 180.0, "end": 260.0, "genre": "technology"},
    {"title": "Home Networking Special", "channel": 5, "start": 300.0, "end": 380.0, "genre": "technology"},
    {"title": "Evening Movie", "channel": 8, "start": 400.0, "end": 520.0, "genre": "movies"},
]


class TvProgramService:
    """The Internet TV program guide as a SOAP web service."""

    def __init__(
        self,
        mm: MetaMiddleware,
        programs: list[dict[str, Any]] | None = None,
        port: int = 8080,
    ) -> None:
        self.mm = mm
        self.programs = [dict(program) for program in (programs or DEFAULT_PROGRAMS)]
        network = mm.network
        self.node = network.create_node("tv-program-service")
        network.attach(self.node, mm.backbone)
        self.stack = TransportStack(self.node, network)
        self.soap = SoapServer(self.stack, port)
        self.soap.register_service(GUIDE_SERVICE, self._dispatch)
        self.port = port
        self.queries_served = 0

    def _dispatch(self, operation: str, args: list[Any]) -> Any:
        self.queries_served += 1
        if operation == "list_programs":
            return list(self.programs)
        if operation == "find_by_genre":
            genre = str(args[0])
            return [program for program in self.programs if program["genre"] == genre]
        if operation == "find_after":
            start = float(args[0])
            return [program for program in self.programs if program["start"] >= start]
        raise ValueError(f"{GUIDE_SERVICE} has no operation {operation!r}")

    def publish(self) -> SimFuture:
        """Register the guide's WSDL in the VSR so every island sees it."""
        interface = simple_interface(
            GUIDE_SERVICE,
            {
                "list_programs": ("->anyType",),
                "find_by_genre": ("string", "->anyType"),
                "find_after": ("double", "->anyType"),
            },
        )
        location = f"soap://{self.stack.local_address(self.mm.backbone)}:{self.port}/soap/{GUIDE_SERVICE}"
        document = interface.to_wsdl(
            location, {"island": "internet", "middleware": "soap", "protocol": "soap"}
        )
        client = VsrClient(self.stack, self.mm.directory_address, self.mm.directory_port)
        return client.publish(document)


@dataclass
class ScheduledRecording:
    """One planned recording."""

    title: str
    channel: int
    start: float
    end: float
    state: str = "scheduled"  # scheduled | recording | done | failed
    error: str = ""


@dataclass
class UserProfile:
    """The "user profiles on the Internet" of the paper's scenario."""

    genres: tuple[str, ...] = ("technology",)
    keywords: tuple[str, ...] = ()
    mail_to: str = ""

    def matches(self, program: dict[str, Any]) -> bool:
        if program.get("genre") in self.genres:
            return True
        title = str(program.get("title", "")).lower()
        return any(keyword.lower() in title for keyword in self.keywords)


class RecordingAgent:
    """Integrates the guide, the Jini VCR and (optionally) the mail island."""

    def __init__(
        self,
        home: SmartHome,
        profile: UserProfile,
        from_island: str = "jini",
        vcr_service: str = "Vcr",
    ) -> None:
        self.home = home
        self.profile = profile
        self.gateway = home.island(from_island).gateway
        self.vcr_service = vcr_service
        self.schedule: list[ScheduledRecording] = []
        self.mails_sent = 0

    def plan(self) -> SimFuture:
        """Query the guide, match the profile, arm virtual-time timers.
        Resolves to the list of :class:`ScheduledRecording`."""
        result: SimFuture = SimFuture()

        def on_programs(future: SimFuture) -> None:
            exc = future.exception()
            if exc is not None:
                result.set_exception(exc)
                return
            now = self.home.sim.now
            for program in future.result():
                if not self.profile.matches(program) or program["start"] <= now:
                    continue
                recording = ScheduledRecording(
                    title=str(program["title"]),
                    channel=int(program["channel"]),
                    start=float(program["start"]),
                    end=float(program["end"]),
                )
                self.schedule.append(recording)
                self.home.sim.at(recording.start, self._begin, recording)
                self.home.sim.at(recording.end, self._finish, recording)
            result.set_result(list(self.schedule))

        self.gateway.invoke(GUIDE_SERVICE, "list_programs", []).add_done_callback(on_programs)
        return result

    # -- timer callbacks ------------------------------------------------------------

    def _begin(self, recording: ScheduledRecording) -> None:
        def after_tune(future: SimFuture) -> None:
            if future.exception() is not None:
                recording.state = "failed"
                recording.error = f"tune: {future.exception()}"
                return
            start = self.gateway.invoke(self.vcr_service, "start_record", [recording.title])
            start.add_done_callback(after_start)

        def after_start(future: SimFuture) -> None:
            if future.exception() is not None:
                recording.state = "failed"
                recording.error = f"record: {future.exception()}"
            else:
                recording.state = "recording"

        self.gateway.invoke(
            self.vcr_service, "set_channel", [recording.channel]
        ).add_done_callback(after_tune)

    def _finish(self, recording: ScheduledRecording) -> None:
        if recording.state != "recording":
            return

        def after_stop(future: SimFuture) -> None:
            if future.exception() is not None:
                recording.state = "failed"
                recording.error = f"stop: {future.exception()}"
                return
            recording.state = "done"
            if self.profile.mail_to:
                self._mail_user(recording)

        self.gateway.invoke(self.vcr_service, "stop_record", []).add_done_callback(after_stop)

    def _mail_user(self, recording: ScheduledRecording) -> None:
        future = self.gateway.invoke(
            "InternetMail",
            "send",
            [
                self.profile.mail_to,
                f"Recorded: {recording.title}",
                f"Channel {recording.channel}, {recording.start:.0f}s-{recording.end:.0f}s.",
            ],
        )

        def on_sent(done: SimFuture) -> None:
            if done.exception() is None:
                self.mails_sent += 1

        future.add_done_callback(on_sent)

    # -- inspection ------------------------------------------------------------

    def completed(self) -> list[ScheduledRecording]:
        return [recording for recording in self.schedule if recording.state == "done"]

    def failed(self) -> list[ScheduledRecording]:
        return [recording for recording in self.schedule if recording.state == "failed"]
