"""Scene control — context-aware service integration.

The paper defines service integration as "making a new service from more
than one service cooperating with each other" (Section 2) and gives the
VSR "service contexts" for exactly this kind of selection (Section 3.3).
A scene is that new service: one command fans out to every matching
device, regardless of which middleware each lives on.

``SceneController.room_off("living")`` finds every service whose VSR
context says ``room=living`` and applies its natural "off" operation —
``power_off`` on the HAVi TV, ``turn_off`` on X10 modules, ``stop`` on the
Jini Laserdisc — through the ordinary neutral call path.
"""

from __future__ import annotations

from repro.net.simkernel import SimFuture
from repro.soap.wsdl import WsdlDocument
from repro.apps.home import SmartHome

#: Preference order of "switch it off" operations.
OFF_OPERATIONS = ("power_off", "turn_off", "stop", "stop_record", "stop_capture")
#: Preference order of "switch it on" operations.
ON_OPERATIONS = ("power_on", "turn_on", "play", "start_capture")


def _pick(document: WsdlDocument, candidates: tuple[str, ...]) -> str | None:
    for operation in candidates:
        if document.has_operation(operation):
            return operation
    return None


class SceneController:
    """Fans one command out across middleware by VSR context."""

    def __init__(self, home: SmartHome, from_island: str | None = None) -> None:
        self.home = home
        island_name = from_island or next(iter(home.islands))
        self.gateway = home.island(island_name).gateway
        self.actions_log: list[tuple[str, str, str]] = []

    # -- scenes ------------------------------------------------------------

    def room_off(self, room: str) -> int:
        """Switch off everything in ``room``; returns devices commanded."""
        return self._apply({"room": room}, OFF_OPERATIONS)

    def room_on(self, room: str) -> int:
        return self._apply({"room": room}, ON_OPERATIONS)

    def all_off(self) -> int:
        """'Leaving home': off everything that has an off operation."""
        return self._apply({}, OFF_OPERATIONS)

    def middleware_off(self, middleware: str) -> int:
        """Maintenance scene: silence one middleware's devices."""
        return self._apply({"middleware": middleware}, OFF_OPERATIONS)

    # -- plumbing ------------------------------------------------------------

    def _apply(self, context: dict[str, str], candidates: tuple[str, ...]) -> int:
        documents = self.home.sim.run_until_complete(self.gateway.vsr.find(context))
        futures: list[SimFuture] = []
        for document in documents:
            operation = _pick(document, candidates)
            if operation is None:
                continue
            self.actions_log.append(
                (document.service, operation, document.context.get("island", "?"))
            )
            futures.append(self.gateway.invoke(document.service, operation, []))
        for future in futures:
            # Tolerate individual device failures: a scene is best-effort.
            try:
                self.home.sim.run_until_complete(future)
            except Exception:
                pass
        return len(futures)
