"""Scene control — context-aware service integration.

The paper defines service integration as "making a new service from more
than one service cooperating with each other" (Section 2) and gives the
VSR "service contexts" for exactly this kind of selection (Section 3.3).
A scene is that new service: one command fans out to every matching
device, regardless of which middleware each lives on.

``SceneController.room_off("living")`` finds every service whose VSR
context says ``room=living`` and applies its natural "off" operation —
``power_off`` on the HAVi TV, ``turn_off`` on X10 modules, ``stop`` on the
Jini Laserdisc — through the ordinary neutral call path.

Since the automation engine landed, a scene is just a one-action rule
(:class:`~repro.rules.actions.ContextSweepAction`) fired by hand; this
controller keeps its original synchronous API as a thin shim over a
:class:`~repro.rules.engine.RuleEngine`.  Each scene rule also carries a
``scene.<name>`` event trigger, so starting the engine lets any island
fire scenes by publishing that event.
"""

from __future__ import annotations

from repro.apps.home import SmartHome
from repro.rules.actions import SWEEP_PRESETS, pick_operation
from repro.rules.engine import Firing, RuleEngine
from repro.rules import dsl
from repro.soap.wsdl import WsdlDocument

#: Preference order of "switch it off" operations.
OFF_OPERATIONS = SWEEP_PRESETS["off"]
#: Preference order of "switch it on" operations.
ON_OPERATIONS = SWEEP_PRESETS["on"]


def _pick(document: WsdlDocument, candidates: tuple[str, ...]) -> str | None:
    return pick_operation(document, candidates)


class SceneController:
    """Fans one command out across middleware by VSR context."""

    def __init__(self, home: SmartHome, from_island: str | None = None) -> None:
        self.home = home
        island_name = from_island or next(iter(home.islands))
        self.gateway = home.island(island_name).gateway
        self.engine = RuleEngine(self.gateway, label=f"scenes-{island_name}")
        self.actions_log: list[tuple[str, str, str]] = []

    # -- scenes ------------------------------------------------------------

    def room_off(self, room: str) -> int:
        """Switch off everything in ``room``; returns devices commanded."""
        return self._apply({"room": room}, OFF_OPERATIONS)

    def room_on(self, room: str) -> int:
        return self._apply({"room": room}, ON_OPERATIONS)

    def all_off(self) -> int:
        """'Leaving home': off everything that has an off operation."""
        return self._apply({}, OFF_OPERATIONS)

    def middleware_off(self, middleware: str) -> int:
        """Maintenance scene: silence one middleware's devices."""
        return self._apply({"middleware": middleware}, OFF_OPERATIONS)

    # -- plumbing ------------------------------------------------------------

    def _apply(self, context: dict[str, str], candidates: tuple[str, ...]) -> int:
        firing = self.home.sim.run_until_complete(
            self.engine.fire(self._rule_for(context, candidates))
        )
        return self._log_firing(firing)

    def _rule_for(self, context: dict[str, str], candidates: tuple[str, ...]) -> str:
        """Materialize (once) the scene as a rule; returns its name."""
        selector = ",".join(f"{k}={v}" for k, v in sorted(context.items())) or "*"
        name = f"scene:{selector}:{candidates[0]}"
        if not any(r.name == name for r in self.engine.rules):
            self.engine.add_rule(
                dsl.rule(name)
                .when(dsl.on_event(f"scene.{name}"))
                .then(dsl.sweep(candidates, **context))
                .build()
            )
        return name

    def _log_firing(self, firing: Firing | None) -> int:
        """Fold sweep results into the flat actions log; returns count."""
        commanded = 0
        if firing is None:
            return commanded
        for result in firing.results:
            if not (isinstance(result, dict) and result.get("kind") == "sweep"):
                continue
            for invocation in result["invocations"]:
                self.actions_log.append(
                    (
                        invocation["service"],
                        invocation["operation"],
                        invocation["island"],
                    )
                )
                commanded += 1
        return commanded
