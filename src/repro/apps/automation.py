"""Canned automation scenarios on the rule engine.

Each scenario is one declarative :class:`~repro.rules.engine.Rule` —
trigger(s) → condition(s) → action(s) — spanning the bridged home's
middleware islands.  They are the :mod:`repro.rules` counterpart of the
paper's hand-wired demo applications: motion events arrive from the X10
powerline, AV control goes to the HAVi bus, notifications ride the mail
island, and every action travels the ordinary neutral call path.

:class:`HomeAutomation` bundles the scenarios over a
:class:`~repro.apps.home.SmartHome` and owns the engine lifecycle.  All
time constants are parameterized by ``day`` (virtual seconds per
simulated day) so examples and tests can run compressed days.
"""

from __future__ import annotations

from repro.apps.home import SmartHome
from repro.net.simkernel import SimFuture
from repro.pcms.mail_pcm import MAIL_ARRIVED_TOPIC
from repro.rules import dsl
from repro.rules.engine import Rule, RuleEngine

#: The hall motion sensor's X10 address (see ``home.py``'s device map).
MOTION_ADDRESS = "A9"
#: Tuner channel reserved for live surveillance viewing.
SURVEILLANCE_CHANNEL = 99


def evening_lights(day: float = 86400.0) -> Rule:
    """At dusk (18:00), turn on every lamp in the house."""
    return (
        dsl.rule("evening-lights")
        .describe("dusk: all lamps on")
        .when(dsl.daily_at(18 / 24 * day, day=day))
        .then(dsl.sweep(("turn_on",), x10_kind="lamp"))
        .build()
    )


def presence_av_routing(cooldown: float = 60.0) -> Rule:
    """Hall motion routes the DV camera to the TV (the Section 4.2
    multimedia scenario, now declarative): power the display, switch it to
    the 1394 input, start the camera."""
    return (
        dsl.rule("presence-av-routing")
        .describe("hall motion: show hall camera on the TV")
        .when(dsl.on_event("x10.ON"))
        .only_if(dsl.payload("address").eq(MOTION_ADDRESS))
        .then(
            dsl.invoke("Digital_TV_display", "power_on"),
            dsl.invoke("Digital_TV_display", "set_input", "1394"),
            dsl.invoke("DV_Camera_camera", "start_capture"),
        )
        .cooldown(cooldown)
        .build()
    )


def mail_arrival_notify() -> Rule:
    """New mail flashes the hall lamp and shows the subject on the TV."""
    return (
        dsl.rule("mail-arrival-notify")
        .describe("mail arrival: hall lamp + on-screen subject")
        .when(dsl.on_event(MAIL_ARRIVED_TOPIC))
        .then(
            dsl.invoke("X10_A1_hall_lamp", "turn_on"),
            dsl.invoke("Digital_TV_display", "show_message", dsl.event("subject")),
            dsl.publish("home.notify", kind="mail", subject=dsl.event("subject")),
        )
        .build()
    )


def nightly_shutdown(day: float = 86400.0) -> Rule:
    """At 03:00 every device with an off operation is switched off."""
    return (
        dsl.rule("nightly-shutdown")
        .describe("03:00: whole-house off sweep")
        .when(dsl.daily_at(3 / 24 * day, day=day))
        .then(dsl.sweep("off"))
        .build()
    )


def motion_record(cooldown: float = 120.0) -> Rule:
    """Any X10 ON event starts a DV recording — *unless* the TV tuner is
    already on the surveillance channel (someone is watching live), a
    cross-island condition read from HAVi state at fire time.  Note the
    prefix trigger: ``x10.*`` would also catch DIM/BRIGHT, so the payload
    condition narrows to ON."""
    return (
        dsl.rule("motion-record")
        .describe("motion: record hall camera unless watched live")
        .when(dsl.on_event("x10.*"))
        .only_if(
            dsl.payload("function").eq("ON"),
            dsl.service_state("Digital_TV_tuner", "get_channel").ne(
                SURVEILLANCE_CHANNEL
            ),
            dsl.vsr_has(room="hall"),  # a hall camera/device to record from
        )
        .then(dsl.invoke("DV_Camera_vcr", "record"))
        .cooldown(cooldown)
        .build()
    )


def degraded_fallback(island: str, check_interval: float = 600.0) -> Rule:
    """When ``island``'s outbound calls keep failing (resilience counter
    past threshold), fall back to powerline-only lighting so the house
    stays usable — and announce the degraded mode on the event bus.
    Meaningful with observability enabled; with metrics off the counter
    reads 0 and the rule stays quiet."""
    return (
        dsl.rule("degraded-fallback")
        .describe(f"{island} degraded: lamps on via X10, announce")
        .when(dsl.every(check_interval))
        .only_if(dsl.metric(f"resilience.{island}.failures").ge(3))
        .then(
            dsl.sweep(("turn_on",), x10_kind="lamp"),
            dsl.publish("home.degraded", island=island),
        )
        .cooldown(check_interval * 2)
        .build()
    )


def canned_scenarios(day: float = 86400.0, island: str = "havi") -> list[Rule]:
    """The six stock scenarios, scaled to a ``day``-second day."""
    scale = day / 86400.0
    return [
        evening_lights(day=day),
        presence_av_routing(cooldown=60.0 * scale),
        mail_arrival_notify(),
        nightly_shutdown(day=day),
        motion_record(cooldown=120.0 * scale),
        degraded_fallback(island, check_interval=600.0 * scale),
    ]


class HomeAutomation:
    """The canned scenarios armed over a built home."""

    def __init__(
        self,
        home: SmartHome,
        from_island: str = "havi",
        day: float = 86400.0,
        mail_user: str = "resident@home.sim",
        mail_poll: float | None = None,
    ) -> None:
        self.home = home
        self.engine = RuleEngine(home.island(from_island).gateway)
        self.day = day
        self.mail_user = mail_user
        self.mail_poll = mail_poll if mail_poll is not None else day / 288.0
        for rule in canned_scenarios(day=day, island=from_island):
            self.engine.add_rule(rule)

    def start(self) -> SimFuture:
        """Arm everything: mail watcher (so ``mail.arrived`` flows) plus
        the engine's subscriptions and schedules."""
        mail_island = self.home.islands.get("mail")
        if mail_island is not None:
            mail_island.pcm.watch_inbox(self.mail_user, interval=self.mail_poll)
        return self.engine.start()

    def stop(self) -> None:
        self.engine.stop()
        mail_island = self.home.islands.get("mail")
        if mail_island is not None:
            mail_island.pcm.stop_watching(self.mail_user)
