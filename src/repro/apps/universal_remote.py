"""The Universal Remote Controller (paper Figure 5).

"It is an X10 remote controller that allows us to control not only X10
devices but also Jini and HAVi services that are connected via our
middleware.  The person in the picture is controlling a Jini Laserdisc
with an X10 remote controller, and he can also control a HAVi DV camera."

The flow this class wires up, end to end on real simulated wires:

handset button → powerline frames → CM11A hears them → serial poll upload
→ X10 controller event → X10 PCM button binding → VSG neutral call → SOAP
over the backbone → target island gateway → target PCM → native
invocation (RMI for the Laserdisc, HAVi message for the camera).
"""

from __future__ import annotations

from typing import Any

from repro.errors import FrameworkError
from repro.x10.codes import X10Address, X10Function
from repro.apps.home import SmartHome


class UniversalRemote:
    """Figure 5's application: an X10 handset driving every island."""

    #: The default button layout used by examples and benchmarks.
    DEFAULT_LAYOUT = {
        ("A4", X10Function.ON): ("Laserdisc", "play", []),
        ("A4", X10Function.OFF): ("Laserdisc", "stop", []),
        ("A5", X10Function.ON): ("DV_Camera_camera", "start_capture", []),
        ("A5", X10Function.OFF): ("DV_Camera_camera", "stop_capture", []),
        ("A6", X10Function.ON): ("Digital_TV_display", "power_on", []),
        ("A6", X10Function.OFF): ("Digital_TV_display", "power_off", []),
        ("A7", X10Function.ON): ("InternetMail", "send",
                                 ["user@home.sim", "doorbell", "someone pressed A7"]),
    }

    def __init__(self, home: SmartHome) -> None:
        if "x10" not in home.islands or home.handset is None:
            raise FrameworkError("the home has no X10 island to host the remote")
        self.home = home
        self.pcm = home.islands["x10"].pcm
        self.handset = home.handset

    # -- configuration ------------------------------------------------------------

    def bind(
        self,
        button: str | X10Address,
        service: str,
        operation: str,
        args: list[Any] | None = None,
        function: X10Function = X10Function.ON,
    ) -> None:
        """Bind a handset button to any service the framework can reach."""
        address = X10Address.parse(button) if isinstance(button, str) else button
        self.pcm.bind_button(address, service, operation, args, function)

    def bind_default_layout(self) -> int:
        """Install :data:`DEFAULT_LAYOUT`; returns the number of bindings.
        Buttons whose target service is absent (e.g. a home built without
        the mail island) are skipped."""
        bound = 0
        available = set(self.pcm.imported) | set(self.pcm.exported)
        for (button, function), (service, operation, args) in self.DEFAULT_LAYOUT.items():
            if service not in available:
                continue
            self.bind(button, service, operation, args, function)
            bound += 1
        return bound

    # -- use ------------------------------------------------------------

    def press(
        self,
        button: str | X10Address,
        function: X10Function = X10Function.ON,
        settle: float = 5.0,
    ) -> None:
        """Press a button and run the simulation until the powerline,
        serial poll and bridged invocation have all settled."""
        address = X10Address.parse(button) if isinstance(button, str) else button
        self.handset.press(address, function)
        self.home.sim.run_for(settle)

    @property
    def binding_count(self) -> int:
        return len(self.pcm.bindings)

    def invocation_counts(self) -> dict[str, int]:
        """service.operation -> times a button press triggered it."""
        counts: dict[str, int] = {}
        for binding in self.pcm.bindings.values():
            key = f"{binding.service}.{binding.operation}"
            counts[key] = counts.get(key, 0) + binding.invocations
        return counts
