"""The event-based multimedia system (paper Section 4.2) — including its
negative result.

"We have tried to develop the event-based multimedia system, which manages
multimedia streams and send multimedia data to appropriate I/O devices,
with X10 motion sensors and HAVi and Jini AV systems.  But, there are some
difficulties such as multimedia data conversion and dynamic service
activation because of the limitation of HTTP."

What works (and this class implements): motion events from X10 sensors
cross the framework and trigger *control-plane* actions — power the TV on,
route the DV camera's stream to it *within the HAVi bus*, show an on-screen
message.

What fails, by construction, exactly as in the paper:

- the *data plane* cannot cross a gateway: isochronous streams are bus-
  local (:meth:`route_camera_to_foreign_sink` raises
  :class:`~repro.errors.StreamNotBridgeableError`);
- with the SOAP/HTTP gateway, event *notification latency is bounded below
  by the polling interval* — measured in :attr:`notification_latencies`
  and swept by experiment C3 (the SIP gateway removes the bound).
"""

from __future__ import annotations

from typing import Any

from repro.errors import FrameworkError, HaviError, StreamNotBridgeableError
from repro.havi.dcm import Fcm
from repro.havi.streams import Plug, StreamConnection
from repro.net.simkernel import SimFuture
from repro.apps.home import SmartHome

MOTION_TOPIC = "x10.ON"


class MultimediaOrchestrator:
    """Motion-driven AV routing across the bridged home."""

    def __init__(self, home: SmartHome, watch_island: str = "havi") -> None:
        if home.stream_manager is None or home.camera is None or home.tv_display is None:
            raise FrameworkError("the home has no HAVi AV devices to orchestrate")
        self.home = home
        self.gateway = home.island(watch_island).gateway
        self.active_stream: StreamConnection | None = None
        self.motion_events: list[dict[str, Any]] = []
        self.actions: list[str] = []

    # -- arming ------------------------------------------------------------

    def arm(self) -> SimFuture:
        """Subscribe to X10 motion events across the framework."""
        return self.gateway.subscribe(MOTION_TOPIC, self._on_motion)

    def _on_motion(self, topic: str, payload: Any, source_island: str) -> None:
        self.motion_events.append(
            {"payload": payload, "island": source_island, "at": self.home.sim.now}
        )
        self._surveillance_on()

    # -- control-plane actions (these work across islands) ---------------------------

    def _surveillance_on(self) -> None:
        display = self.home.tv_display
        camera = self.home.camera
        if not display.powered:
            display.power_on()
            self.actions.append("tv.power_on")
        display.set_input("1394")
        camera.start_capture()
        if self.active_stream is None:
            self.active_stream = self.home.stream_manager.connect(
                Plug(camera, "out"), Plug(display, "in"), "DV"
            )
            self.actions.append("stream.connect camera->tv")
        display.show_message("motion detected: showing hall camera")
        self.actions.append("tv.show_message")

    def surveillance_off(self) -> None:
        if self.active_stream is not None:
            self.active_stream.disconnect()
            self.active_stream = None
            self.actions.append("stream.disconnect")
        self.home.camera.stop_capture()

    # -- the paper's negative results, reproduced -------------------------------------

    def route_camera_to_foreign_sink(self, sink_fcm: Fcm) -> StreamConnection:
        """Attempt to stream the DV camera to an FCM that is *not* on this
        IEEE1394 bus (e.g. a display on the Jini island).

        Raises :class:`StreamNotBridgeableError`: the SOAP/HTTP VSG carries
        control calls, not isochronous data — the multimedia-data-conversion
        limitation of Section 4.2.
        """
        try:
            return self.home.stream_manager.connect(
                Plug(self.home.camera, "out"), Plug(sink_fcm, "in"), "DV"
            )
        except HaviError as exc:
            raise StreamNotBridgeableError(
                "the VSG cannot carry isochronous multimedia data between "
                f"islands (paper Section 4.2): {exc}"
            ) from exc

    # -- measurements ------------------------------------------------------------

    @property
    def notification_latencies(self) -> list[float]:
        """Publish-to-delivery latency of every motion event received.

        Over the SOAP gateway these cluster around half the polling
        interval and never go below the poll granularity; over SIP they
        collapse to network RTT.
        """
        return [
            record["latency"]
            for record in self.gateway.events.delivery_log
            if record["topic"] == MOTION_TOPIC
        ]
