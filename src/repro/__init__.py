"""repro — reproduction of *A Framework for Connecting Home Computing
Middleware* (Tokunaga et al., ICDCS Workshops 2002).

The public API surface re-exported here is what the examples use; each
subpackage is documented and importable directly:

- :mod:`repro.core` — the paper's meta-middleware (VSG / PCM / VSR).
- :mod:`repro.net` — the simulated home network everything runs on.
- :mod:`repro.soap`, :mod:`repro.jini`, :mod:`repro.havi`,
  :mod:`repro.x10`, :mod:`repro.mail`, :mod:`repro.upnp`,
  :mod:`repro.sip` — the middleware substrates, built from scratch.
- :mod:`repro.pcms` — one Protocol Conversion Manager per middleware.
- :mod:`repro.devices` — simulated appliances.
- :mod:`repro.apps` — the paper's applications (smart home, Universal
  Remote Controller, automatic recording, event-based multimedia).
"""

from repro import errors
from repro.apps import build_smart_home
from repro.core import MetaMiddleware, ProtocolConversionManager, VirtualServiceGateway
from repro.net import Network, Simulator

__version__ = "1.0.0"

__all__ = [
    "MetaMiddleware",
    "Network",
    "ProtocolConversionManager",
    "Simulator",
    "VirtualServiceGateway",
    "build_smart_home",
    "errors",
]
